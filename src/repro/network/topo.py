"""Topological utilities over :class:`~repro.network.netlist.LogicNetwork`.

Levels, transitive fanin/fanout cones, cone overlap (the paper's
O(i,j)), and per-output support sets.  These are the structural
quantities the phase-assignment cost function of Section 4.1 consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import NetworkError
from repro.network.netlist import GateType, LogicNetwork


def levels(network: LogicNetwork) -> Dict[str, int]:
    """Topological level per node: sources are level 0, gates are
    1 + max(fanin levels)."""
    level: Dict[str, int] = {}
    for name in network.topological_order():
        node = network.nodes[name]
        if node.gate_type.is_source or node.gate_type is GateType.LATCH:
            level[name] = 0
        else:
            level[name] = 1 + max(level[fi] for fi in node.fanins)
    return level


def depth(network: LogicNetwork) -> int:
    """Maximum topological level in the network (0 for source-only nets)."""
    lv = levels(network)
    return max(lv.values()) if lv else 0


def transitive_fanin(
    network: LogicNetwork,
    roots: Iterable[str],
    include_sources: bool = True,
    stop_at_latches: bool = True,
) -> Set[str]:
    """Set of node names in the transitive fanin of ``roots`` (roots included).

    When ``stop_at_latches`` is true the traversal treats latch outputs
    as sources (does not walk through the latch data input), matching
    how the paper treats partitioned combinational blocks.
    """
    seen: Set[str] = set()
    stack = [r for r in roots]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        node = network.node(name)
        if node.gate_type.is_source:
            continue
        if node.gate_type is GateType.LATCH and stop_at_latches:
            continue
        stack.extend(fi for fi in node.fanins if fi not in seen)
    if not include_sources:
        seen = {
            n
            for n in seen
            if not network.nodes[n].gate_type.is_source
            and network.nodes[n].gate_type is not GateType.LATCH
        }
    return seen


def transitive_fanout(
    network: LogicNetwork,
    roots: Iterable[str],
    fanouts: Optional[Mapping[str, List[str]]] = None,
    stop_at_latches: bool = True,
) -> Set[str]:
    """Set of node names in the transitive fanout of ``roots`` (roots included)."""
    if fanouts is None:
        fanouts = network.fanout_map()
    seen: Set[str] = set()
    stack = [r for r in roots]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        for fo in fanouts[name]:
            if fo in seen:
                continue
            if network.nodes[fo].gate_type is GateType.LATCH and stop_at_latches:
                seen.add(fo)
                continue
            stack.append(fo)
    return seen


def output_cones(network: LogicNetwork, include_sources: bool = False) -> Dict[str, Set[str]]:
    """Transitive-fanin cone D_i for every primary output (keyed by PO name).

    By default the cone contains only logic nodes (the paper's |D_i|
    counts logic in the domino block); pass ``include_sources=True`` to
    include PIs/latches.
    """
    cones: Dict[str, Set[str]] = {}
    for po, driver in network.outputs:
        cones[po] = transitive_fanin(network, [driver], include_sources=include_sources)
    return cones


def cone_overlap(cone_i: Set[str], cone_j: Set[str]) -> float:
    """The paper's overlap measure  O(i,j) = |D_i ∩ D_j| / (|D_i| + |D_j|).

    Returns 0.0 when both cones are empty.
    """
    denom = len(cone_i) + len(cone_j)
    if denom == 0:
        return 0.0
    return len(cone_i & cone_j) / denom


def support(network: LogicNetwork, root: str) -> List[str]:
    """Ordered list of source names (PIs, latch outputs, constants excluded)
    in the transitive fanin of ``root``.  Order follows the input
    declaration order for PIs, then latch declaration order."""
    cone = transitive_fanin(network, [root], include_sources=True)
    ordered: List[str] = []
    for name in network.inputs:
        if name in cone:
            ordered.append(name)
    for latch in network.latches:
        if latch.name in cone:
            ordered.append(latch.name)
    return ordered


def fanout_cone_sizes(network: LogicNetwork) -> Dict[str, int]:
    """|TFO(n)| per node — used by the BDD variable-ordering heuristic."""
    fanouts = network.fanout_map()
    order = network.topological_order()
    sizes: Dict[str, Set[str]] = {}
    # Walk in reverse topological order so fanout cones are available.
    # To bound memory on large nets we store sizes, recomputing sets
    # per node from immediate fanouts; cones can overlap so we use a
    # proper traversal per node only when fanout is small, otherwise we
    # fall back to the cheap upper bound (sum of fanout cone sizes).
    result: Dict[str, int] = {}
    for name in reversed(order):
        fo = fanouts[name]
        if not fo:
            result[name] = 1
            continue
        cone = transitive_fanout(network, [name], fanouts=fanouts)
        result[name] = len(cone)
    return result


def check_inverter_free(network: LogicNetwork) -> List[str]:
    """Return the names of nodes that a domino block may not contain.

    A legal domino block consists solely of AND/OR/BUF gates (plus
    sources).  NOT/NAND/NOR/XOR/XNOR/MUX/SOP nodes are offenders.
    """
    offenders = []
    for node in network.nodes.values():
        if node.gate_type.is_source or node.gate_type is GateType.LATCH:
            continue
        if not node.gate_type.is_monotone:
            offenders.append(node.name)
    return offenders


def count_literals(network: LogicNetwork) -> int:
    """Total fanin count over all gates — a crude area proxy."""
    return sum(len(n.fanins) for n in network.gates)
