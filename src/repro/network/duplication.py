"""Inverter-free phase transform with logic-duplication accounting.

This implements the synthesis step of Puri et al. (ICCAD '96, reference
[15] in the paper) that the phase-assignment algorithms drive: given a
technology-independent AND/OR/NOT network and a phase for every primary
output, produce an inverter-free *domino block* plus static inverters
at the boundaries.

Rather than literally pushing inverter nodes around with DeMorgan
rewrites, the transform propagates **polarity demands**.  Output ``o``
with positive phase demands its driver in positive polarity; negative
phase demands the complement (the boundary inverter restores the
value).  Demands propagate through the cone:

* ``(AND, +) -> AND  over fanins demanded +``
* ``(AND, -) -> OR   over fanins demanded -``   (DeMorgan)
* ``(OR,  +) -> OR   over fanins demanded +``
* ``(OR,  -) -> AND  over fanins demanded -``   (DeMorgan)
* ``(NOT, q) -> fanin demanded ¬q``             (inverter dissolves)
* ``(PI,  -) -> static input inverter``

A node demanded in *both* polarities is realised twice — this is
exactly the paper's "trapped inverter" logic duplication.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import NetworkError, PhaseError
from repro.network.netlist import GateType, LogicNetwork, Node
from repro.phase import Phase, PhaseAssignment


class Polarity(enum.Enum):
    """Polarity in which a node of the original network is realised."""

    POS = "+"
    NEG = "-"

    @property
    def flipped(self) -> "Polarity":
        return Polarity.NEG if self is Polarity.POS else Polarity.POS

    @classmethod
    def from_phase(cls, phase: Phase) -> "Polarity":
        return Polarity.POS if phase is Phase.POSITIVE else Polarity.NEG


#: A reference to a value inside the domino implementation.
#: kind is one of "gate", "input", "latch", "const".
@dataclass(frozen=True)
class Ref:
    kind: str
    name: str = ""
    polarity: Polarity = Polarity.POS
    value: bool = False  # only for kind == "const"

    @property
    def key(self) -> Tuple[str, Polarity]:
        return (self.name, self.polarity)


@dataclass
class DominoGate:
    """One gate instance inside the inverter-free domino block."""

    name: str  # original network node name
    polarity: Polarity
    gate_type: GateType  # AND or OR (BUF never materialises)
    fanins: List[Ref] = field(default_factory=list)

    @property
    def key(self) -> Tuple[str, Polarity]:
        return (self.name, self.polarity)

    @property
    def instance_name(self) -> str:
        suffix = "p" if self.polarity is Polarity.POS else "n"
        return f"{self.name}${suffix}"


class DominoImplementation:
    """Result of the phase transform: an inverter-free block + boundary cells.

    Attributes
    ----------
    network:
        The original AND/OR/NOT network the block was derived from.
    assignment:
        The phase assignment that produced this implementation.
    gates:
        Mapping ``(node name, polarity) -> DominoGate``.
    input_inverters:
        Names of sources (PIs or latch outputs) required in negative
        polarity; each needs one static inverter at the block input.
    output_refs:
        Mapping PO name -> Ref produced by the domino block.  For a
        negative-phase output the ref is the *complement* of the output
        function and a static boundary inverter restores it.
    """

    def __init__(self, network: LogicNetwork, assignment: PhaseAssignment):
        self.network = network
        self.assignment = assignment
        self.gates: Dict[Tuple[str, Polarity], DominoGate] = {}
        self.input_inverters: Set[str] = set()
        self.output_refs: Dict[str, Ref] = {}

    # -- structure ------------------------------------------------------
    @property
    def output_inverters(self) -> List[str]:
        """PO names carrying a static boundary inverter (negative phase)."""
        return [po for po in self.output_refs if self.assignment[po] is Phase.NEGATIVE]

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    @property
    def n_static_inverters(self) -> int:
        return len(self.input_inverters) + len(self.output_inverters)

    def duplicated_nodes(self) -> List[str]:
        """Original node names realised in both polarities."""
        pos = {name for (name, pol) in self.gates if pol is Polarity.POS}
        neg = {name for (name, pol) in self.gates if pol is Polarity.NEG}
        return sorted(pos & neg)

    def duplication_ratio(self) -> float:
        """Gates in the block divided by distinct original nodes used.

        1.0 means no duplication; 2.0 means every node was duplicated.
        """
        distinct = {name for (name, _pol) in self.gates}
        if not distinct:
            return 1.0
        return len(self.gates) / len(distinct)

    def topological_gate_order(self) -> List[DominoGate]:
        """Gates in dependency order (fanins before fanouts)."""
        order: List[DominoGate] = []
        visited: Set[Tuple[str, Polarity]] = set()

        for start_key in self.gates:
            if start_key in visited:
                continue
            stack: List[Tuple[Tuple[str, Polarity], int]] = [(start_key, 0)]
            visited.add(start_key)
            while stack:
                key, idx = stack[-1]
                gate = self.gates[key]
                advanced = False
                while idx < len(gate.fanins):
                    ref = gate.fanins[idx]
                    idx += 1
                    if ref.kind == "gate" and ref.key not in visited:
                        visited.add(ref.key)
                        stack[-1] = (key, idx)
                        stack.append((ref.key, 0))
                        advanced = True
                        break
                if advanced:
                    continue
                order.append(gate)
                stack.pop()
        return order

    # -- semantics --------------------------------------------------------
    def _source_value(self, ref: Ref, sources: Mapping[str, bool]) -> bool:
        if ref.kind == "const":
            return ref.value
        val = bool(sources[ref.name])
        return (not val) if ref.polarity is Polarity.NEG else val

    def evaluate(self, source_values: Mapping[str, bool]) -> Dict[str, bool]:
        """Evaluate the implementation's primary outputs.

        ``source_values`` maps PI names (and latch-output names for
        sequential blocks) to booleans.  Boundary inverters are applied,
        so the result equals the original network's outputs whenever the
        transform is correct.
        """
        gate_vals = self.evaluate_gates(source_values)
        out: Dict[str, bool] = {}
        for po, ref in self.output_refs.items():
            if ref.kind == "gate":
                v = gate_vals[ref.key]
            else:
                v = self._source_value(ref, source_values)
            if self.assignment[po] is Phase.NEGATIVE:
                v = not v
            out[po] = v
        return out

    def evaluate_gates(
        self, source_values: Mapping[str, bool]
    ) -> Dict[Tuple[str, Polarity], bool]:
        """Raw domino gate outputs (before boundary inverters)."""
        gate_vals: Dict[Tuple[str, Polarity], bool] = {}
        for gate in self.topological_gate_order():
            vals = []
            for ref in gate.fanins:
                if ref.kind == "gate":
                    vals.append(gate_vals[ref.key])
                else:
                    vals.append(self._source_value(ref, source_values))
            if gate.gate_type is GateType.AND:
                gate_vals[gate.key] = all(vals)
            elif gate.gate_type is GateType.OR:
                gate_vals[gate.key] = any(vals)
            else:  # pragma: no cover - transform never emits others
                raise NetworkError(f"illegal domino gate type {gate.gate_type}")
        return gate_vals

    # -- probabilities ------------------------------------------------------
    def gate_probabilities(
        self, node_probabilities: Mapping[str, float]
    ) -> Dict[Tuple[str, Polarity], float]:
        """Signal probability of every domino gate.

        ``node_probabilities`` gives the probability that each *original*
        node evaluates to 1.  By Property 4.1, the negative-polarity
        realisation of a node has probability ``1 - p``.
        """
        probs: Dict[Tuple[str, Polarity], float] = {}
        for (name, pol), _gate in self.gates.items():
            p = node_probabilities[name]
            probs[(name, pol)] = p if pol is Polarity.POS else 1.0 - p
        return probs

    def stats(self) -> Dict[str, float]:
        return {
            "domino_gates": self.n_gates,
            "input_inverters": len(self.input_inverters),
            "output_inverters": len(self.output_inverters),
            "duplicated_nodes": len(self.duplicated_nodes()),
            "duplication_ratio": self.duplication_ratio(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DominoImplementation {self.n_gates} gates, "
            f"{len(self.input_inverters)}+{len(self.output_inverters)} static invs, "
            f"dup={self.duplication_ratio():.2f}>"
        )


_AOI_OK = (GateType.AND, GateType.OR, GateType.NOT, GateType.BUF)


def phase_transform(
    network: LogicNetwork, assignment: PhaseAssignment
) -> DominoImplementation:
    """Build the inverter-free domino implementation for an assignment.

    The network must contain only AND/OR/NOT/BUF gates (use
    :func:`repro.network.ops.to_aoi` first).  Latch outputs are treated
    as block inputs, latch data inputs as block outputs are *not*
    handled here — partition sequential circuits first (see
    :mod:`repro.seq.partition`).
    """
    for po in network.output_names():
        assignment[po]  # raises PhaseError when missing
    for node in network.gates:
        if node.gate_type not in _AOI_OK:
            raise NetworkError(
                f"phase_transform requires an AOI network; node {node.name} "
                f"is {node.gate_type.value} (run to_aoi first)"
            )

    impl = DominoImplementation(network, assignment)
    memo: Dict[Tuple[str, Polarity], Ref] = {}

    def resolve(name: str, pol: Polarity) -> Ref:
        """Iteratively resolve the Ref realising ``name`` in ``pol``."""
        root = (name, pol)
        if root in memo:
            return memo[root]
        stack: List[Tuple[str, Polarity, int]] = [(name, pol, 0)]
        while stack:
            cur_name, cur_pol, idx = stack[-1]
            key = (cur_name, cur_pol)
            if key in memo:
                stack.pop()
                continue
            node = network.node(cur_name)
            t = node.gate_type

            if t is GateType.INPUT or t is GateType.LATCH:
                if cur_pol is Polarity.NEG:
                    impl.input_inverters.add(cur_name)
                memo[key] = Ref("latch" if t is GateType.LATCH else "input", cur_name, cur_pol)
                stack.pop()
                continue
            if t is GateType.CONST0 or t is GateType.CONST1:
                base = t is GateType.CONST1
                val = base if cur_pol is Polarity.POS else not base
                memo[key] = Ref("const", cur_name, cur_pol, value=val)
                stack.pop()
                continue
            if t is GateType.NOT:
                child = (node.fanins[0], cur_pol.flipped)
                if child in memo:
                    memo[key] = memo[child]
                    stack.pop()
                else:
                    stack.append((child[0], child[1], 0))
                continue
            if t is GateType.BUF:
                child = (node.fanins[0], cur_pol)
                if child in memo:
                    memo[key] = memo[child]
                    stack.pop()
                else:
                    stack.append((child[0], child[1], 0))
                continue
            # AND / OR gate: make sure all fanins are resolved first.
            if idx < len(node.fanins):
                child = (node.fanins[idx], cur_pol)
                stack[-1] = (cur_name, cur_pol, idx + 1)
                if child not in memo:
                    stack.append((child[0], child[1], 0))
                continue
            gate_type = node.gate_type if cur_pol is Polarity.POS else node.gate_type.dual
            gate = DominoGate(
                name=cur_name,
                polarity=cur_pol,
                gate_type=gate_type,
                fanins=[memo[(fi, cur_pol)] for fi in node.fanins],
            )
            impl.gates[gate.key] = gate
            memo[key] = Ref("gate", cur_name, cur_pol)
            stack.pop()
        return memo[root]

    for po, driver in network.outputs:
        pol = Polarity.from_phase(assignment[po])
        impl.output_refs[po] = resolve(driver, pol)
    return impl


def implementation_network(impl: DominoImplementation) -> LogicNetwork:
    """Materialise a :class:`DominoImplementation` as a plain network.

    Useful for printing, BLIF export and re-analysis: the domino gates
    become AND/OR nodes, boundary inverters become NOT nodes.  Output
    names and logical values match the original network.
    """
    net = LogicNetwork(f"{impl.network.name}_domino")
    for pi in impl.network.inputs:
        net.add_input(pi)
    for latch in impl.network.latches:
        # Latch outputs become free inputs of the block view.
        net.add_input(latch.name)

    inv_names: Dict[str, str] = {}
    for src in sorted(impl.input_inverters):
        inv = net.fresh_name(f"{src}_inv")
        net.add_gate(inv, GateType.NOT, [src])
        inv_names[src] = inv

    def ref_name(ref: Ref) -> str:
        if ref.kind == "const":
            cname = net.fresh_name("const")
            net.add_gate(cname, GateType.CONST1 if ref.value else GateType.CONST0, [])
            return cname
        if ref.kind in ("input", "latch"):
            if ref.polarity is Polarity.NEG:
                return inv_names[ref.name]
            return ref.name
        gate = impl.gates[ref.key]
        return gate.instance_name

    for gate in impl.topological_gate_order():
        net.add_gate(gate.instance_name, gate.gate_type, [ref_name(r) for r in gate.fanins])

    for po, ref in impl.output_refs.items():
        inner = ref_name(ref)
        if impl.assignment[po] is Phase.NEGATIVE:
            out_inv = net.fresh_name(f"{po}_phase_inv")
            net.add_gate(out_inv, GateType.NOT, [inner])
            net.add_output(po, out_inv)
        else:
            net.add_output(po, inner)
    net.validate()
    return net
