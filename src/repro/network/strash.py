"""Structural hashing (strash).

Merges structurally identical gates: two nodes with the same gate type
and the same (canonically ordered) fanins compute the same function, so
one can replace the other.  Run before the phase transform, this
maximises the sharing the pairwise cost function's overlap term O(i,j)
reasons about, and mirrors the sharing a real technology-independent
synthesis front-end would deliver.

Commutative gates (AND/OR/XOR/XNOR/NAND/NOR) hash their fanins as a
sorted tuple; NOT/BUF hash the single fanin; MUX and SOP nodes hash
positionally (MUX operands are not interchangeable; SOP covers are
compared literally).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.network.netlist import GateType, LogicNetwork

_COMMUTATIVE = (
    GateType.AND,
    GateType.OR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NAND,
    GateType.NOR,
)


@dataclass
class StrashResult:
    """Outcome of structural hashing."""

    network: LogicNetwork
    merged: int  # number of gate instances removed
    classes: int  # number of distinct structural classes found


def _node_key(node, resolved_fanins: Tuple[str, ...]) -> Optional[tuple]:
    t = node.gate_type
    if t in _COMMUTATIVE:
        return (t, tuple(sorted(resolved_fanins)))
    if t in (GateType.NOT, GateType.BUF):
        return (t, resolved_fanins)
    if t is GateType.MUX:
        return (t, resolved_fanins)
    if t is GateType.SOP:
        cover = node.cover
        return (t, resolved_fanins, tuple(cover.cubes), cover.output_value)
    if t in (GateType.CONST0, GateType.CONST1):
        return (t,)
    return None  # sources are never merged


def structural_hash(network: LogicNetwork) -> StrashResult:
    """Merge structurally identical gates; returns a new network.

    The pass runs to a fixpoint implicitly: processing in topological
    order with fanins resolved through the replacement map means
    cascaded duplicates collapse in a single sweep.
    """
    net = network.copy()
    replacement: Dict[str, str] = {}
    seen: Dict[tuple, str] = {}
    merged = 0

    def resolve(name: str) -> str:
        while name in replacement:
            name = replacement[name]
        return name

    for name in net.topological_order():
        node = net.nodes[name]
        if node.gate_type in (GateType.INPUT, GateType.LATCH):
            continue
        node.fanins = [resolve(fi) for fi in node.fanins]
        key = _node_key(node, tuple(node.fanins))
        if key is None:
            continue
        keeper = seen.get(key)
        if keeper is None:
            seen[key] = name
        else:
            replacement[name] = keeper
            merged += 1

    # Rewrite remaining references and outputs, then sweep.
    for node in net.nodes.values():
        node.fanins = [resolve(fi) for fi in node.fanins]
    net.outputs = [(po, resolve(driver)) for po, driver in net.outputs]

    from repro.network.ops import sweep_dead_nodes

    swept = sweep_dead_nodes(net)
    return StrashResult(network=swept, merged=merged, classes=len(seen))
