"""Structural network transformations.

These passes lower a parsed/generated network into the AND/OR/NOT form
that the domino phase transform consumes ("technology independent
synthesis" output in the paper's flow), and provide the usual cleanup:
constant propagation, buffer elision and double-inverter removal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.network.netlist import GateType, LogicNetwork, Node, SopCover

#: Gate types allowed after :func:`to_aoi` lowering.
AOI_TYPES = (GateType.AND, GateType.OR, GateType.NOT, GateType.BUF)


def expand_sop_nodes(network: LogicNetwork) -> LogicNetwork:
    """Lower every SOP node to AND/OR/NOT gates.

    Each cube becomes an AND over (possibly inverted) fanins, the cover
    becomes an OR of cubes, and an off-set cover gets an output
    inverter.  Returns a new network; the input is unmodified.
    """
    out = network.copy(network.name)
    for node in list(out.nodes.values()):
        if node.gate_type is not GateType.SOP:
            continue
        cover = node.cover
        if cover is None:
            raise NetworkError(f"SOP node {node.name} has no cover")
        fanins = list(node.fanins)
        inv_cache: Dict[str, str] = {}

        def inverted(fi: str) -> str:
            if fi not in inv_cache:
                inv_name = out.fresh_name(f"{node.name}_n_{fi}")
                out.add_gate(inv_name, GateType.NOT, [fi])
                inv_cache[fi] = inv_name
            return inv_cache[fi]

        cube_nodes: List[str] = []
        for ci, cube in enumerate(cover.cubes):
            literals: List[str] = []
            for fi, lit in zip(fanins, cube):
                if lit == "1":
                    literals.append(fi)
                elif lit == "0":
                    literals.append(inverted(fi))
            if not literals:
                # A cube of all don't-cares is a tautology.
                cube_nodes = []
                taut = out.fresh_name(f"{node.name}_taut")
                out.add_gate(taut, GateType.CONST1, [])
                cube_nodes = [taut]
                break
            if len(literals) == 1:
                cube_nodes.append(literals[0])
            else:
                cname = out.fresh_name(f"{node.name}_c{ci}")
                out.add_gate(cname, GateType.AND, literals)
                cube_nodes.append(cname)

        if not cube_nodes:
            # Empty cover: constant (0 for on-set semantics, 1 for off-set).
            node.gate_type = GateType.CONST1 if cover.output_value == "0" else GateType.CONST0
            node.fanins = []
            node.cover = None
            continue

        if len(cube_nodes) == 1:
            or_name = cube_nodes[0]
        else:
            or_name = out.fresh_name(f"{node.name}_or")
            out.add_gate(or_name, GateType.OR, cube_nodes)

        if cover.output_value == "1":
            node.gate_type = GateType.BUF
            node.fanins = [or_name]
        else:
            node.gate_type = GateType.NOT
            node.fanins = [or_name]
        node.cover = None
    out.validate()
    return out


def _lower_gate(net: LogicNetwork, node: Node) -> None:
    """Rewrite NAND/NOR/XOR/XNOR/MUX nodes into AND/OR/NOT in place."""
    t = node.gate_type
    if t is GateType.NAND:
        inner = net.fresh_name(f"{node.name}_and")
        net.add_gate(inner, GateType.AND, list(node.fanins))
        node.gate_type = GateType.NOT
        node.fanins = [inner]
    elif t is GateType.NOR:
        inner = net.fresh_name(f"{node.name}_or")
        net.add_gate(inner, GateType.OR, list(node.fanins))
        node.gate_type = GateType.NOT
        node.fanins = [inner]
    elif t in (GateType.XOR, GateType.XNOR):
        # Binary tree of 2-input xors: a^b = (a & ~b) | (~a & b).
        operands = list(node.fanins)

        def xor2(a: str, b: str) -> str:
            na = net.fresh_name(f"{node.name}_na")
            nb = net.fresh_name(f"{node.name}_nb")
            net.add_gate(na, GateType.NOT, [a])
            net.add_gate(nb, GateType.NOT, [b])
            t0 = net.fresh_name(f"{node.name}_t0")
            t1 = net.fresh_name(f"{node.name}_t1")
            net.add_gate(t0, GateType.AND, [a, nb])
            net.add_gate(t1, GateType.AND, [na, b])
            o = net.fresh_name(f"{node.name}_x")
            net.add_gate(o, GateType.OR, [t0, t1])
            return o

        acc = operands[0]
        for nxt in operands[1:]:
            acc = xor2(acc, nxt)
        if t is GateType.XOR:
            node.gate_type = GateType.BUF
            node.fanins = [acc]
        else:
            node.gate_type = GateType.NOT
            node.fanins = [acc]
    elif t is GateType.MUX:
        sel, d0, d1 = node.fanins
        nsel = net.fresh_name(f"{node.name}_ns")
        net.add_gate(nsel, GateType.NOT, [sel])
        a0 = net.fresh_name(f"{node.name}_a0")
        a1 = net.fresh_name(f"{node.name}_a1")
        net.add_gate(a0, GateType.AND, [nsel, d0])
        net.add_gate(a1, GateType.AND, [sel, d1])
        node.gate_type = GateType.OR
        node.fanins = [a0, a1]


def to_aoi(network: LogicNetwork) -> LogicNetwork:
    """Lower a network to AND/OR/NOT/BUF gates only.

    SOP covers are expanded first, then NAND/NOR/XOR/XNOR/MUX gates are
    rewritten.  The result is the canonical input form for the domino
    phase transform.
    """
    net = expand_sop_nodes(network)
    for node in list(net.nodes.values()):
        if node.gate_type in (GateType.NAND, GateType.NOR, GateType.XOR, GateType.XNOR, GateType.MUX):
            _lower_gate(net, node)
    net.validate()
    return net


def propagate_constants(network: LogicNetwork) -> LogicNetwork:
    """Fold constants through AND/OR/NOT/BUF gates.  Returns a new network."""
    net = network.copy()
    const_val: Dict[str, Optional[bool]] = {}
    for name in net.topological_order():
        node = net.nodes[name]
        t = node.gate_type
        if t is GateType.CONST0:
            const_val[name] = False
            continue
        if t is GateType.CONST1:
            const_val[name] = True
            continue
        if t.is_source or t is GateType.LATCH:
            const_val[name] = None
            continue
        fvals = [const_val.get(fi) for fi in node.fanins]
        if t is GateType.NOT:
            const_val[name] = None if fvals[0] is None else (not fvals[0])
            if const_val[name] is not None:
                node.gate_type = GateType.CONST1 if const_val[name] else GateType.CONST0
                node.fanins = []
            continue
        if t is GateType.BUF:
            const_val[name] = fvals[0]
            if const_val[name] is not None:
                node.gate_type = GateType.CONST1 if const_val[name] else GateType.CONST0
                node.fanins = []
            continue
        if t is GateType.AND:
            if any(v is False for v in fvals):
                const_val[name] = False
                node.gate_type = GateType.CONST0
                node.fanins = []
                continue
            keep = [fi for fi, v in zip(node.fanins, fvals) if v is not True]
            if not keep:
                const_val[name] = True
                node.gate_type = GateType.CONST1
                node.fanins = []
                continue
            if len(keep) == 1:
                node.gate_type = GateType.BUF
            node.fanins = keep
            const_val[name] = None
            continue
        if t is GateType.OR:
            if any(v is True for v in fvals):
                const_val[name] = True
                node.gate_type = GateType.CONST1
                node.fanins = []
                continue
            keep = [fi for fi, v in zip(node.fanins, fvals) if v is not False]
            if not keep:
                const_val[name] = False
                node.gate_type = GateType.CONST0
                node.fanins = []
                continue
            if len(keep) == 1:
                node.gate_type = GateType.BUF
            node.fanins = keep
            const_val[name] = None
            continue
        const_val[name] = None
    net.validate()
    return net


def collapse_buffers(network: LogicNetwork) -> LogicNetwork:
    """Bypass BUF nodes and double inverters; drop dead nodes.

    Primary outputs driven through buffers are redirected to the buffer
    source.  Returns a new network.
    """
    net = network.copy()

    def resolve(name: str, seen: Optional[Set[str]] = None) -> str:
        node = net.nodes[name]
        if node.gate_type is GateType.BUF:
            return resolve(node.fanins[0])
        if node.gate_type is GateType.NOT:
            inner = net.nodes[node.fanins[0]]
            if inner.gate_type is GateType.NOT:
                return resolve(inner.fanins[0])
            if inner.gate_type is GateType.BUF:
                node.fanins = [resolve(inner.fanins[0])]
        return name

    for node in list(net.nodes.values()):
        node.fanins = [resolve(fi) for fi in node.fanins]
    net.outputs = [(po, resolve(driver)) for po, driver in net.outputs]
    return sweep_dead_nodes(net)


def sweep_dead_nodes(network: LogicNetwork) -> LogicNetwork:
    """Remove logic not reachable from any PO or latch data input.

    Primary inputs are always retained (interface preservation).
    """
    net = network.copy()
    live: Set[str] = set(net.inputs)
    roots = [driver for _, driver in net.outputs]
    roots.extend(latch.name for latch in net.latches)
    stack = list(roots)
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        stack.extend(net.nodes[name].fanins)
    dead = [name for name in net.nodes if name not in live]
    for name in dead:
        del net.nodes[name]
    net.validate()
    return net


def cleanup(network: LogicNetwork) -> LogicNetwork:
    """Standard cleanup pipeline: constants, buffers, dead logic."""
    return collapse_buffers(propagate_constants(network))


def demorgan_node(network: LogicNetwork, name: str) -> None:
    """Apply DeMorgan's law at one AND/OR node, in place.

    ``NOT(AND(a,b))`` style structures are not required; this primitive
    converts ``AND(a,b)`` into ``NOT(OR(NOT a, NOT b))`` (and dually),
    which is the textbook rewrite used when pushing inverters backwards
    (Fig. 3, step 3).  It is exposed mostly for demonstration and tests;
    the production phase transform works on polarity demands instead
    (see :mod:`repro.network.duplication`).
    """
    node = network.node(name)
    if node.gate_type not in (GateType.AND, GateType.OR):
        raise NetworkError(f"demorgan_node requires AND/OR, got {node.gate_type.value}")
    inverted_fanins: List[str] = []
    for fi in node.fanins:
        inv = network.fresh_name(f"{name}_dm_{fi}")
        network.add_gate(inv, GateType.NOT, [fi])
        inverted_fanins.append(inv)
    inner = network.fresh_name(f"{name}_dm")
    network.add_gate(inner, node.gate_type.dual, inverted_fanins)
    node.gate_type = GateType.NOT
    node.fanins = [inner]


def count_gate_types(network: LogicNetwork) -> Dict[GateType, int]:
    """Histogram of gate types (excluding sources and latches)."""
    hist: Dict[GateType, int] = {}
    for node in network.gates:
        hist[node.gate_type] = hist.get(node.gate_type, 0) + 1
    return hist


def networks_equivalent(
    a: LogicNetwork,
    b: LogicNetwork,
    n_vectors: int = 256,
    seed: int = 0,
    exhaustive_limit: int = 12,
) -> bool:
    """Check combinational equivalence by simulation.

    Exhaustive when the input count is at most ``exhaustive_limit``,
    random sampling otherwise.  Both networks must be combinational and
    have identical input and output names (order may differ).
    """
    import itertools
    import random

    if set(a.inputs) != set(b.inputs):
        return False
    if set(a.output_names()) != set(b.output_names()):
        return False
    names = list(a.inputs)
    rng = random.Random(seed)
    if len(names) <= exhaustive_limit:
        vectors = itertools.product([False, True], repeat=len(names))
    else:
        vectors = (
            tuple(rng.random() < 0.5 for _ in names) for _ in range(n_vectors)
        )
    for vec in vectors:
        assignment = dict(zip(names, vec))
        if a.evaluate_outputs(assignment) != b.evaluate_outputs(assignment):
            return False
    return True
