"""BLIF reader and writer.

Supports the subset of BLIF used by the MCNC benchmark suite the paper
evaluates on: ``.model``, ``.inputs``, ``.outputs``, ``.names`` (single
output covers, on-set or off-set), ``.latch`` (with optional type/clock
fields), constants (``.names`` with no inputs), and ``.end``.  Line
continuation with ``\\`` and ``#`` comments are handled.

The reader produces a :class:`~repro.network.netlist.LogicNetwork` with
SOP nodes; :func:`repro.network.ops.expand_sop_nodes` lowers covers to
AND/OR/NOT gates for the domino flow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BlifError
from repro.network.netlist import GateType, LogicNetwork, SopCover


def _logical_lines(text: str):
    """Yield (line_no, tokens) with comments stripped and continuations joined."""
    pending: List[str] = []
    pending_line = 0
    for i, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip() and not pending:
            continue
        if line.endswith("\\"):
            if not pending:
                pending_line = i
            pending.append(line[:-1])
            continue
        if pending:
            pending.append(line)
            joined = " ".join(pending)
            yield pending_line, joined.split()
            pending = []
        else:
            tokens = line.split()
            if tokens:
                yield i, tokens
    if pending:
        joined = " ".join(pending)
        yield pending_line, joined.split()


def parse_blif(text: str) -> LogicNetwork:
    """Parse BLIF text into a :class:`LogicNetwork`.

    Raises :class:`~repro.errors.BlifError` on malformed input.
    """
    net: Optional[LogicNetwork] = None
    inputs: List[str] = []
    outputs: List[str] = []
    # .names bodies are collected then materialised at the end so that
    # forward references are fine.
    covers: List[Tuple[int, List[str], str, List[str], str]] = []
    # (line_no, fanins, output, cubes, output_value)
    latches: List[Tuple[int, str, str, int]] = []  # (line_no, input, output, init)
    current_cover: Optional[Tuple[int, List[str], str, List[str], List[str]]] = None
    ended = False

    def finish_cover() -> None:
        nonlocal current_cover
        if current_cover is None:
            return
        line_no, fanins, out, cubes, out_vals = current_cover
        if cubes and len(set(out_vals)) > 1:
            raise BlifError(f"cover for {out!r} mixes on-set and off-set rows", line_no)
        output_value = out_vals[0] if out_vals else "1"
        covers.append((line_no, fanins, out, cubes, output_value))
        current_cover = None

    for line_no, tokens in _logical_lines(text):
        key = tokens[0]
        if ended and key.startswith("."):
            break
        if key.startswith("."):
            if key != ".names":
                finish_cover()
            if key == ".model":
                if net is not None:
                    # Only the first model is read; multi-model files are
                    # outside the MCNC subset.
                    break
                net = LogicNetwork(tokens[1] if len(tokens) > 1 else "model")
            elif key == ".inputs":
                inputs.extend(tokens[1:])
            elif key == ".outputs":
                outputs.extend(tokens[1:])
            elif key == ".names":
                finish_cover()
                if len(tokens) < 2:
                    raise BlifError(".names needs at least an output", line_no)
                *fanins, out = tokens[1:]
                current_cover = (line_no, fanins, out, [], [])
            elif key == ".latch":
                if len(tokens) < 3:
                    raise BlifError(".latch needs input and output", line_no)
                lin, lout = tokens[1], tokens[2]
                init = 2
                # Optional fields: [type clock] [init]; the last token is
                # the init value if it is 0/1/2/3.
                if len(tokens) >= 4 and tokens[-1] in ("0", "1", "2", "3"):
                    init = int(tokens[-1])
                latches.append((line_no, lin, lout, init))
            elif key == ".end":
                ended = True
            elif key in (".exdc", ".subckt", ".gate", ".mlatch", ".search"):
                raise BlifError(f"unsupported BLIF construct {key}", line_no)
            else:
                # Unknown dot-directives (e.g. .default_input_arrival) are
                # ignored, as most tools do.
                continue
        else:
            if current_cover is None:
                raise BlifError(f"unexpected token {key!r} outside .names body", line_no)
            _, fanins, out, cubes, out_vals = current_cover
            if fanins:
                if len(tokens) != 2:
                    raise BlifError(
                        f"cover row for {out!r} must be '<cube> <value>'", line_no
                    )
                cube, val = tokens
                if len(cube) != len(fanins):
                    raise BlifError(
                        f"cube width {len(cube)} != fanin count {len(fanins)} for {out!r}",
                        line_no,
                    )
                cubes.append(cube)
                out_vals.append(val)
            else:
                if len(tokens) != 1 or tokens[0] not in ("0", "1"):
                    raise BlifError(f"constant row for {out!r} must be '0' or '1'", line_no)
                cubes.append("")
                out_vals.append(tokens[0])

    finish_cover()
    if net is None:
        raise BlifError("missing .model header")

    for name in inputs:
        net.add_input(name)
    for line_no, lin, lout, init in latches:
        try:
            net.add_latch(lout, lin, init)
        except Exception as exc:
            raise BlifError(str(exc), line_no) from exc
    for line_no, fanins, out, cubes, output_value in covers:
        if not fanins:
            # Constant node: a '1' row means const1, otherwise const0.
            gt = GateType.CONST1 if (cubes and output_value == "1") else GateType.CONST0
            net.add_gate(out, gt, [])
            continue
        cover = SopCover(cubes=cubes, output_value=output_value)
        try:
            net.add_gate(out, GateType.SOP, fanins, cover=cover)
        except Exception as exc:
            raise BlifError(str(exc), line_no) from exc
    for name in outputs:
        if name not in net.nodes:
            raise BlifError(f"output {name!r} is never defined")
        net.add_output(name)
    net.validate()
    return net


def _cover_of(node) -> SopCover:
    """Canonical SOP cover for any primitive gate type (for writing)."""
    n = len(node.fanins)
    t = node.gate_type
    if t is GateType.SOP:
        return node.cover
    if t is GateType.BUF:
        return SopCover(["1"], "1")
    if t is GateType.NOT:
        return SopCover(["0"], "1")
    if t is GateType.AND:
        return SopCover(["1" * n], "1")
    if t is GateType.NAND:
        return SopCover(["1" * n], "0")
    if t is GateType.OR:
        cubes = ["-" * i + "1" + "-" * (n - i - 1) for i in range(n)]
        return SopCover(cubes, "1")
    if t is GateType.NOR:
        cubes = ["-" * i + "1" + "-" * (n - i - 1) for i in range(n)]
        return SopCover(cubes, "0")
    if t is GateType.XOR or t is GateType.XNOR:
        cubes = []
        for m in range(2 ** n):
            bits = [(m >> i) & 1 for i in range(n)]
            parity = sum(bits) % 2
            want = 1 if t is GateType.XOR else 0
            if parity == want:
                cubes.append("".join(str(b) for b in bits))
        return SopCover(cubes, "1")
    if t is GateType.MUX:
        # fanins: (select, d0, d1)
        return SopCover(["0 1 -".replace(" ", ""), "1-1"], "1")
    raise BlifError(f"cannot emit BLIF cover for node {node.name} of type {t.value}")


def write_blif(network: LogicNetwork) -> str:
    """Serialise a network to BLIF text."""
    lines: List[str] = [f".model {network.name}"]
    if network.inputs:
        lines.append(".inputs " + " ".join(network.inputs))
    po_aliases: List[Tuple[str, str]] = []
    po_names = []
    for po, driver in network.outputs:
        po_names.append(po)
        if po != driver and po not in network.nodes:
            po_aliases.append((po, driver))
    if po_names:
        lines.append(".outputs " + " ".join(po_names))
    for latch in network.latches:
        init = latch.init_value
        lines.append(f".latch {latch.fanins[0]} {latch.name} {init}")
    for node in network.nodes.values():
        t = node.gate_type
        if t.is_source or t is GateType.LATCH:
            if t is GateType.CONST0:
                lines.append(f".names {node.name}")
            elif t is GateType.CONST1:
                lines.append(f".names {node.name}")
                lines.append("1")
            continue
        cover = _cover_of(node)
        lines.append(".names " + " ".join(node.fanins + [node.name]))
        for cube in cover.cubes:
            if cube:
                lines.append(f"{cube} {cover.output_value}")
            else:
                lines.append(cover.output_value)
    for po, driver in po_aliases:
        lines.append(f".names {driver} {po}")
        lines.append("1 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def load_blif(path: str) -> LogicNetwork:
    """Read a BLIF file from disk."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_blif(f.read())


def save_blif(network: LogicNetwork, path: str) -> None:
    """Write a network to a BLIF file."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(write_blif(network))
