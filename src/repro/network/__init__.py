"""Logic-network substrate: netlist, BLIF I/O, structural ops, phase transform."""

from repro.network.netlist import GateType, LogicNetwork, Node, SopCover
from repro.network.blif import load_blif, parse_blif, save_blif, write_blif
from repro.network.duplication import (
    DominoGate,
    DominoImplementation,
    Polarity,
    Ref,
    implementation_network,
    phase_transform,
)
from repro.network.ops import (
    cleanup,
    collapse_buffers,
    count_gate_types,
    demorgan_node,
    expand_sop_nodes,
    networks_equivalent,
    propagate_constants,
    sweep_dead_nodes,
    to_aoi,
)
from repro.network.topo import (
    check_inverter_free,
    cone_overlap,
    depth,
    fanout_cone_sizes,
    levels,
    output_cones,
    support,
    transitive_fanin,
    transitive_fanout,
)
from repro.network.strash import StrashResult, structural_hash
from repro.network.minimize import (
    MinimizationResult,
    minimize_cover,
    minimize_network,
)

__all__ = [
    "StrashResult",
    "structural_hash",
    "MinimizationResult",
    "minimize_cover",
    "minimize_network",
    "GateType",
    "LogicNetwork",
    "Node",
    "SopCover",
    "load_blif",
    "parse_blif",
    "save_blif",
    "write_blif",
    "DominoGate",
    "DominoImplementation",
    "Polarity",
    "Ref",
    "implementation_network",
    "phase_transform",
    "cleanup",
    "collapse_buffers",
    "count_gate_types",
    "demorgan_node",
    "expand_sop_nodes",
    "networks_equivalent",
    "propagate_constants",
    "sweep_dead_nodes",
    "to_aoi",
    "check_inverter_free",
    "cone_overlap",
    "depth",
    "fanout_cone_sizes",
    "levels",
    "output_cones",
    "support",
    "transitive_fanin",
    "transitive_fanout",
]
