"""Two-level logic minimisation (Quine–McCluskey with cube covering).

Step 1 of the paper's synthesis flow is "technology independent
minimization".  This module provides the two-level part: SOP covers
(e.g. straight from BLIF ``.names`` bodies) are minimised with the
Quine–McCluskey procedure — prime implicant generation by iterative
cube merging, then a greedy set cover with essential-prime extraction.

Exact for the cover sizes control logic exhibits (the implementation
guards against exponential blowup with an input-count limit and falls
back to the original cover beyond it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import NetworkError
from repro.network.netlist import GateType, LogicNetwork, SopCover

Cube = str


def _cube_minterms(cube: Cube) -> Iterable[int]:
    """All minterm indices covered by a cube (LSB = position 0)."""
    dash_positions = [i for i, c in enumerate(cube) if c == "-"]
    base = 0
    for i, c in enumerate(cube):
        if c == "1":
            base |= 1 << i
    for mask in range(1 << len(dash_positions)):
        m = base
        for k, pos in enumerate(dash_positions):
            if (mask >> k) & 1:
                m |= 1 << pos
        yield m


def _merge_cubes(a: Cube, b: Cube) -> Optional[Cube]:
    """Merge two cubes differing in exactly one specified literal."""
    diff = -1
    for i, (ca, cb) in enumerate(zip(a, b)):
        if ca != cb:
            if ca == "-" or cb == "-" or diff >= 0:
                return None
            diff = i
    if diff < 0:
        return None
    return a[:diff] + "-" + a[diff + 1 :]


def prime_implicants(minterms: Set[int], n_vars: int) -> List[Cube]:
    """Prime implicants of the on-set via iterative cube merging."""
    if not minterms:
        return []
    current: Set[Cube] = {
        "".join("1" if (m >> i) & 1 else "0" for i in range(n_vars))
        for m in minterms
    }
    primes: Set[Cube] = set()
    while current:
        merged: Set[Cube] = set()
        used: Set[Cube] = set()
        cubes = sorted(current)
        by_ones: Dict[int, List[Cube]] = {}
        for cube in cubes:
            by_ones.setdefault(cube.count("1"), []).append(cube)
        for ones, group in sorted(by_ones.items()):
            for other in by_ones.get(ones + 1, []):
                for cube in group:
                    m = _merge_cubes(cube, other)
                    if m is not None:
                        merged.add(m)
                        used.add(cube)
                        used.add(other)
        primes |= current - used
        current = merged
    return sorted(primes)


def minimum_cover(minterms: Set[int], primes: Sequence[Cube]) -> List[Cube]:
    """Greedy prime cover with essential-prime extraction."""
    if not minterms:
        return []
    coverage: Dict[Cube, Set[int]] = {
        p: set(_cube_minterms(p)) & minterms for p in primes
    }
    remaining = set(minterms)
    chosen: List[Cube] = []

    # Essential primes: minterms covered by exactly one prime.
    for m in sorted(minterms):
        covering = [p for p in primes if m in coverage[p]]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
            remaining -= coverage[covering[0]]

    # Greedy cover of the rest.
    while remaining:
        best = max(primes, key=lambda p: (len(coverage[p] & remaining), -p.count("-")))
        gain = coverage[best] & remaining
        if not gain:
            raise NetworkError("prime cover failed to make progress")  # pragma: no cover
        chosen.append(best)
        remaining -= gain
    return chosen


@dataclass
class MinimizationResult:
    """Outcome of cover minimisation."""

    cover: SopCover
    original_cubes: int
    minimized_cubes: int
    original_literals: int
    minimized_literals: int

    @property
    def improved(self) -> bool:
        return (self.minimized_cubes, self.minimized_literals) < (
            self.original_cubes,
            self.original_literals,
        )


def _literals(cubes: Iterable[Cube]) -> int:
    return sum(len(c) - c.count("-") for c in cubes)


def minimize_cover(cover: SopCover, n_inputs: int, max_inputs: int = 12) -> MinimizationResult:
    """Quine–McCluskey minimisation of one SOP cover.

    Covers over more than ``max_inputs`` variables are returned
    unchanged (minterm expansion would be exponential).
    """
    original = MinimizationResult(
        cover=cover,
        original_cubes=len(cover.cubes),
        minimized_cubes=len(cover.cubes),
        original_literals=_literals(cover.cubes),
        minimized_literals=_literals(cover.cubes),
    )
    if n_inputs == 0 or n_inputs > max_inputs:
        return original

    minterms: Set[int] = set()
    for cube in cover.cubes:
        minterms |= set(_cube_minterms(cube))
    if cover.output_value == "0":
        minterms = set(range(1 << n_inputs)) - minterms

    primes = prime_implicants(minterms, n_vars=n_inputs)
    chosen = minimum_cover(minterms, primes)
    new_cover = SopCover(cubes=chosen, output_value="1")

    if (len(chosen), _literals(chosen)) >= (
        original.original_cubes,
        original.original_literals,
    ) and cover.output_value == "1":
        return original
    return MinimizationResult(
        cover=new_cover,
        original_cubes=original.original_cubes,
        minimized_cubes=len(chosen),
        original_literals=original.original_literals,
        minimized_literals=_literals(chosen),
    )


def minimize_network(network: LogicNetwork, max_inputs: int = 12) -> LogicNetwork:
    """Minimise every SOP node of a network (returns a new network)."""
    net = network.copy()
    for node in net.nodes.values():
        if node.gate_type is not GateType.SOP or node.cover is None:
            continue
        result = minimize_cover(node.cover, len(node.fanins), max_inputs=max_inputs)
        cover = result.cover
        if not cover.cubes:
            # Empty on-set/off-set covers are constants.
            node.gate_type = (
                GateType.CONST0 if cover.output_value == "1" else GateType.CONST1
            )
            node.fanins = []
            node.cover = None
            continue
        # Drop fanins no cube mentions.
        used = [
            i for i in range(len(node.fanins))
            if any(cube[i] != "-" for cube in cover.cubes)
        ]
        if len(used) != len(node.fanins):
            node.fanins = [node.fanins[i] for i in used]
            cover = SopCover(
                cubes=["".join(c[i] for i in used) for c in cover.cubes],
                output_value=cover.output_value,
            )
        node.cover = cover
    net.validate()
    return net
