"""Technology-independent logic network.

This module provides the central data structure of the library: a
:class:`LogicNetwork` of named nodes.  Nodes are primary inputs, logic
gates (AND/OR/NOT/BUF/XOR/XNOR/NAND/NOR/MUX/constants), generic SOP
covers (as read from BLIF ``.names``), or latch outputs.  Primary
outputs are named references to driver nodes.

The network is deliberately simple: a dict of nodes keyed by name, with
fanins stored as name lists.  All algorithms in the package (phase
transformation, BDD construction, power estimation, s-graph extraction)
operate on this one representation.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import NetworkError


class GateType(enum.Enum):
    """Functional type of a network node."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"  # fanins: (select, data0, data1)
    SOP = "sop"  # generic single-output cover (from BLIF .names)
    LATCH = "latch"  # latch *output*; single fanin is the latch data input

    @property
    def is_source(self) -> bool:
        """True for nodes with no logical fanin (inputs and constants)."""
        return self in (GateType.INPUT, GateType.CONST0, GateType.CONST1)

    @property
    def is_monotone(self) -> bool:
        """True for AND/OR/BUF gates, which a domino block may contain."""
        return self in (GateType.AND, GateType.OR, GateType.BUF)

    @property
    def dual(self) -> "GateType":
        """DeMorgan dual of the gate (AND<->OR, NAND<->NOR, BUF<->BUF).

        Raises :class:`NetworkError` for gates without a simple dual.
        """
        duals = {
            GateType.AND: GateType.OR,
            GateType.OR: GateType.AND,
            GateType.NAND: GateType.NOR,
            GateType.NOR: GateType.NAND,
            GateType.BUF: GateType.BUF,
            GateType.CONST0: GateType.CONST1,
            GateType.CONST1: GateType.CONST0,
        }
        if self not in duals:
            raise NetworkError(f"gate type {self.value} has no DeMorgan dual")
        return duals[self]


# A cube is a mapping position -> literal value: '0', '1' or '-'.
Cube = str


@dataclass
class SopCover:
    """Sum-of-products cover for a generic :data:`GateType.SOP` node.

    ``cubes`` is a list of cube strings over the node's fanins (same
    order).  ``output_value`` mirrors BLIF semantics: ``'1'`` means the
    cover lists the on-set, ``'0'`` means it lists the off-set.
    """

    cubes: List[Cube] = field(default_factory=list)
    output_value: str = "1"

    def evaluate(self, values: Sequence[bool]) -> bool:
        """Evaluate the cover on a fanin value vector."""
        hit = any(self._cube_matches(cube, values) for cube in self.cubes)
        if self.output_value == "1":
            return hit
        return not hit

    @staticmethod
    def _cube_matches(cube: Cube, values: Sequence[bool]) -> bool:
        for lit, val in zip(cube, values):
            if lit == "1" and not val:
                return False
            if lit == "0" and val:
                return False
        return True

    def validate(self, n_fanins: int) -> None:
        if self.output_value not in ("0", "1"):
            raise NetworkError(f"SOP output value must be '0' or '1', got {self.output_value!r}")
        for cube in self.cubes:
            if len(cube) != n_fanins:
                raise NetworkError(
                    f"cube {cube!r} has {len(cube)} literals, expected {n_fanins}"
                )
            bad = set(cube) - {"0", "1", "-"}
            if bad:
                raise NetworkError(f"cube {cube!r} contains invalid literals {sorted(bad)}")


@dataclass
class Node:
    """One node of a :class:`LogicNetwork`."""

    name: str
    gate_type: GateType
    fanins: List[str] = field(default_factory=list)
    cover: Optional[SopCover] = None
    # Latch bookkeeping (only for LATCH nodes): initial value 0/1/2(x)
    init_value: int = 2

    def evaluate(self, values: Sequence[bool]) -> bool:
        """Combinationally evaluate this node given fanin values."""
        t = self.gate_type
        if t is GateType.CONST0:
            return False
        if t is GateType.CONST1:
            return True
        if t is GateType.BUF:
            return values[0]
        if t is GateType.NOT:
            return not values[0]
        if t is GateType.AND:
            return all(values)
        if t is GateType.OR:
            return any(values)
        if t is GateType.NAND:
            return not all(values)
        if t is GateType.NOR:
            return not any(values)
        if t is GateType.XOR:
            acc = False
            for v in values:
                acc ^= v
            return acc
        if t is GateType.XNOR:
            acc = True
            for v in values:
                acc ^= v
            return acc
        if t is GateType.MUX:
            sel, d0, d1 = values
            return d1 if sel else d0
        if t is GateType.SOP:
            if self.cover is None:
                raise NetworkError(f"SOP node {self.name} has no cover")
            return self.cover.evaluate(values)
        raise NetworkError(f"cannot combinationally evaluate node {self.name} of type {t.value}")


class LogicNetwork:
    """A named multi-level logic network with optional latches.

    The network stores:

    * ``nodes`` — mapping name -> :class:`Node` (includes INPUT nodes and
      LATCH output nodes);
    * ``inputs`` — ordered list of primary-input names;
    * ``outputs`` — ordered list of ``(po_name, driver_name)`` pairs.  A
      PO is a named reference to an internal node (BLIF-style).

    Latches are modelled as LATCH nodes: the node's single fanin is the
    latch *data* input (a combinational node) and the node itself acts
    as a sequential source for the combinational logic that reads it.
    """

    def __init__(self, name: str = "network"):
        self.name = name
        self.nodes: Dict[str, Node] = {}
        self.inputs: List[str] = []
        self.outputs: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> Node:
        """Add a primary input node."""
        node = self._add_node(name, GateType.INPUT, [])
        self.inputs.append(name)
        return node

    def add_gate(
        self,
        name: str,
        gate_type: GateType,
        fanins: Sequence[str],
        cover: Optional[SopCover] = None,
    ) -> Node:
        """Add a combinational gate node."""
        if gate_type.is_source:
            if fanins:
                raise NetworkError(f"source node {name} cannot have fanins")
        elif gate_type in (GateType.NOT, GateType.BUF, GateType.LATCH):
            if len(fanins) != 1:
                raise NetworkError(
                    f"{gate_type.value} node {name} needs exactly 1 fanin, got {len(fanins)}"
                )
        elif gate_type is GateType.MUX:
            if len(fanins) != 3:
                raise NetworkError(f"MUX node {name} needs exactly 3 fanins")
        elif gate_type is GateType.SOP:
            if cover is None:
                raise NetworkError(f"SOP node {name} requires a cover")
            cover.validate(len(fanins))
        else:
            if len(fanins) < 1:
                raise NetworkError(f"{gate_type.value} node {name} needs at least 1 fanin")
        node = self._add_node(name, gate_type, list(fanins))
        node.cover = cover
        return node

    def add_latch(self, name: str, data_input: str, init_value: int = 0) -> Node:
        """Add a latch whose output node is ``name`` and data input is ``data_input``."""
        if init_value not in (0, 1, 2, 3):
            raise NetworkError(f"latch {name}: invalid init value {init_value}")
        node = self._add_node(name, GateType.LATCH, [data_input])
        node.init_value = init_value
        return node

    def add_output(self, po_name: str, driver: Optional[str] = None) -> None:
        """Declare a primary output.  ``driver`` defaults to ``po_name``."""
        self.outputs.append((po_name, driver if driver is not None else po_name))

    def _add_node(self, name: str, gate_type: GateType, fanins: List[str]) -> Node:
        if name in self.nodes:
            raise NetworkError(f"duplicate node name {name!r}")
        node = Node(name=name, gate_type=gate_type, fanins=fanins)
        self.nodes[name] = node
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def latches(self) -> List[Node]:
        """All latch nodes, in insertion order."""
        return [n for n in self.nodes.values() if n.gate_type is GateType.LATCH]

    @property
    def is_combinational(self) -> bool:
        return not any(n.gate_type is GateType.LATCH for n in self.nodes.values())

    @property
    def gates(self) -> List[Node]:
        """All non-source, non-latch (i.e. combinational logic) nodes."""
        return [
            n
            for n in self.nodes.values()
            if not n.gate_type.is_source and n.gate_type is not GateType.LATCH
        ]

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def output_drivers(self) -> List[str]:
        """Driver node names of the primary outputs, in PO order."""
        return [driver for _, driver in self.outputs]

    def output_names(self) -> List[str]:
        return [po for po, _ in self.outputs]

    def driver_of(self, po_name: str) -> str:
        for po, driver in self.outputs:
            if po == po_name:
                return driver
        raise NetworkError(f"unknown primary output {po_name!r}")

    def fanout_map(self) -> Dict[str, List[str]]:
        """Map node name -> list of node names that read it (latches included)."""
        fanouts: Dict[str, List[str]] = {name: [] for name in self.nodes}
        for node in self.nodes.values():
            for fi in node.fanins:
                if fi not in fanouts:
                    raise NetworkError(f"node {node.name} references unknown fanin {fi!r}")
                fanouts[fi].append(node.name)
        return fanouts

    def sources(self) -> List[str]:
        """Combinational sources: primary inputs, constants and latch outputs."""
        return [
            n.name
            for n in self.nodes.values()
            if n.gate_type.is_source or n.gate_type is GateType.LATCH
        ]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural well-formedness.  Raises :class:`NetworkError`."""
        for node in self.nodes.values():
            for fi in node.fanins:
                if fi not in self.nodes:
                    raise NetworkError(f"node {node.name} references unknown fanin {fi!r}")
            if node.gate_type is GateType.SOP:
                if node.cover is None:
                    raise NetworkError(f"SOP node {node.name} has no cover")
                node.cover.validate(len(node.fanins))
        for name in self.inputs:
            if name not in self.nodes:
                raise NetworkError(f"declared input {name!r} has no node")
            if self.nodes[name].gate_type is not GateType.INPUT:
                raise NetworkError(f"declared input {name!r} is a {self.nodes[name].gate_type.value}")
        for po, driver in self.outputs:
            if driver not in self.nodes:
                raise NetworkError(f"output {po!r} driven by unknown node {driver!r}")
        self._check_combinational_acyclic()

    def _check_combinational_acyclic(self) -> None:
        """Detect combinational cycles (cycles not broken by a latch)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self.nodes}
        for start in self.nodes:
            if color[start] != WHITE:
                continue
            stack: List[Tuple[str, Iterator[str]]] = [(start, iter(self._comb_fanins(start)))]
            color[start] = GRAY
            while stack:
                name, it = stack[-1]
                advanced = False
                for fi in it:
                    if color[fi] == GRAY:
                        raise NetworkError(f"combinational cycle through node {fi!r}")
                    if color[fi] == WHITE:
                        color[fi] = GRAY
                        stack.append((fi, iter(self._comb_fanins(fi))))
                        advanced = True
                        break
                if not advanced:
                    color[name] = BLACK
                    stack.pop()

    def _comb_fanins(self, name: str) -> List[str]:
        node = self.nodes[name]
        if node.gate_type is GateType.LATCH or node.gate_type.is_source:
            return []
        return node.fanins

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        input_values: Mapping[str, bool],
        state: Optional[Mapping[str, bool]] = None,
    ) -> Dict[str, bool]:
        """Zero-delay evaluation of every node.

        ``input_values`` maps primary-input names to booleans; ``state``
        maps latch names to their current output values (defaults to the
        latch init values, with ``x`` treated as 0).  Returns a dict of
        all node values.  Latch *next* state is the value of each
        latch's data input in the returned dict.
        """
        values: Dict[str, bool] = {}
        for name in self.inputs:
            if name not in input_values:
                raise NetworkError(f"missing value for primary input {name!r}")
            values[name] = bool(input_values[name])
        for latch in self.latches:
            if state is not None and latch.name in state:
                values[latch.name] = bool(state[latch.name])
            else:
                values[latch.name] = latch.init_value == 1
        for name in self.topological_order():
            node = self.nodes[name]
            if name in values:
                continue
            if node.gate_type is GateType.CONST0:
                values[name] = False
            elif node.gate_type is GateType.CONST1:
                values[name] = True
            else:
                values[name] = node.evaluate([values[fi] for fi in node.fanins])
        return values

    def next_state(self, values: Mapping[str, bool]) -> Dict[str, bool]:
        """Extract the next latch state from a full evaluation dict."""
        return {latch.name: bool(values[latch.fanins[0]]) for latch in self.latches}

    def evaluate_outputs(self, input_values: Mapping[str, bool]) -> Dict[str, bool]:
        """Evaluate and return only the primary-output values (combinational)."""
        values = self.evaluate(input_values)
        return {po: values[driver] for po, driver in self.outputs}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Topological order of all nodes, treating latch outputs as sources."""
        order: List[str] = []
        visited: Dict[str, int] = {}
        for root in self.nodes:
            if root in visited:
                continue
            stack: List[Tuple[str, Iterator[str]]] = [(root, iter(self._comb_fanins(root)))]
            visited[root] = 1
            while stack:
                name, it = stack[-1]
                advanced = False
                for fi in it:
                    if fi not in visited:
                        visited[fi] = 1
                        stack.append((fi, iter(self._comb_fanins(fi))))
                        advanced = True
                        break
                if not advanced:
                    order.append(name)
                    stack.pop()
        return order

    # ------------------------------------------------------------------
    # Editing helpers
    # ------------------------------------------------------------------
    def remove_node(self, name: str) -> None:
        """Remove a node that has no remaining fanouts."""
        fanouts = self.fanout_map()
        if fanouts[name]:
            raise NetworkError(f"cannot remove node {name!r}: still has fanouts {fanouts[name]}")
        if any(driver == name for _, driver in self.outputs):
            raise NetworkError(f"cannot remove node {name!r}: drives a primary output")
        if name in self.inputs:
            self.inputs.remove(name)
        del self.nodes[name]

    def replace_fanin(self, node_name: str, old: str, new: str) -> None:
        node = self.node(node_name)
        node.fanins = [new if fi == old else fi for fi in node.fanins]

    def fresh_name(self, base: str) -> str:
        """Return a node name not yet in use, derived from ``base``."""
        if base not in self.nodes:
            return base
        for i in itertools.count(1):
            candidate = f"{base}__{i}"
            if candidate not in self.nodes:
                return candidate
        raise AssertionError("unreachable")

    def copy(self, name: Optional[str] = None) -> "LogicNetwork":
        """Deep-copy the network."""
        clone = LogicNetwork(name or self.name)
        clone.inputs = list(self.inputs)
        clone.outputs = list(self.outputs)
        for node in self.nodes.values():
            cover = None
            if node.cover is not None:
                cover = SopCover(cubes=list(node.cover.cubes), output_value=node.cover.output_value)
            clone.nodes[node.name] = Node(
                name=node.name,
                gate_type=node.gate_type,
                fanins=list(node.fanins),
                cover=cover,
                init_value=node.init_value,
            )
        return clone

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Structural content hash of the network (sha256 hex digest).

        The fingerprint is a pure function of the network's *content* —
        name, input/output order, and every node's type, fanins, cover
        and latch init value — so two independently parsed copies of
        the same BLIF file hash identically, while any single-gate edit
        (type, fanin, cube, polarity) produces a different digest.  Node
        *insertion* order does not participate: nodes are hashed in
        sorted-name order, so structurally identical networks built in
        different orders still agree.

        This is the persistent-cache analogue of the in-process
        ``id()``-keyed :class:`repro.core.pipeline.PipelineCache` key:
        stable across processes, runs and object identity.
        """
        parts: List[str] = [
            self.name,
            "pi:" + ",".join(self.inputs),
            "po:" + ",".join(f"{po}={driver}" for po, driver in self.outputs),
        ]
        for name in sorted(self.nodes):
            node = self.nodes[name]
            cover = ""
            if node.cover is not None:
                cover = node.cover.output_value + "|" + ";".join(sorted(node.cover.cubes))
            parts.append(
                f"{name}\x1f{node.gate_type.value}\x1f{','.join(node.fanins)}"
                f"\x1f{cover}\x1f{node.init_value}"
            )
        digest = hashlib.sha256("\x1e".join(parts).encode("utf-8"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Statistics / display
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Summary statistics: node counts by category."""
        counts: Dict[str, int] = {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "latches": len(self.latches),
            "gates": len(self.gates),
            "inverters": sum(1 for n in self.nodes.values() if n.gate_type is GateType.NOT),
            "nodes": len(self.nodes),
        }
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"<LogicNetwork {self.name!r}: {s['inputs']} PI, {s['outputs']} PO, "
            f"{s['latches']} latches, {s['gates']} gates>"
        )


def network_from_functions(
    n_inputs: int,
    functions: Mapping[str, Callable[[Sequence[bool]], bool]],
    name: str = "truth",
) -> Tuple[LogicNetwork, List[str]]:
    """Build a trivial SOP network from python callables (testing helper).

    Each function receives the tuple of input booleans.  Returns the
    network and the list of input names ``x0..x{n-1}``.
    """
    net = LogicNetwork(name)
    input_names = [f"x{i}" for i in range(n_inputs)]
    for nm in input_names:
        net.add_input(nm)
    for out_name, fn in functions.items():
        cubes = []
        for bits in itertools.product([False, True], repeat=n_inputs):
            if fn(bits):
                cubes.append("".join("1" if b else "0" for b in bits))
        cover = SopCover(cubes=cubes, output_value="1")
        net.add_gate(out_name, GateType.SOP, input_names, cover=cover)
        net.add_output(out_name)
    return net, input_names
