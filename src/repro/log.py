"""Minimal logging setup for the long-running entry points.

The library itself stays quiet by default — module loggers hang off the
``repro`` namespace (``logging.getLogger(__name__)`` everywhere) and
propagate to whatever the host application configured.  The long-lived
processes (``repro-domino serve`` and the ``fleet`` coordinator/worker
commands) call :func:`configure_logging` once at startup, driven by
their ``--log-level`` flag, to get timestamped per-job lifecycle lines
on stderr without touching the root logger::

    2026-08-07 12:00:01 INFO    repro.serve.service: job-3 frg1 queued
    2026-08-07 12:00:04 INFO    repro.fleet.coordinator: assigned job-3 \
to worker-a1 (affinity hit)

Embedding applications that already own logging configuration simply
never call :func:`configure_logging`; the ``repro`` logger then behaves
like any other library logger.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, Union

from repro.errors import ConfigError

#: Accepted ``--log-level`` names, mildest last.
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

#: Line format used by :func:`configure_logging`.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: Marker attribute identifying the handler this module installed, so
#: repeated configure calls replace it instead of stacking duplicates.
_HANDLER_MARK = "_repro_log_handler"


def parse_level(level: Union[str, int]) -> int:
    """A ``logging`` level number from a name or number.

    Accepts the :data:`LOG_LEVELS` names case-insensitively (plus the
    standard upper-case spellings) or an explicit integer; anything
    else raises :class:`ConfigError` naming the valid choices.
    """
    if isinstance(level, bool):  # bool is an int subclass; reject it
        raise ConfigError(f"bad log level {level!r} (use one of {'/'.join(LOG_LEVELS)})")
    if isinstance(level, int):
        return level
    name = str(level).strip().lower()
    if name not in LOG_LEVELS:
        raise ConfigError(
            f"bad log level {level!r} (use one of {'/'.join(LOG_LEVELS)})"
        )
    return getattr(logging, name.upper())


def configure_logging(
    level: Union[str, int] = "info", *, stream=None
) -> logging.Logger:
    """Configure the ``repro`` logger tree; returns the ``repro`` logger.

    Installs one stream handler (default: ``sys.stderr``) with the
    :data:`LOG_FORMAT` line format on the ``repro`` logger and stops
    propagation to the root logger, so library log lines appear exactly
    once however the host process configured logging.  Idempotent:
    calling again replaces the previously installed handler (and can
    change the level), it never stacks a second one.
    """
    numeric = parse_level(level)
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    logger.setLevel(numeric)
    logger.propagate = False
    return logger


def add_log_level_flag(parser) -> None:
    """Attach the shared ``--log-level`` option to an argparse parser."""
    parser.add_argument(
        "--log-level",
        default="info",
        metavar="LEVEL",
        help=f"log verbosity on stderr ({'/'.join(LOG_LEVELS)}; default info)",
    )


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The ``repro`` logger, or a child of it (``get_logger("fleet")``)."""
    return logging.getLogger(f"repro.{name}" if name else "repro")
