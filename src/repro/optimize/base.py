"""Strategy API for the phase-assignment power search.

This module defines the three pieces every optimizer shares:

* :class:`OptimizationResult` / :class:`CommitRecord` — the outcome
  record (moved here from ``repro.core.optimizer``, which re-exports
  them for compatibility);
* :class:`OptimizerBudget` + :class:`BudgetMeter` — the shared
  evaluation / wall-clock / tolerance budget every strategy honours;
* :class:`OptimizerStrategy` + the string-keyed registry
  (:func:`register_strategy`, :func:`make_strategy`) that turns the
  search into an open, benchmarkable axis of the flow.

See :mod:`repro.optimize` for the registry how-to.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, fields
from typing import (
    Any,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
)

from repro.errors import ConfigError
from repro.phase import PhaseAssignment

# ----------------------------------------------------------------------
# outcome records


@dataclass
class CommitRecord:
    """One iteration of a commit-if-better loop (for tracing/visualisation)."""

    pair: Tuple[str, str]
    moves: Tuple[Any, Any]
    cost: float
    candidate_power: float
    committed: bool


@dataclass
class OptimizationResult:
    """Outcome of a phase-assignment power optimisation."""

    assignment: PhaseAssignment
    power: float
    initial_power: float
    method: str
    evaluations: int
    history: List[CommitRecord] = field(default_factory=list)
    #: registry name of the strategy that produced this result (``None``
    #: for results from the legacy keyword API or old store records)
    strategy: Optional[str] = None

    @property
    def savings_percent(self) -> float:
        if self.initial_power == 0:
            return 0.0
        return 100.0 * (self.initial_power - self.power) / self.initial_power


# ----------------------------------------------------------------------
# budgets

#: ``optimizer_params`` keys that describe the budget rather than the
#: strategy itself.  ``max_evaluations`` and ``max_seconds`` bound
#: every strategy the same way; ``tolerance`` feeds each strategy's own
#: accept/early-stop rule (and is ignored by ``exhaustive``, which has
#: neither).
BUDGET_KEYS = ("max_evaluations", "max_seconds", "tolerance")


@dataclass(frozen=True)
class OptimizerBudget:
    """Shared resource limits for one optimisation run.

    Attributes
    ----------
    max_evaluations:
        Cap on power evaluations (``None`` = unlimited).  Strategies
        stop before *starting* an evaluation that would exceed it, so
        ``result.evaluations <= max_evaluations`` always holds.
    max_seconds:
        Wall-clock cap (``None`` = unlimited), checked between
        evaluations — a single evaluation is never interrupted.  This
        is the one knob that trades reproducibility for latency: where
        the cap lands depends on machine speed and load, so two runs of
        the same config may truncate differently.  The flow therefore
        never serves wall-clock-budgeted runs from the persistent store
        (:meth:`repro.core.config.FlowConfig.optimizer_reproducible`).
    tolerance:
        Relative early-stop threshold in ``[0, 1)``: a candidate only
        counts as an improvement when it beats the incumbent by more
        than ``tolerance * incumbent``.  ``0.0`` (the default) keeps
        the exact historical accept rule, which is what makes the
        default ``pairwise`` strategy bit-identical to the
        pre-registry optimizer.
    """

    max_evaluations: Optional[int] = None
    max_seconds: Optional[float] = None
    tolerance: float = 0.0

    def __post_init__(self) -> None:
        if self.max_evaluations is not None and (
            not isinstance(self.max_evaluations, int)
            or isinstance(self.max_evaluations, bool)
            or self.max_evaluations < 1
        ):
            raise ConfigError(
                f"max_evaluations must be a positive int or None, "
                f"got {self.max_evaluations!r}"
            )
        if self.max_seconds is not None and (
            not isinstance(self.max_seconds, (int, float))
            or isinstance(self.max_seconds, bool)
            or self.max_seconds <= 0
        ):
            raise ConfigError(
                f"max_seconds must be a positive number or None, "
                f"got {self.max_seconds!r}"
            )
        if (
            not isinstance(self.tolerance, (int, float))
            or isinstance(self.tolerance, bool)
            or not 0.0 <= float(self.tolerance) < 1.0
        ):
            raise ConfigError(
                f"tolerance must be in [0, 1), got {self.tolerance!r}"
            )

    @property
    def unlimited(self) -> bool:
        return self.max_evaluations is None and self.max_seconds is None

    def start(self) -> "BudgetMeter":
        """A fresh meter tracking this budget from *now*."""
        return BudgetMeter(self)

    def key(self) -> tuple:
        """Hashable identity (participates in store keys)."""
        return (self.max_evaluations, self.max_seconds, self.tolerance)


class BudgetMeter:
    """Mutable per-run tracker of one :class:`OptimizerBudget`.

    Strategies call :meth:`spend` once per power evaluation and check
    :attr:`exhausted` before starting another; :meth:`improves` applies
    the tolerance-aware accept rule.  With the default (unlimited,
    zero-tolerance) budget every check is a no-op, which is what keeps
    budget plumbing out of the strategies' bit-identity contract.
    """

    def __init__(self, budget: OptimizerBudget) -> None:
        self.budget = budget
        self.evaluations = 0
        self._deadline = (
            None
            if budget.max_seconds is None
            else time.perf_counter() + budget.max_seconds
        )

    def spend(self, n: int = 1) -> None:
        self.evaluations += n

    @property
    def exhausted(self) -> bool:
        """True once another evaluation would exceed the budget."""
        if (
            self.budget.max_evaluations is not None
            and self.evaluations >= self.budget.max_evaluations
        ):
            return True
        if self._deadline is not None and time.perf_counter() >= self._deadline:
            return True
        return False

    def improves(self, candidate: float, incumbent: float) -> bool:
        """Tolerance-aware accept rule: does ``candidate`` beat
        ``incumbent`` by more than ``tolerance * incumbent``?

        With ``tolerance == 0.0`` this is exactly ``candidate <
        incumbent`` (the multiplication by ``1.0`` is float-exact), so
        the historical commit rule survives unchanged.
        """
        return candidate < incumbent * (1.0 - self.budget.tolerance)


def split_budget_params(
    params: Optional[Mapping[str, Any]],
) -> Tuple[OptimizerBudget, Dict[str, Any]]:
    """Split an ``optimizer_params`` mapping into the shared
    :class:`OptimizerBudget` (reserved keys: ``max_evaluations``,
    ``max_seconds``, ``tolerance``) and the strategy-specific rest."""
    params = dict(params or {})
    budget = OptimizerBudget(
        max_evaluations=params.pop("max_evaluations", None),
        max_seconds=params.pop("max_seconds", None),
        tolerance=params.pop("tolerance", 0.0),
    )
    return budget, params


def budget_only_params(
    params: Optional[Mapping[str, Any]],
) -> Optional[Dict[str, Any]]:
    """What survives a strategy *switch*: the shared budget keys of an
    ``optimizer_params`` mapping, or ``None`` when none remain.

    One strategy's knobs must never leak into another, but the budget
    is strategy-independent — the single rule both the CLI
    (``--optimizer`` over a config file) and sweep grids
    (:func:`repro.core.batch.point_config`) apply.
    """
    kept = {k: v for k, v in (params or {}).items() if k in BUDGET_KEYS}
    return kept or None


# ----------------------------------------------------------------------
# strategy protocol + registry


class OptimizerStrategy(ABC):
    """One phase-assignment search strategy.

    Concrete strategies are frozen dataclasses whose fields are the
    strategy's tunable parameters (what ``FlowConfig.optimizer_params``
    / ``--optimizer-param`` feed); construction validates them and
    raises :class:`ConfigError` on bad values.  The search itself is a
    single call::

        result = strategy.optimize(evaluator, initial=start, budget=b, seed=0)

    Contract:

    * deterministic — equal ``(evaluator, initial, budget, seed)``
      always produce the same :class:`OptimizationResult` (exception:
      a ``max_seconds`` wall-clock cap, which truncates wherever the
      clock lands; such runs are excluded from store serving);
    * budget-honouring — ``result.evaluations`` never exceeds
      ``budget.max_evaluations`` and the wall clock is checked between
      evaluations;
    * ``result.power <= result.initial_power`` (a strategy may fail to
      improve, never regress — return the start if nothing better was
      found);
    * ``result.strategy`` is the registry name.
    """

    #: registry name (set by :func:`register_strategy`).
    name: ClassVar[str] = "?"

    #: parameter name → :class:`repro.core.config.FlowConfig` field
    #: supplying its default when the parameter is not given explicitly
    #: (how the legacy ``power_exhaustive_limit`` / ``max_pairs`` knobs
    #: keep steering the default strategy).
    config_params: ClassVar[Mapping[str, str]] = {}

    @abstractmethod
    def optimize(
        self,
        evaluator: "PhaseEvaluator",  # noqa: F821
        *,
        initial: Optional[PhaseAssignment] = None,
        budget: Optional[OptimizerBudget] = None,
        seed: int = 0,
    ) -> OptimizationResult:
        """Search for a low-power assignment of ``evaluator``'s outputs."""

    def params(self) -> Dict[str, Any]:
        """This instance's parameter values (dataclass fields)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


_REGISTRY: Dict[str, Type[OptimizerStrategy]] = {}


def register_strategy(name: str):
    """Class decorator registering an :class:`OptimizerStrategy` under
    ``name`` (see :mod:`repro.optimize` for a worked example).  The
    name must be unique; re-registering raises :class:`ConfigError` so
    a plugin typo cannot silently shadow a built-in."""

    def decorator(cls: Type[OptimizerStrategy]) -> Type[OptimizerStrategy]:
        if not (isinstance(cls, type) and issubclass(cls, OptimizerStrategy)):
            raise ConfigError(
                f"@register_strategy({name!r}) needs an OptimizerStrategy "
                f"subclass, got {cls!r}"
            )
        if name in _REGISTRY and _REGISTRY[name] is not cls:
            raise ConfigError(
                f"optimizer strategy {name!r} is already registered "
                f"(by {_REGISTRY[name].__name__})"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def unregister_strategy(name: str) -> None:
    """Remove a registration (test hygiene for plugin-style tests)."""
    _REGISTRY.pop(name, None)


def strategy_names() -> Tuple[str, ...]:
    """All registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_strategy_class(name: str) -> Type[OptimizerStrategy]:
    """The registered class for ``name``; unknown names raise
    :class:`ConfigError` listing what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown optimizer strategy {name!r} "
            f"(registered: {', '.join(strategy_names()) or 'none'})"
        ) from None


def make_strategy(name: str, **params: Any) -> OptimizerStrategy:
    """Instantiate a registered strategy with validated parameters.

    Unknown parameter names and bad values both raise
    :class:`ConfigError` naming the offender — a stale config can never
    silently drop a knob.
    """
    cls = get_strategy_class(name)
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise ConfigError(
            f"optimizer strategy {name!r} does not accept param(s): "
            f"{', '.join(unknown)} (accepted: {', '.join(sorted(allowed)) or 'none'})"
        )
    try:
        return cls(**params)
    except ConfigError:
        raise
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"bad params for optimizer strategy {name!r}: {exc}") from exc


def validate_optimizer(name: str, params: Optional[Mapping[str, Any]]) -> None:
    """Config-time validation used by :meth:`FlowConfig.validate`:
    the name must be registered, budget keys must parse, and the
    remaining params must construct the strategy.  Raises
    :class:`ConfigError` on the first problem."""
    if not isinstance(name, str) or not name:
        raise ConfigError(f"optimizer must be a strategy name, got {name!r}")
    if params is not None and not isinstance(params, Mapping):
        raise ConfigError(
            f"optimizer_params must be a mapping, got {type(params).__name__}"
        )
    _, strategy_params = split_budget_params(params)
    make_strategy(name, **strategy_params)
