"""Built-in optimizer strategies.

``pairwise`` is the paper's Section 4.1 heuristic and the flow default;
``exhaustive`` enumerates every assignment; ``groupwise`` extends the
pairwise cost to output groups (Section 4.1's "greater degree of
interaction"); ``greedy-flip``, ``anneal`` and ``random`` are
registry-native baselines that explore the same search space without
the paper's cost model.  All honour the shared
:class:`~repro.optimize.base.OptimizerBudget` and are deterministic for
a fixed ``(evaluator, initial, budget, seed)``.

The ``pairwise`` loop follows the paper's seven steps exactly:

1. Generate an arbitrary initial phase assignment.
2. For each pair of primary outputs still in the candidate set, compute
   the cost K of the four retain/invert combinations.
3. Choose the pair + combination of minimum cost.
4. Synthesise the circuit with that assignment (implicitly — the
   evaluator's polarity masks stand in for re-synthesis).
5. Measure the power (Section 4.2 estimator).
6. Commit the combination iff power decreased; either way remove the
   pair from the candidate set.
7. Repeat from step 2 while candidate pairs remain.

With the cost extended to all outputs the heuristic degenerates into a
"greedily ordered exhaustive search"; the paper effectively uses that
on frg1 (3 outputs → 8 assignments), which is why ``pairwise`` carries
an ``exhaustive_limit`` parameter reproducing the historical ``auto``
dispatch — at or below the limit it runs the full enumeration.
"""

from __future__ import annotations

import itertools
import math
import random as _random
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.phase import PhaseAssignment, enumerate_assignments
from repro.optimize.base import (
    BudgetMeter,
    CommitRecord,
    OptimizationResult,
    OptimizerBudget,
    OptimizerStrategy,
    register_strategy,
)

#: Fallback for ``pairwise.exhaustive_limit`` when neither the param
#: nor a FlowConfig supplies one (the historical ``run_flow`` default).
DEFAULT_EXHAUSTIVE_LIMIT = 10


def _meter(budget: Optional[OptimizerBudget]) -> BudgetMeter:
    return (budget or OptimizerBudget()).start()


def _exhaustive_search(
    evaluator,
    initial: Optional[PhaseAssignment],
    meter: BudgetMeter,
    *,
    method: str,
    strategy: str,
) -> OptimizationResult:
    """Full enumeration (shared by ``exhaustive`` and degenerate
    ``pairwise``); the budget can truncate it, in enumeration order."""
    outputs = evaluator.outputs
    start = initial or PhaseAssignment.all_positive(outputs)
    initial_power = evaluator.power(start)
    meter.spend()
    best_assignment = start
    best_power = initial_power
    for assignment in enumerate_assignments(outputs):
        if meter.exhausted:
            break
        power = evaluator.power(assignment)
        meter.spend()
        if power < best_power:
            best_assignment, best_power = assignment, power
    return OptimizationResult(
        assignment=best_assignment,
        power=best_power,
        initial_power=initial_power,
        method=method,
        evaluations=meter.evaluations,
        strategy=strategy,
    )


@register_strategy("exhaustive")
@dataclass(frozen=True)
class ExhaustiveStrategy(OptimizerStrategy):
    """Enumerate all ``2^n`` assignments (careful: exponential).

    Provably optimal when it completes; an
    :class:`~repro.optimize.base.OptimizerBudget` truncates the
    enumeration (in enumeration order) on circuits too large for it.
    """

    def optimize(self, evaluator, *, initial=None, budget=None, seed=0):
        return _exhaustive_search(
            evaluator, initial, _meter(budget), method="exhaustive", strategy=self.name
        )


@register_strategy("pairwise")
@dataclass(frozen=True)
class PairwiseStrategy(OptimizerStrategy):
    """The paper's Section 4.1 pairwise heuristic (the flow default).

    Parameters
    ----------
    exhaustive_limit:
        At or below this many outputs the heuristic degenerates into
        the full enumeration, exactly as the paper uses it (and exactly
        as the historical ``method="auto"`` dispatch did).  ``0``
        forces the pairwise loop always; ``None`` (default) takes
        ``FlowConfig.power_exhaustive_limit`` when driven by the flow,
        else 10.
    max_pairs:
        Cap on candidate pairs for very large circuits (keep the
        highest-overlap pairs); ``None`` (default) keeps them all, or
        takes ``FlowConfig.max_pairs`` when driven by the flow.
    """

    exhaustive_limit: Optional[int] = None
    max_pairs: Optional[int] = None

    config_params = {
        "exhaustive_limit": "power_exhaustive_limit",
        "max_pairs": "max_pairs",
    }

    def __post_init__(self) -> None:
        if self.exhaustive_limit is not None and (
            not isinstance(self.exhaustive_limit, int)
            or isinstance(self.exhaustive_limit, bool)
            or self.exhaustive_limit < 0
        ):
            raise ConfigError(
                f"exhaustive_limit must be an int >= 0 or None, "
                f"got {self.exhaustive_limit!r}"
            )
        if self.max_pairs is not None and (
            not isinstance(self.max_pairs, int)
            or isinstance(self.max_pairs, bool)
            or self.max_pairs < 0
        ):
            raise ConfigError(
                f"max_pairs must be an int >= 0 or None, got {self.max_pairs!r}"
            )

    def optimize(self, evaluator, *, initial=None, budget=None, seed=0):
        meter = _meter(budget)
        limit = (
            self.exhaustive_limit
            if self.exhaustive_limit is not None
            else DEFAULT_EXHAUSTIVE_LIMIT
        )
        if len(evaluator.outputs) <= limit:
            return _exhaustive_search(
                evaluator, initial, meter, method="exhaustive", strategy=self.name
            )
        return _pairwise_search(
            evaluator, initial, meter, max_pairs=self.max_pairs, strategy=self.name
        )


def _pairwise_search(
    evaluator,
    initial: Optional[PhaseAssignment],
    meter: BudgetMeter,
    *,
    max_pairs: Optional[int],
    strategy: str,
) -> OptimizationResult:
    from repro.core.cost import CostModelData, Move, best_pair_and_combo

    outputs = evaluator.outputs
    n = len(outputs)
    if n < 2:
        start = initial or PhaseAssignment.all_positive(outputs)
        start_power = evaluator.power(start)
        meter.spend()
        best, best_power = start, start_power
        if n == 1 and not meter.exhausted:
            flipped = start.flipped(outputs[0])
            flipped_power = evaluator.power(flipped)
            meter.spend()
            if meter.improves(flipped_power, best_power):
                best, best_power = flipped, flipped_power
        return OptimizationResult(
            best, best_power, start_power, "pairwise", meter.evaluations,
            strategy=strategy,
        )

    data = CostModelData.from_network(evaluator.network)
    # Align index order with evaluator outputs.
    assert data.outputs == outputs

    current = initial or PhaseAssignment.all_positive(outputs)
    current_power = evaluator.power(current)
    meter.spend()
    initial_power = current_power

    # A_k per output under the current assignment (flips with the phase).
    avg = np.array(
        [evaluator.average_cone_probability(current, po) for po in outputs]
    )

    remaining = np.triu(np.ones((n, n), dtype=bool), k=1)
    if max_pairs is not None and remaining.sum() > max_pairs:
        # Keep the pairs with the largest overlap-weighted cones — the
        # ones whose phases interact most.
        scores = data.overlap * (data.sizes[:, None] + data.sizes[None, :])
        flat = np.where(remaining, scores, -np.inf).ravel()
        keep = np.argsort(flat)[::-1][:max_pairs]
        mask = np.zeros(n * n, dtype=bool)
        mask[keep] = True
        remaining &= mask.reshape(n, n)

    history: List[CommitRecord] = []
    while remaining.any() and not meter.exhausted:
        i, j, combo, cost = best_pair_and_combo(data, avg, remaining)
        po_i, po_j = outputs[i], outputs[j]
        mi, mj = combo

        flips: List[str] = []
        if mi is Move.INVERT:
            flips.append(po_i)
        if mj is Move.INVERT:
            flips.append(po_j)
        candidate = current.flipped(*flips) if flips else current
        candidate_power = evaluator.power(candidate)
        meter.spend()

        committed = meter.improves(candidate_power, current_power) and bool(flips)
        if committed:
            current = candidate
            current_power = candidate_power
            if mi is Move.INVERT:
                avg[i] = 1.0 - avg[i]
            if mj is Move.INVERT:
                avg[j] = 1.0 - avg[j]
        history.append(
            CommitRecord(
                pair=(po_i, po_j),
                moves=combo,
                cost=cost,
                candidate_power=candidate_power,
                committed=committed,
            )
        )
        remaining[i, j] = False

    return OptimizationResult(
        assignment=current,
        power=current_power,
        initial_power=initial_power,
        method="pairwise",
        evaluations=meter.evaluations,
        history=history,
        strategy=strategy,
    )


@register_strategy("groupwise")
@dataclass(frozen=True)
class GroupwiseStrategy(OptimizerStrategy):
    """The Section 4.1 loop with the cost function extended to groups.

    Each primary output anchors one candidate group consisting of the
    anchor and its ``group_size - 1`` highest-overlap partners.  Every
    iteration scores all remaining groups under all ``2^k`` move
    combinations with :func:`repro.core.cost.group_cost`, applies the
    best, measures power, and commits iff it dropped.
    """

    group_size: int = 3

    def __post_init__(self) -> None:
        if (
            not isinstance(self.group_size, int)
            or isinstance(self.group_size, bool)
            or self.group_size < 2
        ):
            raise ConfigError(
                f"group_size must be an int >= 2, got {self.group_size!r}"
            )

    def optimize(self, evaluator, *, initial=None, budget=None, seed=0):
        from repro.core.cost import CostModelData, Move, group_cost

        meter = _meter(budget)
        outputs = evaluator.outputs
        n = len(outputs)
        data = CostModelData.from_network(evaluator.network)
        assert data.outputs == outputs

        current = initial or PhaseAssignment.all_positive(outputs)
        current_power = evaluator.power(current)
        meter.spend()
        initial_power = current_power
        avg = np.array(
            [evaluator.average_cone_probability(current, po) for po in outputs]
        )

        # Build anchored groups by overlap affinity.
        k = min(self.group_size, n)
        groups: List[Tuple[int, ...]] = []
        for anchor in range(n):
            partners = np.argsort(data.overlap[anchor])[::-1]
            members = [anchor]
            for p in partners:
                if int(p) != anchor and len(members) < k:
                    members.append(int(p))
            groups.append(tuple(members))

        move_combos = list(itertools.product((Move.RETAIN, Move.INVERT), repeat=k))
        history: List[CommitRecord] = []
        remaining = set(range(len(groups)))
        while remaining and not meter.exhausted:
            best: Optional[Tuple[float, int, Tuple]] = None
            for gi in remaining:
                members = groups[gi]
                sizes = [data.sizes[m] for m in members]
                overlaps = data.overlap[np.ix_(members, members)]
                avgs = [avg[m] for m in members]
                for combo in move_combos:
                    cost = group_cost(sizes, overlaps, avgs, combo)
                    if best is None or cost < best[0]:
                        best = (cost, gi, combo)
            assert best is not None
            cost, gi, combo = best
            members = groups[gi]
            flips = [outputs[m] for m, mv in zip(members, combo) if mv is Move.INVERT]
            candidate = current.flipped(*flips) if flips else current
            candidate_power = evaluator.power(candidate)
            meter.spend()
            committed = meter.improves(candidate_power, current_power) and bool(flips)
            if committed:
                current = candidate
                current_power = candidate_power
                for m, mv in zip(members, combo):
                    if mv is Move.INVERT:
                        avg[m] = 1.0 - avg[m]
            history.append(
                CommitRecord(
                    pair=(outputs[members[0]], outputs[members[-1]]),
                    moves=(combo[0], combo[-1]),
                    cost=cost,
                    candidate_power=candidate_power,
                    committed=committed,
                )
            )
            remaining.discard(gi)

        return OptimizationResult(
            assignment=current,
            power=current_power,
            initial_power=initial_power,
            method=f"groupwise-{self.group_size}",
            evaluations=meter.evaluations,
            history=history,
            strategy=self.name,
        )


@register_strategy("greedy-flip")
@dataclass(frozen=True)
class GreedyFlipStrategy(OptimizerStrategy):
    """Steepest-descent single-output flips with random restarts.

    From each start, every single-output flip is scored and the best
    (tolerance-significant) improvement is taken until a local minimum;
    ``restarts - 1`` further descents start from deterministic random
    assignments (seeded ``seed + r``).  The global best across starts
    wins.  A model-free baseline for the paper's cost-driven pair
    ordering — same moves, no cost model.
    """

    restarts: int = 4

    def __post_init__(self) -> None:
        if (
            not isinstance(self.restarts, int)
            or isinstance(self.restarts, bool)
            or self.restarts < 1
        ):
            raise ConfigError(f"restarts must be an int >= 1, got {self.restarts!r}")

    def optimize(self, evaluator, *, initial=None, budget=None, seed=0):
        meter = _meter(budget)
        outputs = evaluator.outputs
        start = initial or PhaseAssignment.all_positive(outputs)
        initial_power = evaluator.power(start)
        meter.spend()

        starts: List[PhaseAssignment] = [start]
        for r in range(self.restarts - 1):
            starts.append(PhaseAssignment.random(outputs, seed=seed + r))

        best, best_power = start, initial_power
        for s_index, current in enumerate(starts):
            if s_index == 0:
                current_power = initial_power
            else:
                if meter.exhausted:
                    break
                current_power = evaluator.power(current)
                meter.spend()
            improved = True
            while improved and outputs and not meter.exhausted:
                improved = False
                step_best: Optional[Tuple[float, PhaseAssignment]] = None
                for po in outputs:
                    if meter.exhausted:
                        break
                    candidate = current.flipped(po)
                    power = evaluator.power(candidate)
                    meter.spend()
                    if step_best is None or power < step_best[0]:
                        step_best = (power, candidate)
                if step_best is not None and meter.improves(
                    step_best[0], current_power
                ):
                    current_power, current = step_best
                    improved = True
            if current_power < best_power:
                best, best_power = current, current_power

        return OptimizationResult(
            assignment=best,
            power=best_power,
            initial_power=initial_power,
            method="greedy-flip",
            evaluations=meter.evaluations,
            strategy=self.name,
        )


@register_strategy("anneal")
@dataclass(frozen=True)
class AnnealStrategy(OptimizerStrategy):
    """Simulated annealing over single-output flips.

    A geometric cooling schedule (``temp = initial_temp * initial_power
    * cooling**step``) accepts worsening flips with probability
    ``exp(-delta / temp)`` (improving flips always), escaping the local
    minima that trap pure descent.  Deterministic for a fixed seed; the
    best assignment seen anywhere along the walk is returned.

    The budget's ``tolerance`` acts as a stall detector here (an accept
    threshold cannot gate Metropolis, which takes every improvement):
    with ``tolerance > 0`` the walk stops once no tolerance-significant
    new best has appeared for ``max(16, 2 * n_outputs)`` steps.
    """

    steps: int = 256
    initial_temp: float = 0.1
    cooling: float = 0.97

    def __post_init__(self) -> None:
        if (
            not isinstance(self.steps, int)
            or isinstance(self.steps, bool)
            or self.steps < 1
        ):
            raise ConfigError(f"steps must be an int >= 1, got {self.steps!r}")
        if (
            not isinstance(self.initial_temp, (int, float))
            or isinstance(self.initial_temp, bool)
            or self.initial_temp <= 0
        ):
            raise ConfigError(
                f"initial_temp must be a positive number, got {self.initial_temp!r}"
            )
        if (
            not isinstance(self.cooling, (int, float))
            or isinstance(self.cooling, bool)
            or not 0.0 < self.cooling < 1.0
        ):
            raise ConfigError(
                f"cooling must be in (0, 1), got {self.cooling!r}"
            )

    def optimize(self, evaluator, *, initial=None, budget=None, seed=0):
        meter = _meter(budget)
        outputs = evaluator.outputs
        start = initial or PhaseAssignment.all_positive(outputs)
        initial_power = evaluator.power(start)
        meter.spend()
        current, current_power = start, initial_power
        best, best_power = start, initial_power
        if not outputs:
            return OptimizationResult(
                best, best_power, initial_power, "anneal",
                meter.evaluations, strategy=self.name,
            )

        rng = _random.Random(seed)
        scale = self.initial_temp * max(initial_power, 1e-12)
        tolerance = meter.budget.tolerance
        patience = max(16, 2 * len(outputs))
        stall = 0
        for step in range(self.steps):
            if meter.exhausted:
                break
            if tolerance > 0.0 and stall >= patience:
                break  # no significant new best in a while: converged
            temp = scale * (self.cooling ** step)
            candidate = current.flipped(rng.choice(outputs))
            candidate_power = evaluator.power(candidate)
            meter.spend()
            delta = candidate_power - current_power
            if delta < 0.0:
                accept = True
            elif temp > 0.0:
                accept = rng.random() < math.exp(-delta / temp)
            else:
                accept = False
            stall += 1
            if accept:
                current, current_power = candidate, candidate_power
                if current_power < best_power:
                    if meter.improves(current_power, best_power):
                        stall = 0
                    best, best_power = current, current_power

        return OptimizationResult(
            assignment=best,
            power=best_power,
            initial_power=initial_power,
            method="anneal",
            evaluations=meter.evaluations,
            strategy=self.name,
        )


@register_strategy("random")
@dataclass(frozen=True)
class RandomStrategy(OptimizerStrategy):
    """Uniform random-assignment sampling (the ablation baseline).

    Draws ``n_samples`` deterministic assignments (seeded ``seed + k``)
    and keeps the best; matches the historical
    :func:`repro.core.optimizer.random_search` exactly.
    """

    n_samples: int = 64

    def __post_init__(self) -> None:
        if (
            not isinstance(self.n_samples, int)
            or isinstance(self.n_samples, bool)
            or self.n_samples < 1
        ):
            raise ConfigError(
                f"n_samples must be an int >= 1, got {self.n_samples!r}"
            )

    def optimize(self, evaluator, *, initial=None, budget=None, seed=0):
        meter = _meter(budget)
        outputs = evaluator.outputs
        start = initial or PhaseAssignment.all_positive(outputs)
        best = start
        best_power = evaluator.power(start)
        meter.spend()
        initial_power = best_power
        for k in range(self.n_samples):
            if meter.exhausted:
                break
            cand = PhaseAssignment.random(outputs, seed=seed + k)
            p = evaluator.power(cand)
            meter.spend()
            if meter.improves(p, best_power):
                best, best_power = cand, p
        return OptimizationResult(
            assignment=best,
            power=best_power,
            initial_power=initial_power,
            method="random",
            evaluations=meter.evaluations,
            strategy=self.name,
        )
