"""repro.optimize — pluggable phase-assignment optimizer strategies.

The paper's Section 4.1 pairwise heuristic used to be welded into the
flow; this package turns the minimum-power search into an open,
benchmarkable axis.  A strategy is one object with one method::

    result = strategy.optimize(evaluator, initial=start, budget=b, seed=0)

and the flow picks it by name through a string-keyed registry, so
``FlowConfig(optimizer="anneal")``, ``--optimizer anneal`` on the CLI,
``{"config": {"optimizer": "anneal"}}`` in a serve job spec, and
``--grid optimizer=pairwise,anneal`` in a sweep all reach the same
implementation.

Built-in strategies
-------------------
==============  ========================================================
``pairwise``    the paper's Section 4.1 heuristic (flow default);
                degenerates to full enumeration at or below its
                ``exhaustive_limit`` outputs, exactly as the paper uses
                it on frg1
``exhaustive``  enumerate all ``2^n`` assignments (optimal, exponential)
``groupwise``   pairwise cost extended to output groups
                (``group_size`` param)
``greedy-flip`` steepest-descent single-output flips with random
                restarts (``restarts`` param)
``anneal``      simulated annealing over single flips (``steps``,
                ``initial_temp``, ``cooling`` params)
``random``      uniform random sampling baseline (``n_samples`` param)
==============  ========================================================

Every strategy honours a shared :class:`OptimizerBudget` — reserved
``optimizer_params`` keys ``max_evaluations`` / ``max_seconds`` /
``tolerance`` — and is deterministic for a fixed
``(evaluator, initial, budget, seed)``.

Registering your own strategy
-----------------------------
A strategy is a frozen dataclass whose fields are its tunable
parameters; ``__post_init__`` validates them (raise
:class:`repro.errors.ConfigError` on bad values) and ``optimize`` does
the search::

    from dataclasses import dataclass
    from repro.optimize import (
        OptimizationResult, OptimizerStrategy, register_strategy,
    )

    @register_strategy("my-search")
    @dataclass(frozen=True)
    class MySearch(OptimizerStrategy):
        depth: int = 3                      # --optimizer-param depth=5

        def optimize(self, evaluator, *, initial=None, budget=None, seed=0):
            meter = (budget or OptimizerBudget()).start()
            start = initial or PhaseAssignment.all_positive(evaluator.outputs)
            power = evaluator.power(start); meter.spend()
            ...                              # check meter.exhausted per eval
            return OptimizationResult(
                assignment=start, power=power, initial_power=power,
                method="my-search", evaluations=meter.evaluations,
                strategy=self.name,
            )

Once registered (an import side effect — put it in your experiment
module), ``FlowConfig(optimizer="my-search",
optimizer_params={"depth": 5})`` validates, round-trips through JSON,
participates in the persistent-store keys (no cross-strategy cache
hits), and sweeps like any built-in.  Unknown names and unknown or
invalid params raise :class:`~repro.errors.ConfigError` naming the
offender at config-construction time — CLI, JSON configs and HTTP job
specs all surface it as a clean 4xx-style error, never a stack trace.
"""

from repro.optimize.base import (
    BUDGET_KEYS,
    BudgetMeter,
    budget_only_params,
    CommitRecord,
    OptimizationResult,
    OptimizerBudget,
    OptimizerStrategy,
    get_strategy_class,
    make_strategy,
    register_strategy,
    split_budget_params,
    strategy_names,
    unregister_strategy,
    validate_optimizer,
)
from repro.optimize.strategies import (
    DEFAULT_EXHAUSTIVE_LIMIT,
    AnnealStrategy,
    ExhaustiveStrategy,
    GreedyFlipStrategy,
    GroupwiseStrategy,
    PairwiseStrategy,
    RandomStrategy,
)

__all__ = [
    "BUDGET_KEYS",
    "BudgetMeter",
    "budget_only_params",
    "CommitRecord",
    "OptimizationResult",
    "OptimizerBudget",
    "OptimizerStrategy",
    "get_strategy_class",
    "make_strategy",
    "register_strategy",
    "split_budget_params",
    "strategy_names",
    "unregister_strategy",
    "validate_optimizer",
    "DEFAULT_EXHAUSTIVE_LIMIT",
    "AnnealStrategy",
    "ExhaustiveStrategy",
    "GreedyFlipStrategy",
    "GroupwiseStrategy",
    "PairwiseStrategy",
    "RandomStrategy",
]
