"""Output phase assignments.

A *phase assignment* maps every primary output of a network to a phase:

* ``POSITIVE`` — no inverter at the domino block boundary; the block
  itself produces the output value.
* ``NEGATIVE`` — a static inverter sits at the boundary; the block
  produces the complement and the inverter restores the logical value.

As the paper stresses, a negative phase does **not** change the output's
logical polarity — only where (and whether) a boundary inverter appears.
"""

from __future__ import annotations

import enum
import random as _random
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import PhaseError


class Phase(enum.Enum):
    """Phase of a primary output at the domino boundary."""

    POSITIVE = "+"
    NEGATIVE = "-"

    @property
    def flipped(self) -> "Phase":
        return Phase.NEGATIVE if self is Phase.POSITIVE else Phase.POSITIVE

    def __invert__(self) -> "Phase":
        return self.flipped


class PhaseAssignment(Mapping[str, Phase]):
    """Immutable-ish mapping from primary-output name to :class:`Phase`."""

    def __init__(self, phases: Mapping[str, Phase]):
        for po, ph in phases.items():
            if not isinstance(ph, Phase):
                raise PhaseError(f"phase of {po!r} must be a Phase, got {ph!r}")
        self._phases: Dict[str, Phase] = dict(phases)

    # Mapping interface -------------------------------------------------
    def __getitem__(self, po: str) -> Phase:
        try:
            return self._phases[po]
        except KeyError:
            raise PhaseError(f"no phase assigned to output {po!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._phases)

    def __len__(self) -> int:
        return len(self._phases)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PhaseAssignment):
            return NotImplemented
        return self._phases == other._phases

    def __hash__(self) -> int:
        return hash(tuple(sorted((po, ph.value) for po, ph in self._phases.items())))

    # Constructors -------------------------------------------------------
    @classmethod
    def all_positive(cls, outputs: Iterable[str]) -> "PhaseAssignment":
        return cls({po: Phase.POSITIVE for po in outputs})

    @classmethod
    def all_negative(cls, outputs: Iterable[str]) -> "PhaseAssignment":
        return cls({po: Phase.NEGATIVE for po in outputs})

    @classmethod
    def from_bits(cls, outputs: Sequence[str], bits: int) -> "PhaseAssignment":
        """Assignment from an integer bitmask; bit i set => output i negative."""
        return cls(
            {
                po: Phase.NEGATIVE if (bits >> i) & 1 else Phase.POSITIVE
                for i, po in enumerate(outputs)
            }
        )

    @classmethod
    def random(cls, outputs: Sequence[str], seed: int = 0) -> "PhaseAssignment":
        rng = _random.Random(seed)
        return cls(
            {po: rng.choice((Phase.POSITIVE, Phase.NEGATIVE)) for po in outputs}
        )

    # Derivation ----------------------------------------------------------
    def with_phase(self, po: str, phase: Phase) -> "PhaseAssignment":
        if po not in self._phases:
            raise PhaseError(f"unknown output {po!r}")
        new = dict(self._phases)
        new[po] = phase
        return PhaseAssignment(new)

    def flipped(self, *pos: str) -> "PhaseAssignment":
        """Return a copy with the listed outputs' phases inverted."""
        new = dict(self._phases)
        for po in pos:
            if po not in new:
                raise PhaseError(f"unknown output {po!r}")
            new[po] = new[po].flipped
        return PhaseAssignment(new)

    # Introspection --------------------------------------------------------
    def negative_outputs(self) -> List[str]:
        return [po for po, ph in self._phases.items() if ph is Phase.NEGATIVE]

    def positive_outputs(self) -> List[str]:
        return [po for po, ph in self._phases.items() if ph is Phase.POSITIVE]

    def as_bits(self, outputs: Sequence[str]) -> int:
        """Encode to a bitmask over the given output ordering."""
        bits = 0
        for i, po in enumerate(outputs):
            if self[po] is Phase.NEGATIVE:
                bits |= 1 << i
        return bits

    def __repr__(self) -> str:
        items = ", ".join(f"{po}{ph.value}" for po, ph in sorted(self._phases.items()))
        return f"PhaseAssignment({items})"


def enumerate_assignments(outputs: Sequence[str]) -> Iterator[PhaseAssignment]:
    """Yield all 2^n phase assignments over ``outputs`` (careful: exponential)."""
    for bits in range(1 << len(outputs)):
        yield PhaseAssignment.from_bits(outputs, bits)
