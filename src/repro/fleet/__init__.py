"""Distributed serving: a coordinator + worker fleet for the flow.

One coordinator owns the job queue; any number of worker processes
(same host or, with a shared filesystem for BLIF-path jobs, other
hosts) dial in, register, and *pull* work via leases.  The
``repro-domino fleet coordinator`` command serves the exact HTTP
surface of ``repro-domino serve`` — submit, status, events, cancel,
healthz — with the fleet doing the synthesis and byte-identical
results; ``repro-domino fleet worker`` starts a worker.

Supervision (see :mod:`repro.fleet.coordinator`): a dead worker's
in-flight jobs are requeued with a bounded retry budget; a worker whose
jobs keep failing is quarantined; repeat traffic for the same network
fingerprint is affinity-routed to the worker whose artefact store is
already warm for it.

Wire protocol (:mod:`repro.fleet.protocol`) — versioned JSON frames,
4-byte big-endian length prefix, one validated dataclass per message:

================  ===================  =====================================
message           direction            meaning
================  ===================  =====================================
``register``      worker → coord       hello: identity, slots, warm
                                       store fingerprints
``registered``    coord → worker       ack + heartbeat contract
                                       (interval, miss limit)
``heartbeat``     worker → coord       liveness + in-flight job ids
``lease``         worker → coord       open N work requests (pull
                                       scheduling)
``job_assign``    coord → worker       one leased job: work payload,
                                       config, timeout, attempt number
``job_progress``  worker → coord       the job started running
``job_result``    worker → coord       finished flow record (+ the now-
                                       warm fingerprint)
``job_failed``    worker → coord       the flow failed (surfaced, not
                                       retried; feeds quarantine streak)
``job_cancel``    coord → worker       drop the job if not started
``requeue``       worker → coord       hand an unstarted job back, no
                                       retry penalty (drain/cancel race)
``quarantine``    coord → worker       out of rotation after repeated
                                       failures
``goodbye``       worker → coord       orderly disconnect (drained)
================  ===================  =====================================
"""

from repro.fleet.coordinator import (
    Coordinator,
    DEFAULT_FLEET_PORT,
    FLEET_JOB_STATES,
    FleetBackend,
    FleetJob,
    WORKER_STATES,
    WorkerHandle,
)
from repro.fleet.protocol import (
    MESSAGE_TYPES,
    PROTOCOL_VERSION,
    Goodbye,
    Heartbeat,
    JobAssign,
    JobCancel,
    JobFailed,
    JobProgress,
    JobResult,
    Lease,
    Message,
    Quarantine,
    Register,
    Registered,
    Requeue,
    decode_message,
    decode_work,
    encode_message,
    encode_work,
    recv_message,
    send_message,
)
from repro.fleet.worker import Worker, run_worker_forever

__all__ = [
    "Coordinator",
    "DEFAULT_FLEET_PORT",
    "FLEET_JOB_STATES",
    "FleetBackend",
    "FleetJob",
    "WORKER_STATES",
    "WorkerHandle",
    "MESSAGE_TYPES",
    "PROTOCOL_VERSION",
    "Message",
    "Register",
    "Registered",
    "Heartbeat",
    "Lease",
    "JobAssign",
    "JobProgress",
    "JobResult",
    "JobFailed",
    "JobCancel",
    "Requeue",
    "Quarantine",
    "Goodbye",
    "encode_message",
    "decode_message",
    "send_message",
    "recv_message",
    "encode_work",
    "decode_work",
    "Worker",
    "run_worker_forever",
]
