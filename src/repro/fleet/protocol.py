"""Typed wire protocol for the fleet: one validated class per message.

Every message that crosses the coordinator↔worker TCP link is a small
frozen dataclass with strict field validation — in the style of
gridworks' ``named_types`` package, where each wire type is its own
validated class rather than an ad-hoc dict.  Frames are JSON objects
with a protocol version and a type tag, length-prefixed on the stream::

    ┌────────────┬──────────────────────────────────────────────┐
    │ 4 bytes    │ UTF-8 JSON                                   │
    │ big-endian │ {"v": 1, "type": "register", ...fields}      │
    │ length     │                                              │
    └────────────┴──────────────────────────────────────────────┘

:func:`send_message` / :func:`recv_message` do the framing over
``asyncio`` streams; :func:`encode_message` / :func:`decode_message`
are the pure frame codecs (what the tests exercise without sockets).
Anything malformed — unknown type, missing/unknown/ill-typed field,
wrong protocol version, oversized frame — raises
:class:`repro.errors.ProtocolError` with the offender named, never a
bare ``KeyError``/``TypeError``: a coordinator must survive any bytes a
worker (or a port scanner) throws at it.

Work payloads (the circuit a job runs on) cross the wire through
:func:`encode_work` / :func:`decode_work`, reusing the repo's existing
JSON codecs: networks via :func:`repro.store.serialize.network_to_dict`,
benchmark specs field-by-field, BLIF paths verbatim (workers on another
host need a shared filesystem for path submissions — inline ``blif``
text and ``spec`` submissions are location-independent).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Type

from repro.errors import ProtocolError

#: Version tag carried by every frame; a mismatch is a hard error so a
#: mixed-version fleet fails loudly at registration, not mid-job.
PROTOCOL_VERSION = 1

#: Frame size cap — generous (a serialized industry-size network is a
#: few MiB) while bounding what one connection can make us buffer.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Registry of message types by wire tag (filled by :func:`_message`).
MESSAGE_TYPES: Dict[str, Type["Message"]] = {}


def _message(cls):
    """Class decorator: register a message dataclass by its ``TYPE``."""
    MESSAGE_TYPES[cls.TYPE] = cls
    return cls


def _is_str_list(value: Any) -> bool:
    return isinstance(value, (list, tuple)) and all(
        isinstance(v, str) for v in value
    )


#: Field validators: name -> (predicate, human-readable expectation).
_CHECKS = {
    "str": (lambda v: isinstance(v, str) and v != "", "a non-empty string"),
    "any_str": (lambda v: isinstance(v, str), "a string"),
    "int": (lambda v: isinstance(v, int) and not isinstance(v, bool), "an integer"),
    "float": (
        lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
        "a number",
    ),
    "bool": (lambda v: isinstance(v, bool), "a boolean"),
    "dict": (lambda v: isinstance(v, dict), "an object"),
    "opt_str": (lambda v: v is None or isinstance(v, str), "a string or null"),
    "opt_float": (
        lambda v: v is None
        or (isinstance(v, (int, float)) and not isinstance(v, bool)),
        "a number or null",
    ),
    "opt_dict": (lambda v: v is None or isinstance(v, dict), "an object or null"),
    "str_list": (_is_str_list, "a list of strings"),
}


@dataclass(frozen=True)
class Message:
    """Base class: schema-validated construction + frame round-trip."""

    #: wire tag; every concrete message overrides it
    TYPE: ClassVar[str] = ""
    #: field name -> key in :data:`_CHECKS`
    SCHEMA: ClassVar[Dict[str, str]] = {}

    def __post_init__(self) -> None:
        for name, check in type(self).SCHEMA.items():
            predicate, expected = _CHECKS[check]
            value = getattr(self, name)
            if not predicate(value):
                raise ProtocolError(
                    f"{type(self).TYPE}.{name} must be {expected}, "
                    f"got {value!r}"
                )

    def to_frame(self) -> Dict[str, Any]:
        frame: Dict[str, Any] = {"v": PROTOCOL_VERSION, "type": type(self).TYPE}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            frame[f.name] = value
        return frame


@_message
@dataclass(frozen=True)
class Register(Message):
    """Worker → coordinator, first frame on a fresh connection.

    ``warm_fingerprints`` announces the network fingerprints the
    worker's local store already holds a full flow artefact for — the
    seed of the coordinator's affinity map.
    """

    TYPE = "register"
    SCHEMA = {
        "worker_id": "str",
        "host": "str",
        "pid": "int",
        "slots": "int",
        "warm_fingerprints": "str_list",
    }

    worker_id: str
    host: str
    pid: int
    slots: int
    warm_fingerprints: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.slots < 1:
            raise ProtocolError(f"register.slots must be >= 1, got {self.slots}")


@_message
@dataclass(frozen=True)
class Registered(Message):
    """Coordinator → worker, the registration ack: carries the
    heartbeat contract the worker must honour."""

    TYPE = "registered"
    SCHEMA = {
        "worker_id": "str",
        "heartbeat_interval_s": "float",
        "miss_limit": "int",
    }

    worker_id: str
    heartbeat_interval_s: float
    miss_limit: int


@_message
@dataclass(frozen=True)
class Heartbeat(Message):
    """Worker → coordinator, every ``heartbeat_interval_s``; missing
    ``miss_limit`` consecutive beats gets the worker declared dead and
    its in-flight jobs requeued."""

    TYPE = "heartbeat"
    SCHEMA = {"worker_id": "str", "inflight": "str_list"}

    worker_id: str
    inflight: List[str] = field(default_factory=list)


@_message
@dataclass(frozen=True)
class Lease(Message):
    """Worker → coordinator: open ``slots`` work requests (pull-based
    scheduling — the coordinator never pushes past a worker's leases)."""

    TYPE = "lease"
    SCHEMA = {"worker_id": "str", "slots": "int"}

    worker_id: str
    slots: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.slots < 1:
            raise ProtocolError(f"lease.slots must be >= 1, got {self.slots}")


@_message
@dataclass(frozen=True)
class JobAssign(Message):
    """Coordinator → worker: one leased job.  ``work`` is an
    :func:`encode_work` payload, ``config`` a ``FlowConfig.to_dict``
    record, ``attempt`` the number of times the job was already lost
    with a dead worker and requeued."""

    TYPE = "job_assign"
    SCHEMA = {
        "job_id": "str",
        "name": "str",
        "work": "dict",
        "config": "dict",
        "timeout_s": "opt_float",
        "fingerprint": "opt_str",
        "attempt": "int",
    }

    job_id: str
    name: str
    work: Dict[str, Any]
    config: Dict[str, Any]
    timeout_s: Optional[float] = None
    fingerprint: Optional[str] = None
    attempt: int = 0


@_message
@dataclass(frozen=True)
class JobProgress(Message):
    """Worker → coordinator: the job changed state worker-side
    (currently the single ``running`` transition)."""

    TYPE = "job_progress"
    SCHEMA = {"job_id": "str", "state": "str"}

    job_id: str
    state: str


@_message
@dataclass(frozen=True)
class JobResult(Message):
    """Worker → coordinator: the job finished; ``flow`` is the
    :func:`repro.report.flow_result_to_dict` record, ``fingerprint``
    the network fingerprint now warm in this worker's store."""

    TYPE = "job_result"
    SCHEMA = {
        "job_id": "str",
        "flow": "dict",
        "runtime_s": "float",
        "cached": "bool",
        "fingerprint": "opt_str",
    }

    job_id: str
    flow: Dict[str, Any]
    runtime_s: float
    cached: bool = False
    fingerprint: Optional[str] = None


@_message
@dataclass(frozen=True)
class JobFailed(Message):
    """Worker → coordinator: the flow itself failed (parse error, flow
    bug, per-job timeout).  Deterministic failures are surfaced, not
    retried — exactly the local-pool semantics — but they do count
    toward the worker's quarantine streak."""

    TYPE = "job_failed"
    SCHEMA = {"job_id": "str", "error": "str", "runtime_s": "float"}

    job_id: str
    error: str
    runtime_s: float = 0.0


@_message
@dataclass(frozen=True)
class JobCancel(Message):
    """Coordinator → worker: drop the job if it has not started; a job
    already executing cannot be preempted and its eventual result is
    simply discarded coordinator-side."""

    TYPE = "job_cancel"
    SCHEMA = {"job_id": "str"}

    job_id: str


@_message
@dataclass(frozen=True)
class Requeue(Message):
    """Worker → coordinator: hand an assigned-but-unstarted job back
    (worker draining, or a cancel that won the race) — the job returns
    to the queue with no retry penalty."""

    TYPE = "requeue"
    SCHEMA = {"job_id": "str", "reason": "any_str"}

    job_id: str
    reason: str = ""


@_message
@dataclass(frozen=True)
class Quarantine(Message):
    """Coordinator → worker: the worker is out of the rotation after
    repeated failures; in-flight jobs may finish but no new leases will
    be served."""

    TYPE = "quarantine"
    SCHEMA = {"worker_id": "str", "reason": "any_str"}

    worker_id: str
    reason: str = ""


@_message
@dataclass(frozen=True)
class Goodbye(Message):
    """Worker → coordinator: graceful disconnect (drained, nothing in
    flight); distinguishes an orderly exit from a crash."""

    TYPE = "goodbye"
    SCHEMA = {"worker_id": "str", "reason": "any_str"}

    worker_id: str
    reason: str = ""


# ----------------------------------------------------------------------
# frame codecs


def encode_message(msg: Message) -> bytes:
    """One message as its framed JSON body (length prefix excluded)."""
    if not isinstance(msg, Message):
        raise ProtocolError(
            f"cannot encode {type(msg).__name__}: not a fleet message"
        )
    return json.dumps(msg.to_frame(), separators=(",", ":")).encode("utf-8")


def decode_message(data: bytes) -> Message:
    """Parse and validate one frame body into its typed message."""
    try:
        frame = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError("frame must be a JSON object")
    version = frame.pop("v", None)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    tag = frame.pop("type", None)
    cls = MESSAGE_TYPES.get(tag)
    if cls is None:
        raise ProtocolError(f"unknown message type {tag!r}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(frame) - known
    if unknown:
        raise ProtocolError(
            f"{tag} frame carries unknown field(s) {sorted(unknown)!r}"
        )
    try:
        return cls(**frame)
    except TypeError as exc:
        raise ProtocolError(f"bad {tag} frame: {exc}") from None


async def send_message(writer, msg: Message) -> None:
    """Write one length-prefixed frame and drain."""
    body = encode_message(msg)
    writer.write(len(body).to_bytes(4, "big") + body)
    await writer.drain()


async def recv_message(reader) -> Message:
    """Read one length-prefixed frame; raises
    ``asyncio.IncompleteReadError`` on a clean EOF (the caller's
    disconnect signal) and :class:`ProtocolError` on garbage."""
    header = await reader.readexactly(4)
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return decode_message(await reader.readexactly(length))


# ----------------------------------------------------------------------
# work payload codecs


def encode_work(kind: str, payload) -> Dict[str, Any]:
    """JSON-safe wire form of one :func:`repro.core.batch._describe`
    work description."""
    if kind == "network":
        from repro.store.serialize import network_to_dict

        return {"kind": "network", "network": network_to_dict(payload)}
    if kind == "spec":
        record = dataclasses.asdict(payload)
        return {"kind": "spec", "spec": record}
    if kind == "blif":
        return {"kind": "blif", "path": str(payload)}
    raise ProtocolError(f"cannot encode work of kind {kind!r}")


def decode_work(work: Dict[str, Any]) -> Tuple[str, Any]:
    """Inverse of :func:`encode_work`: ``(kind, payload)`` ready for
    :func:`repro.core.batch.execute_one`."""
    if not isinstance(work, dict):
        raise ProtocolError("work payload must be an object")
    kind = work.get("kind")
    try:
        if kind == "network":
            from repro.store.serialize import network_from_dict

            return ("network", network_from_dict(work["network"]))
        if kind == "spec":
            from repro.bench.mcnc import BenchmarkSpec, PaperRow

            record = dict(work["spec"])
            for table in ("table1", "table2"):
                row = record.get(table)
                if row is not None:
                    record[table] = PaperRow(**row)
            return ("spec", BenchmarkSpec(**record))
        if kind == "blif":
            return ("blif", str(work["path"]))
    except ProtocolError:
        raise
    except Exception as exc:  # noqa: BLE001 — name the offender, always
        raise ProtocolError(
            f"malformed {kind!r} work payload: {type(exc).__name__}: {exc}"
        ) from None
    raise ProtocolError(f"cannot decode work of kind {kind!r}")
