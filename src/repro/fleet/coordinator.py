"""Fleet coordinator: job queue, leases, supervision, affinity routing.

The :class:`Coordinator` is the single owner of the distributed job
queue.  Workers (:mod:`repro.fleet.worker`) connect over TCP, register,
heartbeat, and *pull* work by opening leases; the coordinator never
pushes past a worker's open leases, so a slow worker is never buried.
Its supervision contract, modeled on gridworks-scada's ``proactor``
actor tree (monitor the children, restart the work not the process):

* **dead worker** — a closed connection or ``miss_limit`` missed
  heartbeats marks the worker dead and requeues every job it had in
  flight; each requeue burns one attempt, and a job lost
  ``max_requeues + 1`` times surfaces as a normal item failure (the
  same error-isolation shape as the local pool).
* **failing worker** — a worker whose jobs keep *failing* (the flow
  raised: deterministic failures are reported, not retried) builds a
  failure streak; at ``quarantine_after`` consecutive failures it is
  quarantined out of the rotation (told so via
  :class:`~repro.fleet.protocol.Quarantine`, in-flight jobs may
  finish).  A success resets the streak.  Quarantine survives
  reconnection — a crashing worker cannot launder its record by
  re-registering under the same id.
* **affinity routing** — every completed job records its network
  fingerprint as *warm* on the worker that ran it (workers also
  announce store-warm fingerprints at registration), and dispatch
  prefers a warm worker for a repeat fingerprint, falling back to the
  least-loaded live worker.  Repeat traffic for the same circuit lands
  where the artefact store already holds its products.

:class:`FleetBackend` adapts the coordinator to the
:class:`repro.serve.service.ExecutionBackend` interface, which is how
``repro-domino fleet coordinator`` serves the exact HTTP surface of
``repro-domino serve`` with a fleet doing the synthesis.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import FleetError, ProtocolError
from repro.core.config import FlowConfig
from repro.fleet.protocol import (
    Goodbye,
    Heartbeat,
    JobAssign,
    JobCancel,
    JobFailed,
    JobProgress,
    JobResult,
    Lease,
    Message,
    Quarantine,
    Register,
    Registered,
    Requeue,
    encode_work,
    recv_message,
    send_message,
)

logger = logging.getLogger(__name__)

#: Fleet job lifecycle states.
FLEET_JOB_STATES = ("pending", "leased", "running", "done", "failed", "cancelled")

#: Worker lifecycle states the coordinator tracks.
WORKER_STATES = ("idle", "busy", "quarantined", "dead")

#: Default TCP port of the worker bus (the HTTP front-end is separate).
DEFAULT_FLEET_PORT = 7070


@dataclass
class FleetJob:
    """One unit of work the coordinator owns until a worker completes it."""

    job_id: str
    name: str
    work: Dict[str, Any]
    config: FlowConfig
    timeout_s: Optional[float] = None
    fingerprint: Optional[str] = None
    #: times this job was lost with a dead worker and requeued
    attempts: int = 0
    state: str = "pending"
    assigned_to: Optional[str] = None
    future: Optional[asyncio.Future] = None

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled")


@dataclass
class WorkerHandle:
    """Coordinator-side record of one registered worker connection."""

    worker_id: str
    host: str
    pid: int
    slots: int
    writer: Any
    seq: int  # registration order; deterministic tie-break
    state: str = "idle"
    last_seen: float = 0.0
    open_leases: int = 0
    inflight: Dict[str, FleetJob] = field(default_factory=dict)
    warm: Set[str] = field(default_factory=set)
    failure_streak: int = 0
    jobs_done: int = 0
    jobs_failed: int = 0
    _send_lock: asyncio.Lock = field(default_factory=asyncio.Lock)

    @property
    def live(self) -> bool:
        return self.state in ("idle", "busy")

    def refresh_state(self) -> None:
        if self.state in ("quarantined", "dead"):
            return
        self.state = "busy" if self.inflight else "idle"

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe record for ``/healthz`` backend stats."""
        return {
            "worker_id": self.worker_id,
            "host": self.host,
            "pid": self.pid,
            "slots": self.slots,
            "state": self.state,
            "open_leases": self.open_leases,
            "inflight": len(self.inflight),
            "warm_fingerprints": len(self.warm),
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "failure_streak": self.failure_streak,
        }


class Coordinator:
    """TCP server owning the fleet job queue and worker supervision.

    Parameters
    ----------
    host, port:
        Worker-bus bind address; ``port=0`` picks a free port (written
        back to :attr:`port` after :meth:`start`).
    heartbeat_interval_s:
        Heartbeat cadence workers are told at registration.
    miss_limit:
        Consecutive missed heartbeats before a worker is declared dead.
    max_requeues:
        Times one job may be requeued off dead workers before it
        surfaces as a failure.
    quarantine_after:
        Consecutive job failures that quarantine a worker.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_FLEET_PORT,
        heartbeat_interval_s: float = 2.0,
        miss_limit: int = 3,
        max_requeues: int = 2,
        quarantine_after: int = 3,
    ) -> None:
        if heartbeat_interval_s <= 0:
            raise FleetError(
                f"heartbeat_interval_s must be positive, got {heartbeat_interval_s}"
            )
        if miss_limit < 1:
            raise FleetError(f"miss_limit must be >= 1, got {miss_limit}")
        if max_requeues < 0:
            raise FleetError(f"max_requeues must be >= 0, got {max_requeues}")
        if quarantine_after < 1:
            raise FleetError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self.host = host
        self.port = port
        self.heartbeat_interval_s = heartbeat_interval_s
        self.miss_limit = miss_limit
        self.max_requeues = max_requeues
        self.quarantine_after = quarantine_after
        self.state = "new"  # new -> running -> closed
        self.workers: Dict[str, WorkerHandle] = {}
        self.jobs: Dict[str, FleetJob] = {}
        self.affinity_hits = 0
        self.affinity_misses = 0
        self._pending: Deque[str] = deque()
        self._ids = itertools.count(1)
        self._seq = itertools.count(1)
        self._server: Optional[asyncio.base_events.Server] = None
        self._monitor: Optional[asyncio.Task] = None
        #: quarantine/failure memory by worker_id, surviving reconnects
        self._records: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> "Coordinator":
        if self.state != "new":
            raise FleetError(f"cannot start a coordinator in state {self.state!r}")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._monitor = asyncio.create_task(
            self._monitor_heartbeats(), name="repro-fleet-monitor"
        )
        self.state = "running"
        logger.info("coordinator listening on %s:%d", self.host, self.port)
        return self

    async def stop(self) -> None:
        """Close the worker bus; unfinished jobs fail with a clear error."""
        if self.state != "running":
            self.state = "closed"
            return
        self.state = "closed"
        self._monitor.cancel()
        try:
            await self._monitor
        except asyncio.CancelledError:
            pass
        self._server.close()
        await self._server.wait_closed()
        for worker in list(self.workers.values()):
            try:
                worker.writer.close()
            except Exception:  # noqa: BLE001 — already-broken transports
                pass
        for job in list(self.jobs.values()):
            if not job.finished:
                self._resolve(job, error="coordinator stopped")
        logger.info("coordinator stopped")

    async def __aenter__(self) -> "Coordinator":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # job API (what FleetBackend and tests drive)

    async def submit(
        self,
        work: Dict[str, Any],
        config: FlowConfig,
        *,
        name: str = "job",
        timeout_s: Optional[float] = None,
        fingerprint: Optional[str] = None,
    ) -> str:
        """Queue one wire-encoded work payload; returns the fleet job id."""
        if self.state != "running":
            raise FleetError(f"coordinator is {self.state}; submissions are closed")
        job = FleetJob(
            job_id=f"fleet-{next(self._ids)}",
            name=name,
            work=work,
            config=config,
            timeout_s=timeout_s,
            fingerprint=fingerprint,
            future=asyncio.get_running_loop().create_future(),
        )
        self.jobs[job.job_id] = job
        self._pending.append(job.job_id)
        await self._dispatch()
        return job.job_id

    async def outcome(self, job_id: str) -> Tuple:
        """Await one job's terminal outcome:
        ``(flow_record | None, error | None, runtime_s, cached)``."""
        try:
            job = self.jobs[job_id]
        except KeyError:
            raise FleetError(f"unknown fleet job id {job_id!r}") from None
        return await asyncio.shield(job.future)

    async def cancel(self, job_id: str) -> bool:
        """Cancel a pending or leased (not yet running) job.

        Returns ``True`` iff the job will not produce a result: pending
        jobs leave the queue, leased jobs are recalled from their worker
        with :class:`~repro.fleet.protocol.JobCancel` (a worker racing
        into execution has its eventual result discarded).  Running and
        finished jobs return ``False``.
        """
        try:
            job = self.jobs[job_id]
        except KeyError:
            raise FleetError(f"unknown fleet job id {job_id!r}") from None
        if job.state == "pending":
            self._pending.remove(job.job_id)
            self._resolve(job, state="cancelled")
            return True
        if job.state == "leased":
            worker = self.workers.get(job.assigned_to)
            if worker is not None:
                worker.inflight.pop(job.job_id, None)
                worker.refresh_state()
                await self._send(worker, JobCancel(job_id=job.job_id))
            self._resolve(job, state="cancelled")
            return True
        return False

    def stats(self) -> Dict[str, Any]:
        """JSON-safe fleet health record (``/healthz`` ``backend`` key)."""
        by_state = {state: 0 for state in WORKER_STATES}
        for worker in self.workers.values():
            by_state[worker.state] += 1
        jobs_by_state = {state: 0 for state in FLEET_JOB_STATES}
        for job in self.jobs.values():
            jobs_by_state[job.state] += 1
        routed = self.affinity_hits + self.affinity_misses
        return {
            "kind": "fleet",
            "fleet_host": self.host,
            "fleet_port": self.port,
            "workers": by_state,
            "registered": sum(1 for w in self.workers.values() if w.live)
            + by_state["quarantined"],
            "workers_detail": [
                w.snapshot()
                for w in sorted(self.workers.values(), key=lambda w: w.seq)
            ],
            "jobs": jobs_by_state,
            "pending": len(self._pending),
            "open_leases": sum(
                w.open_leases for w in self.workers.values() if w.live
            ),
            "affinity": {
                "hits": self.affinity_hits,
                "misses": self.affinity_misses,
                "hit_rate": (self.affinity_hits / routed) if routed else 0.0,
            },
        }

    # ------------------------------------------------------------------
    # connection handling

    async def _handle_connection(self, reader, writer) -> None:
        worker: Optional[WorkerHandle] = None
        try:
            try:
                hello = await asyncio.wait_for(
                    recv_message(reader), timeout=self.heartbeat_interval_s * 10
                )
            except asyncio.TimeoutError:
                logger.warning("connection never registered; dropping it")
                return
            if not isinstance(hello, Register):
                raise ProtocolError(
                    f"expected register, got {type(hello).TYPE or 'garbage'}"
                )
            worker = await self._register(hello, writer)
            while True:
                msg = await recv_message(reader)
                await self._handle_message(worker, msg)
                if worker.state == "dead":  # goodbye processed
                    return
        except asyncio.CancelledError:
            # loop teardown after stop(): exit quietly, the finally
            # block closes the transport
            return
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            ProtocolError,
            OSError,
        ) as exc:
            if worker is not None and worker.state not in ("dead",):
                await self._worker_lost(
                    worker, f"connection lost ({type(exc).__name__}: {exc})"
                )
            elif worker is None and not isinstance(
                exc, (asyncio.IncompleteReadError, ConnectionError)
            ):
                logger.warning("dropping unregistered connection: %s", exc)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _register(self, msg: Register, writer) -> WorkerHandle:
        previous = self.workers.get(msg.worker_id)
        if previous is not None and previous.live:
            # a second connection claiming a live id: the old one is a
            # zombie (half-closed TCP) — supersede it, requeue its jobs
            await self._worker_lost(previous, "superseded by re-registration")
        worker = WorkerHandle(
            worker_id=msg.worker_id,
            host=msg.host,
            pid=msg.pid,
            slots=msg.slots,
            writer=writer,
            seq=next(self._seq),
            last_seen=time.monotonic(),
            warm=set(msg.warm_fingerprints),
        )
        record = self._records.setdefault(
            msg.worker_id, {"failure_streak": 0, "quarantined": False, "warm": set()}
        )
        worker.failure_streak = record["failure_streak"]
        worker.warm |= record["warm"]
        if record["quarantined"]:
            worker.state = "quarantined"
        self.workers[msg.worker_id] = worker
        await self._send(
            worker,
            Registered(
                worker_id=worker.worker_id,
                heartbeat_interval_s=self.heartbeat_interval_s,
                miss_limit=self.miss_limit,
            ),
        )
        logger.info(
            "worker %s registered (%s pid %d, %d slot(s), %d warm fingerprint(s))%s",
            worker.worker_id,
            worker.host,
            worker.pid,
            worker.slots,
            len(worker.warm),
            " [quarantined]" if worker.state == "quarantined" else "",
        )
        if worker.state == "quarantined":
            await self._send(
                worker,
                Quarantine(
                    worker_id=worker.worker_id,
                    reason="quarantined before reconnect; record persists",
                ),
            )
        return worker

    async def _handle_message(self, worker: WorkerHandle, msg: Message) -> None:
        worker.last_seen = time.monotonic()
        if isinstance(msg, Heartbeat):
            return
        if isinstance(msg, Lease):
            worker.open_leases += msg.slots
            await self._dispatch()
            return
        if isinstance(msg, JobProgress):
            job = worker.inflight.get(msg.job_id)
            if job is not None and msg.state == "running":
                job.state = "running"
            return
        if isinstance(msg, JobResult):
            await self._job_result(worker, msg)
            return
        if isinstance(msg, JobFailed):
            await self._job_failed(worker, msg)
            return
        if isinstance(msg, Requeue):
            await self._worker_requeue(worker, msg)
            return
        if isinstance(msg, Goodbye):
            await self._goodbye(worker, msg)
            return
        raise ProtocolError(
            f"unexpected {type(msg).TYPE} message from worker {worker.worker_id}"
        )

    # ------------------------------------------------------------------
    # message handlers

    async def _job_result(self, worker: WorkerHandle, msg: JobResult) -> None:
        job = worker.inflight.pop(msg.job_id, None)
        worker.refresh_state()
        if job is None or job.finished:
            logger.info(
                "discarding result for %s from %s (cancelled or reassigned)",
                msg.job_id,
                worker.worker_id,
            )
            return
        worker.jobs_done += 1
        worker.failure_streak = 0
        self._records[worker.worker_id]["failure_streak"] = 0
        fingerprint = msg.fingerprint or job.fingerprint
        if fingerprint:
            worker.warm.add(fingerprint)
            self._records[worker.worker_id]["warm"].add(fingerprint)
        logger.info(
            "%s %s done on %s in %.1fs%s",
            job.job_id,
            job.name,
            worker.worker_id,
            msg.runtime_s,
            " (cached)" if msg.cached else "",
        )
        self._resolve(
            job, flow=msg.flow, runtime_s=msg.runtime_s, cached=msg.cached
        )

    async def _job_failed(self, worker: WorkerHandle, msg: JobFailed) -> None:
        job = worker.inflight.pop(msg.job_id, None)
        worker.refresh_state()
        if job is None or job.finished:
            return
        worker.jobs_failed += 1
        worker.failure_streak += 1
        self._records[worker.worker_id]["failure_streak"] = worker.failure_streak
        logger.warning(
            "%s %s failed on %s (streak %d): %s",
            job.job_id,
            job.name,
            worker.worker_id,
            worker.failure_streak,
            msg.error.splitlines()[0],
        )
        # deterministic flow failures surface exactly like the local
        # pool's — no retry — but they count against the worker
        self._resolve(job, error=msg.error, runtime_s=msg.runtime_s)
        if (
            worker.failure_streak >= self.quarantine_after
            and worker.state != "quarantined"
        ):
            await self._quarantine(
                worker,
                f"{worker.failure_streak} consecutive job failures",
            )

    async def _quarantine(self, worker: WorkerHandle, reason: str) -> None:
        worker.state = "quarantined"
        self._records[worker.worker_id]["quarantined"] = True
        logger.warning("worker %s quarantined: %s", worker.worker_id, reason)
        await self._send(
            worker, Quarantine(worker_id=worker.worker_id, reason=reason)
        )

    async def _worker_requeue(self, worker: WorkerHandle, msg: Requeue) -> None:
        """A worker handing an unstarted assignment back (drain/cancel
        race): no retry penalty, straight back to the front of the queue."""
        job = worker.inflight.pop(msg.job_id, None)
        worker.refresh_state()
        if job is None or job.finished:
            return
        logger.info(
            "%s handed back by %s (%s); requeueing",
            job.job_id,
            worker.worker_id,
            msg.reason or "no reason",
        )
        job.state = "pending"
        job.assigned_to = None
        self._pending.appendleft(job.job_id)
        await self._dispatch()

    async def _goodbye(self, worker: WorkerHandle, msg: Goodbye) -> None:
        logger.info(
            "worker %s said goodbye (%s)", worker.worker_id, msg.reason or "done"
        )
        await self._requeue_inflight(worker, "worker left gracefully mid-job")
        worker.state = "dead"
        worker.open_leases = 0

    # ------------------------------------------------------------------
    # supervision

    async def _monitor_heartbeats(self) -> None:
        """Declare dead any worker silent past ``miss_limit`` beats."""
        while True:
            await asyncio.sleep(self.heartbeat_interval_s)
            deadline = self.heartbeat_interval_s * self.miss_limit
            now = time.monotonic()
            for worker in list(self.workers.values()):
                if worker.state == "dead":
                    continue
                if now - worker.last_seen > deadline:
                    await self._worker_lost(
                        worker,
                        f"missed {self.miss_limit} heartbeats "
                        f"({now - worker.last_seen:.1f}s silent)",
                    )
                    try:
                        worker.writer.close()
                    except Exception:  # noqa: BLE001 — half-dead transport
                        pass

    async def _worker_lost(self, worker: WorkerHandle, reason: str) -> None:
        if worker.state == "dead":
            return
        logger.warning("worker %s lost: %s", worker.worker_id, reason)
        worker.state = "dead"
        worker.open_leases = 0
        await self._requeue_inflight(worker, reason)

    async def _requeue_inflight(self, worker: WorkerHandle, reason: str) -> None:
        jobs = list(worker.inflight.values())
        worker.inflight.clear()
        for job in jobs:
            if job.finished:
                continue
            job.attempts += 1
            if job.attempts > self.max_requeues:
                self._resolve(
                    job,
                    error=(
                        f"job lost with worker {worker.worker_id} ({reason}); "
                        f"gave up after {job.attempts} attempt(s) "
                        f"(max_requeues={self.max_requeues})"
                    ),
                )
            else:
                logger.info(
                    "%s requeued (attempt %d/%d): %s",
                    job.job_id,
                    job.attempts,
                    self.max_requeues,
                    reason,
                )
                job.state = "pending"
                job.assigned_to = None
                self._pending.appendleft(job.job_id)
        await self._dispatch()

    # ------------------------------------------------------------------
    # dispatch

    def _pick_worker(
        self, fingerprint: Optional[str]
    ) -> Tuple[Optional[WorkerHandle], bool]:
        """(worker, was_affinity_hit): warm worker preferred, then
        least-loaded, registration order as the deterministic tie-break."""
        candidates = [
            w for w in self.workers.values() if w.live and w.open_leases > 0
        ]
        if not candidates:
            return None, False
        if fingerprint:
            warm = [w for w in candidates if fingerprint in w.warm]
            if warm:
                return min(warm, key=lambda w: (len(w.inflight), w.seq)), True
        return min(candidates, key=lambda w: (len(w.inflight), w.seq)), False

    async def _dispatch(self) -> None:
        """Match pending jobs to open leases until one side runs dry."""
        while self._pending:
            job = self.jobs[self._pending[0]]
            worker, hit = self._pick_worker(job.fingerprint)
            if worker is None:
                return
            self._pending.popleft()
            if job.fingerprint:
                if hit:
                    self.affinity_hits += 1
                else:
                    self.affinity_misses += 1
            worker.open_leases -= 1
            worker.inflight[job.job_id] = job
            worker.refresh_state()
            job.state = "leased"
            job.assigned_to = worker.worker_id
            logger.info(
                "%s %s assigned to %s (attempt %d%s)",
                job.job_id,
                job.name,
                worker.worker_id,
                job.attempts,
                ", affinity hit" if hit else "",
            )
            sent = await self._send(
                worker,
                JobAssign(
                    job_id=job.job_id,
                    name=job.name,
                    work=job.work,
                    config=job.config.to_dict(),
                    timeout_s=job.timeout_s,
                    fingerprint=job.fingerprint,
                    attempt=job.attempts,
                ),
            )
            if not sent:
                # _send already routed the jobs through _worker_lost,
                # which requeued (or failed) this one — keep matching
                continue

    async def _send(self, worker: WorkerHandle, msg: Message) -> bool:
        """Send one frame to a worker; a dead transport marks it lost.

        The loss cascade (requeue + dispatch, which sends on *other*
        workers' locks) runs after the send lock is released — nesting
        send locks across workers would make dispatch ordering a
        deadlock ingredient.
        """
        async with worker._send_lock:
            try:
                await send_message(worker.writer, msg)
                return True
            except (ConnectionError, OSError) as exc:
                failure = f"send failed ({type(exc).__name__}: {exc})"
        await self._worker_lost(worker, failure)
        return False

    # ------------------------------------------------------------------
    # resolution

    def _resolve(
        self,
        job: FleetJob,
        *,
        flow: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        runtime_s: float = 0.0,
        cached: bool = False,
        state: Optional[str] = None,
    ) -> None:
        """First terminal transition wins; later results are discarded."""
        if job.finished:
            return
        job.state = state or ("failed" if error is not None else "done")
        if job.future is not None and not job.future.done():
            if job.state == "cancelled":
                job.future.set_result(
                    (None, "cancelled on coordinator", 0.0, False)
                )
            else:
                job.future.set_result((flow, error, runtime_s, cached))


class FleetBackend:
    """Adapt a :class:`Coordinator` to the service's
    :class:`~repro.serve.service.ExecutionBackend` interface.

    ``slots`` bounds how many service jobs may be in flight toward the
    fleet at once (dispatcher tasks service-side); actual execution
    concurrency is whatever the registered workers lease.  Results
    cross the wire as :func:`repro.report.flow_result_to_dict` records
    and are decoded back to :class:`FlowResult` here, so service
    consumers see byte-identical payloads to the local-pool backend.
    """

    def __init__(self, coordinator: Coordinator, *, max_inflight: int = 32) -> None:
        if max_inflight < 1:
            raise FleetError(f"max_inflight must be >= 1, got {max_inflight}")
        self.coordinator = coordinator
        self.slots = max_inflight
        self._owns_coordinator = coordinator.state == "new"

    async def start(self) -> None:
        if self.coordinator.state == "new":
            self._owns_coordinator = True
            await self.coordinator.start()

    async def shutdown(self) -> None:
        if self._owns_coordinator:
            await self.coordinator.stop()

    async def abort_pending(self) -> None:
        """Fail jobs no worker has picked up (non-draining shutdown)."""
        coordinator = self.coordinator
        for job_id in list(coordinator._pending):
            job = coordinator.jobs.get(job_id)
            if job is not None and not job.finished:
                coordinator._pending.remove(job_id)
                coordinator._resolve(
                    job, error="service aborted before any worker picked this up"
                )

    async def execute(self, job) -> tuple:
        kind, payload = job.work
        loop = asyncio.get_running_loop()
        work, fingerprint = await loop.run_in_executor(
            None, _encode_with_fingerprint, kind, payload
        )
        job_id = await self.coordinator.submit(
            work,
            job.config,
            name=job.name,
            timeout_s=job.timeout_s,
            fingerprint=fingerprint,
        )
        flow_record, error, runtime_s, cached = await self.coordinator.outcome(
            job_id
        )
        result = None
        if flow_record is not None:
            from repro.report import flow_result_from_dict

            result = await loop.run_in_executor(
                None, flow_result_from_dict, flow_record
            )
        return (result, error, runtime_s, cached)

    def stats(self) -> Dict[str, Any]:
        return self.coordinator.stats()


def _encode_with_fingerprint(kind: str, payload) -> Tuple[Dict[str, Any], Optional[str]]:
    """Wire-encode one work description plus its network fingerprint
    (the affinity-routing key).  Fingerprinting needs the materialized
    network; failures degrade to no-affinity rather than failing the
    submission (the worker will surface the real error)."""
    work = encode_work(kind, payload)
    try:
        from repro.core.batch import materialize

        return work, materialize(kind, payload).fingerprint()
    except Exception:  # noqa: BLE001 — affinity is best-effort
        return work, None
