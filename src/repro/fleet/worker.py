"""Fleet worker: a pull-based execution process for the coordinator.

A :class:`Worker` dials the coordinator's worker bus, registers (with
the fingerprints its local :class:`~repro.store.artifacts.ArtifactStore`
is already warm for), heartbeats on the contract the
:class:`~repro.fleet.protocol.Registered` ack carries, and opens one
:class:`~repro.fleet.protocol.Lease` per free slot.  Each
:class:`~repro.fleet.protocol.JobAssign` runs through the exact same
:func:`repro.core.batch.execute_one` path the local pool uses — same
config, same store layering, same per-job timeout and error isolation —
in a process pool so the asyncio connection (heartbeats included) stays
live while gates are being flipped.

Failure semantics mirror the local pool: a flow error comes back as
:class:`~repro.fleet.protocol.JobFailed` (surfaced, not retried); only
losing the *worker* makes the coordinator requeue.  A drained worker
says :class:`~repro.fleet.protocol.Goodbye` so the coordinator can tell
an orderly exit from a crash.  If the coordinator goes away, the worker
keeps reconnecting with capped backoff — start the two sides in either
order.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import socket
import uuid
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Optional, Set, Tuple

from repro.core.batch import default_jobs, execute_one
from repro.core.config import FlowConfig
from repro.errors import FleetError, ProtocolError
from repro.fleet.protocol import (
    Goodbye,
    Heartbeat,
    JobAssign,
    JobCancel,
    JobFailed,
    JobProgress,
    JobResult,
    Lease,
    Quarantine,
    Register,
    Registered,
    Requeue,
    decode_work,
    recv_message,
    send_message,
)
from repro.store.artifacts import ArtifactStore

logger = logging.getLogger(__name__)

#: Reconnect backoff: start fast, cap well under a heartbeat miss window.
RECONNECT_BACKOFF_S = (0.2, 0.5, 1.0, 2.0, 5.0)


def _fleet_execute(
    work: Dict[str, Any],
    config_dict: Dict[str, Any],
    store: Optional[ArtifactStore],
    timeout_s: Optional[float],
    fingerprint: Optional[str],
) -> Tuple[Optional[Dict[str, Any]], Optional[str], float, bool, Optional[str]]:
    """Pool-process entry point: decode the wire job, run the flow.

    Returns ``(flow_record | None, error | None, runtime_s, cached,
    fingerprint)`` with everything JSON-safe, ready to go straight into
    a :class:`JobResult`/:class:`JobFailed` frame.  Decode errors are
    reported as job failures (the submitter's payload is at fault, not
    this worker's health — though repeated ones still build the
    coordinator-side failure streak).
    """
    try:
        kind, payload = decode_work(work)
        config = FlowConfig.from_dict(config_dict)
    except Exception as exc:  # noqa: BLE001 — report, don't kill the slot
        return (None, f"undecodable job: {type(exc).__name__}: {exc}", 0.0, False, None)
    result, error, runtime_s, cached = execute_one(
        kind, payload, config, store=store, timeout_s=timeout_s
    )
    if result is None:
        return (None, error, runtime_s, False, fingerprint)
    from repro.report import flow_result_to_dict

    if fingerprint is None:
        try:
            from repro.core.batch import materialize

            fingerprint = materialize(kind, payload).fingerprint()
        except Exception:  # noqa: BLE001 — affinity is best-effort
            fingerprint = None
    return (flow_result_to_dict(result), None, runtime_s, cached, fingerprint)


class Worker:
    """One fleet worker process: dial, register, lease, execute, repeat.

    Parameters
    ----------
    host, port:
        The coordinator's worker bus.
    slots:
        Concurrent jobs this worker runs (process-pool size); default
        :func:`repro.core.batch.default_jobs`.
    worker_id:
        Stable identity across reconnects; quarantine follows it.
        Default: ``<hostname>-<pid>-<4 hex>``.
    store:
        Artefact store; its ``flow`` fingerprints are announced as warm
        at registration, feeding the coordinator's affinity map.  With
        a tiered/shared backend (``--shared-store``) that includes
        everything already in the shared tier, so a fresh worker starts
        warm for the whole fleet's history.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        slots: Optional[int] = None,
        worker_id: Optional[str] = None,
        store: Optional[ArtifactStore] = None,
    ) -> None:
        if slots is not None and slots < 1:
            raise FleetError(f"slots must be >= 1, got {slots}")
        self.host = host
        self.port = port
        self.slots = slots if slots is not None else default_jobs()
        self.worker_id = worker_id or (
            f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:4]}"
        )
        self.store = store
        self.quarantined = False
        self.jobs_done = 0
        self.jobs_failed = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._stop = asyncio.Event()
        self._inflight: Dict[str, asyncio.Task] = {}
        self._cancelled: Set[str] = set()
        self._send_lock = asyncio.Lock()
        self._writer = None

    # ------------------------------------------------------------------
    # lifecycle

    def drain(self) -> None:
        """Ask the worker to finish in-flight jobs and exit :meth:`run`."""
        self._stop.set()

    async def run(self) -> None:
        """Serve until :meth:`drain`; reconnects across coordinator
        restarts and network blips with capped backoff."""
        from repro.serve.service import _worker_init

        self._pool = ProcessPoolExecutor(
            max_workers=self.slots, initializer=_worker_init
        )
        try:
            backoff = 0
            while not self._stop.is_set():
                try:
                    await self._session()
                    backoff = 0
                except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
                    if self._stop.is_set():
                        break
                    delay = RECONNECT_BACKOFF_S[
                        min(backoff, len(RECONNECT_BACKOFF_S) - 1)
                    ]
                    backoff += 1
                    logger.warning(
                        "%s: coordinator unreachable (%s: %s); retrying in %.1fs",
                        self.worker_id,
                        type(exc).__name__,
                        exc,
                        delay,
                    )
                    try:
                        await asyncio.wait_for(self._stop.wait(), timeout=delay)
                    except asyncio.TimeoutError:
                        pass
        finally:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # one connection

    async def _session(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._writer = writer
        heartbeat_task: Optional[asyncio.Task] = None
        try:
            if self.store is None:
                warm = []
            else:
                # The fingerprint scan globs the store directory tree;
                # keep that disk walk off the event loop.
                loop = asyncio.get_running_loop()
                warm = list(
                    await loop.run_in_executor(
                        None, lambda: list(self.store.fingerprints("flow"))
                    )
                )
            await self._send(
                Register(
                    worker_id=self.worker_id,
                    host=socket.gethostname(),
                    pid=os.getpid(),
                    slots=self.slots,
                    warm_fingerprints=warm,
                )
            )
            ack = await recv_message(reader)
            if not isinstance(ack, Registered):
                raise ProtocolError(
                    f"expected registered ack, got {type(ack).TYPE}"
                )
            logger.info(
                "%s registered with %s:%d (%d slot(s), %d warm, "
                "heartbeat every %.1fs)",
                self.worker_id,
                self.host,
                self.port,
                self.slots,
                len(warm),
                ack.heartbeat_interval_s,
            )
            heartbeat_task = asyncio.create_task(
                self._heartbeat_loop(ack.heartbeat_interval_s),
                name=f"repro-fleet-heartbeat-{self.worker_id}",
            )
            if not self.quarantined:
                await self._send(Lease(worker_id=self.worker_id, slots=self.slots))
            stop_wait = asyncio.create_task(self._stop.wait())
            try:
                while True:
                    recv = asyncio.create_task(recv_message(reader))
                    done, _ = await asyncio.wait(
                        {recv, stop_wait}, return_when=asyncio.FIRST_COMPLETED
                    )
                    if recv in done:
                        await self._handle_message(await recv)
                    else:
                        recv.cancel()
                        try:
                            await recv
                        except (
                            asyncio.CancelledError,
                            asyncio.IncompleteReadError,
                            ConnectionError,
                            OSError,
                        ):
                            pass
                    if self._stop.is_set():
                        await self._goodbye()
                        return
            finally:
                stop_wait.cancel()
        finally:
            if heartbeat_task is not None:
                heartbeat_task.cancel()
                try:
                    await heartbeat_task
                except asyncio.CancelledError:
                    pass
            self._writer = None
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _goodbye(self) -> None:
        """Drain: finish in-flight jobs, then an orderly Goodbye."""
        if self._inflight:
            logger.info(
                "%s draining: waiting on %d in-flight job(s)",
                self.worker_id,
                len(self._inflight),
            )
            await asyncio.gather(
                *list(self._inflight.values()), return_exceptions=True
            )
        await self._send(Goodbye(worker_id=self.worker_id, reason="drained"))
        logger.info("%s drained and said goodbye", self.worker_id)

    async def _heartbeat_loop(self, interval_s: float) -> None:
        while True:
            await asyncio.sleep(interval_s)
            await self._send(
                Heartbeat(
                    worker_id=self.worker_id, inflight=list(self._inflight)
                )
            )

    async def _send(self, msg) -> None:
        async with self._send_lock:
            if self._writer is None:
                raise ConnectionError("not connected")
            await send_message(self._writer, msg)

    # ------------------------------------------------------------------
    # message handling

    async def _handle_message(self, msg) -> None:
        if isinstance(msg, JobAssign):
            if self._stop.is_set() or self.quarantined:
                await self._send(
                    Requeue(
                        job_id=msg.job_id,
                        reason="worker draining"
                        if self._stop.is_set()
                        else "worker quarantined",
                    )
                )
                return
            self._inflight[msg.job_id] = asyncio.create_task(
                self._run_job(msg), name=f"repro-fleet-job-{msg.job_id}"
            )
            return
        if isinstance(msg, JobCancel):
            # a job here is either already racing in the pool (cannot
            # preempt a fork safely — the coordinator discards its
            # result) or not yet started; mark it so _run_job skips.
            self._cancelled.add(msg.job_id)
            return
        if isinstance(msg, Quarantine):
            self.quarantined = True
            logger.warning(
                "%s quarantined by coordinator: %s", self.worker_id, msg.reason
            )
            return
        raise ProtocolError(
            f"unexpected {type(msg).TYPE} message from coordinator"
        )

    async def _run_job(self, assign: JobAssign) -> None:
        try:
            if assign.job_id in self._cancelled:
                self._cancelled.discard(assign.job_id)
                return
            await self._send(JobProgress(job_id=assign.job_id, state="running"))
            logger.info(
                "%s running %s (%s, attempt %d)",
                self.worker_id,
                assign.job_id,
                assign.name,
                assign.attempt,
            )
            loop = asyncio.get_running_loop()
            try:
                flow, error, runtime_s, cached, fingerprint = (
                    await loop.run_in_executor(
                        self._pool,
                        _fleet_execute,
                        assign.work,
                        assign.config,
                        # the store pickles its backend configuration, so
                        # a shared/tiered store stays shared in the pool
                        self.store,
                        assign.timeout_s,
                        assign.fingerprint,
                    )
                )
            except Exception as exc:  # noqa: BLE001 — pool breakage
                flow, error, runtime_s, cached, fingerprint = (
                    None,
                    f"worker execution error: {type(exc).__name__}: {exc}",
                    0.0,
                    False,
                    None,
                )
            if flow is not None:
                self.jobs_done += 1
                await self._send(
                    JobResult(
                        job_id=assign.job_id,
                        flow=flow,
                        runtime_s=runtime_s,
                        cached=cached,
                        fingerprint=fingerprint,
                    )
                )
            else:
                self.jobs_failed += 1
                await self._send(
                    JobFailed(
                        job_id=assign.job_id,
                        error=error or "unknown failure",
                        runtime_s=runtime_s,
                    )
                )
        except (ConnectionError, OSError):
            # connection died mid-report: the coordinator's supervision
            # requeues this job; nothing useful to do here
            logger.warning(
                "%s lost the coordinator while reporting %s",
                self.worker_id,
                assign.job_id,
            )
        finally:
            self._inflight.pop(assign.job_id, None)
            self._cancelled.discard(assign.job_id)
            if not self._stop.is_set() and not self.quarantined:
                try:
                    # replace the consumed lease: stay at `slots` open
                    await self._send(Lease(worker_id=self.worker_id, slots=1))
                except (ConnectionError, OSError):
                    pass


async def run_worker_forever(worker: Worker) -> None:
    """Run one worker under SIGINT/SIGTERM → graceful drain (the
    ``repro-domino fleet worker`` entry point)."""
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, worker.drain)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        await worker.run()
    finally:
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.remove_signal_handler(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
