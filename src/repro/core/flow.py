"""The overall power-minimisation flow (paper Figure 6 and Section 5).

One call runs the experimental pipeline of the paper for one circuit:

1. technology-independent cleanup (lower to AND/OR/NOT, sweep);
2. (sequential circuits) enhanced-MFVS partitioning + fixed-point
   latch probabilities;
3. build the phase evaluator (BDD probabilities with the domino
   variable ordering, Monte-Carlo fallback);
4. minimum-area phase assignment (the MA baseline of [15]);
5. minimum-power phase assignment (the paper's heuristic);
6. phase transform + technology mapping of both;
7. (timed flow) transistor resizing to meet a timing target;
8. Monte-Carlo power measurement of both mapped designs.

The result object carries everything the Table 1 / Table 2 rows need.

Since the pipeline redesign the implementation lives in
:mod:`repro.core.pipeline` (staged, skippable, cacheable) and
:func:`run_flow` is a thin keyword-compatible wrapper; new code should
prefer a :class:`repro.core.config.FlowConfig` plus
``Pipeline().run(...)`` (one circuit) or
:func:`repro.core.batch.run_many` (many circuits, in parallel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.network.netlist import LogicNetwork
from repro.phase import PhaseAssignment
from repro.network.duplication import DominoImplementation
from repro.domino.gates import DominoCellLibrary
from repro.domino.mapper import MappedDesign
from repro.domino.timing import ResizeResult
from repro.power.estimator import DominoPowerModel


@dataclass
class SynthesisVariant:
    """One synthesis outcome (MA or MP) with its measurements."""

    label: str
    assignment: PhaseAssignment
    implementation: DominoImplementation
    design: MappedDesign
    size: int
    power_ma: float  # the tables' "Pwr" column (calibrated mA figure)
    estimated_power: float
    resize: Optional[ResizeResult] = None
    critical_delay: float = 0.0


@dataclass
class FlowResult:
    """Full MA-vs-MP comparison for one circuit."""

    name: str
    n_inputs: int
    n_outputs: int
    ma: SynthesisVariant
    mp: SynthesisVariant
    timed: bool
    probability_method: str

    @property
    def area_penalty_percent(self) -> float:
        if self.ma.size == 0:
            return 0.0
        return 100.0 * (self.mp.size - self.ma.size) / self.ma.size

    @property
    def power_savings_percent(self) -> float:
        if self.ma.power_ma == 0:
            return 0.0
        return 100.0 * (self.ma.power_ma - self.mp.power_ma) / self.ma.power_ma

    def row(self) -> Dict[str, object]:
        """One table row in the paper's column layout."""
        return {
            "ckt": self.name,
            "n_pis": self.n_inputs,
            "n_pos": self.n_outputs,
            "ma_size": self.ma.size,
            "ma_pwr": self.ma.power_ma,
            "mp_size": self.mp.size,
            "mp_pwr": self.mp.power_ma,
            "area_penalty_pct": self.area_penalty_percent,
            "pwr_savings_pct": self.power_savings_percent,
        }


def run_flow(
    network: LogicNetwork,
    input_probability: float = 0.5,
    input_probs: Optional[Mapping[str, float]] = None,
    model: Optional[DominoPowerModel] = None,
    library: Optional[DominoCellLibrary] = None,
    timed: bool = False,
    timing_slack_fraction: float = 0.85,
    power_method: str = "auto",
    area_exhaustive_limit: int = 12,
    power_exhaustive_limit: int = 10,
    max_pairs: Optional[int] = None,
    n_vectors: int = 4096,
    seed: int = 0,
    current_scale: float = 0.01,
    minimize: bool = True,
    strash: bool = False,
) -> FlowResult:
    """Run the complete MA-vs-MP experiment on one circuit.

    ``minimize`` applies two-level Quine-McCluskey minimisation to SOP
    covers (the paper's "technology independent minimization" step; a
    no-op for pure gate networks).  ``strash`` additionally merges
    structurally identical gates before phase assignment — recommended
    for raw BLIF inputs, off by default so the calibrated suite runs
    stay bit-identical.

    This is a backwards-compatible wrapper: it packs the keywords into a
    :class:`repro.core.config.FlowConfig` and runs the staged
    :class:`repro.core.pipeline.Pipeline`.
    """
    from repro.core.config import FlowConfig
    from repro.core.pipeline import Pipeline

    config = FlowConfig(
        input_probability=input_probability,
        input_probs=dict(input_probs) if input_probs is not None else None,
        model=model,
        library=library,
        timed=timed,
        timing_slack_fraction=timing_slack_fraction,
        power_method=power_method,
        area_exhaustive_limit=area_exhaustive_limit,
        power_exhaustive_limit=power_exhaustive_limit,
        max_pairs=max_pairs,
        n_vectors=n_vectors,
        seed=seed,
        current_scale=current_scale,
        minimize=minimize,
        strash=strash,
    )
    return Pipeline(config).run(network).flow


def format_table(rows: List[Dict[str, object]], title: str) -> str:
    """Render flow rows in the paper's table layout."""
    header = (
        f"{'Ckt':<12} {'#PIs':>5} {'#POs':>5} "
        f"{'MA Size':>8} {'MA Pwr':>8} {'MP Size':>8} {'MP Pwr':>8} "
        f"{'%AreaPen':>9} {'%PwrSav':>8}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    pens: List[float] = []
    savs: List[float] = []
    for r in rows:
        lines.append(
            f"{str(r['ckt']):<12} {r['n_pis']:>5} {r['n_pos']:>5} "
            f"{r['ma_size']:>8} {r['ma_pwr']:>8.2f} {r['mp_size']:>8} "
            f"{r['mp_pwr']:>8.2f} {r['area_penalty_pct']:>9.1f} "
            f"{r['pwr_savings_pct']:>8.1f}"
        )
        pens.append(float(r["area_penalty_pct"]))
        savs.append(float(r["pwr_savings_pct"]))
    if rows:
        lines.append("-" * len(header))
        avg_pen = sum(pens) / len(pens)
        avg_sav = sum(savs) / len(savs)
        lines.append(f"{'Average':<12} {'':>5} {'':>5} {'':>8} {'':>8} {'':>8} {'':>8} "
                     f"{avg_pen:>9.1f} {avg_sav:>8.1f}")
    return "\n".join(lines)
