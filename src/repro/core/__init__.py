"""The paper's contribution: phase-assignment cost model, optimisers, flow."""

from repro.core.cost import (
    COMBOS,
    CostModelData,
    Move,
    all_pair_costs,
    best_pair_and_combo,
    cost_matrices,
    group_cost,
    pair_cost,
)
from repro.core.timing_aware import (
    PhaseTimingModel,
    TimingAwareResult,
    minimize_power_timing_aware,
)
from repro.core.min_area import AreaResult, minimize_area
from repro.core.optimizer import (
    CommitRecord,
    OptimizationResult,
    minimize_power,
    random_search,
)
from repro.core.flow import (
    FlowResult,
    SynthesisVariant,
    format_table,
    run_flow,
)

__all__ = [
    "COMBOS",
    "CostModelData",
    "Move",
    "all_pair_costs",
    "best_pair_and_combo",
    "cost_matrices",
    "group_cost",
    "pair_cost",
    "PhaseTimingModel",
    "TimingAwareResult",
    "minimize_power_timing_aware",
    "AreaResult",
    "minimize_area",
    "CommitRecord",
    "OptimizationResult",
    "minimize_power",
    "random_search",
    "FlowResult",
    "SynthesisVariant",
    "format_table",
    "run_flow",
]
