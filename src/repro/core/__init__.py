"""The paper's contribution: phase-assignment cost model, optimisers, flow.

The flow itself is exposed at three levels:

* :func:`run_flow` — one circuit, keyword arguments (legacy API);
* :class:`Pipeline` + :class:`FlowConfig` — one circuit, staged and
  composable (skip/override/cache individual stages);
* :func:`run_many` — many circuits fanned across worker processes.
"""

from repro.core.batch import (
    BATCH_ORDERS,
    BatchItem,
    BatchResult,
    SweepPoint,
    SweepResult,
    default_jobs,
    derive_seed,
    expand_grid,
    format_batch,
    format_sweep,
    predicted_cost,
    run_many,
    sweep,
)
from repro.core.config import FlowConfig, POWER_METHODS
from repro.core.pipeline import (
    Pipeline,
    PipelineCache,
    PipelineContext,
    PipelineResult,
    STAGE_NAMES,
    StageResult,
)
from repro.core.cost import (
    COMBOS,
    CostModelData,
    Move,
    all_pair_costs,
    best_pair_and_combo,
    cost_matrices,
    group_cost,
    pair_cost,
)
from repro.core.timing_aware import (
    PhaseTimingModel,
    TimingAwareResult,
    minimize_power_timing_aware,
)
from repro.core.min_area import AreaResult, minimize_area
from repro.core.optimizer import (
    CommitRecord,
    OptimizationResult,
    minimize_power,
    random_search,
)
from repro.core.flow import (
    FlowResult,
    SynthesisVariant,
    format_table,
    run_flow,
)

__all__ = [
    "BATCH_ORDERS",
    "BatchItem",
    "BatchResult",
    "SweepPoint",
    "SweepResult",
    "default_jobs",
    "derive_seed",
    "expand_grid",
    "format_batch",
    "format_sweep",
    "predicted_cost",
    "run_many",
    "sweep",
    "FlowConfig",
    "POWER_METHODS",
    "Pipeline",
    "PipelineCache",
    "PipelineContext",
    "PipelineResult",
    "STAGE_NAMES",
    "StageResult",
    "COMBOS",
    "CostModelData",
    "Move",
    "all_pair_costs",
    "best_pair_and_combo",
    "cost_matrices",
    "group_cost",
    "pair_cost",
    "PhaseTimingModel",
    "TimingAwareResult",
    "minimize_power_timing_aware",
    "AreaResult",
    "minimize_area",
    "CommitRecord",
    "OptimizationResult",
    "minimize_power",
    "random_search",
    "FlowResult",
    "SynthesisVariant",
    "format_table",
    "run_flow",
]
