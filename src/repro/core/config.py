"""Declarative configuration for the synthesis flow.

:class:`FlowConfig` gathers every knob of the Figure 6 flow — the
options that used to be ~15 loose keyword arguments on ``run_flow`` —
into one validated, serialisable object:

* ``FlowConfig()`` reproduces the historical ``run_flow`` defaults
  exactly, so configs and the legacy keyword API are interchangeable;
* ``from_dict`` / ``to_dict`` and ``from_json`` / ``to_json`` round-trip
  losslessly, including the nested electrical model and cell library;
* ``validate`` (called by the constructors) raises :class:`ConfigError`
  with a field-by-field message instead of failing deep inside a stage.

The config is a frozen value object: derive variants with
:meth:`FlowConfig.replace` rather than mutating in place.  That is what
makes it safe to share one config across a parallel batch
(:func:`repro.core.batch.run_many`) and to use as part of a pipeline
cache key.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional

from repro.errors import ConfigError
from repro.domino.gates import DominoCellLibrary
from repro.power.estimator import DominoPowerModel

#: Probability engines accepted by the estimator / sequential solver.
POWER_METHODS = ("auto", "bdd", "monte-carlo")

#: Environment sentinel set in :func:`repro.core.batch.run_many` / serve
#: pool workers (see :func:`repro.core.batch.mark_pool_worker`).  Inside
#: such a worker the process pool already owns the host's cores, so
#: ``stage_jobs=0`` (auto) resolves to sequential stages instead of
#: oversubscribing every worker with its own thread pool.
POOL_WORKER_ENV = "REPRO_POOL_WORKER"

#: The flow has exactly two variants (MA / MP), so more stage threads
#: than that can never help.
MAX_USEFUL_STAGE_JOBS = 2


def in_pool_worker() -> bool:
    """True inside a ``run_many`` / service worker process."""
    return bool(os.environ.get(POOL_WORKER_ENV))


def _available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the host, which over-counts under CPU
    affinity / container quotas (a ``--cpus=1`` CI runner on a 64-core
    host would otherwise spawn useless stage threads); the scheduler
    affinity mask is the truth where the platform exposes it.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def _nested_to_dict(obj: Any) -> Dict[str, Any]:
    """Field dict of a flat dataclass (model / library)."""
    return {f.name: getattr(obj, f.name) for f in fields(obj)}


def _nested_from_dict(cls: type, data: Mapping[str, Any], label: str) -> Any:
    if not isinstance(data, Mapping):
        raise ConfigError(f"{label} must be a mapping, got {type(data).__name__}")
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ConfigError(f"unknown {label} field(s): {', '.join(unknown)}")
    try:
        return cls(**dict(data))
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"bad {label}: {exc}") from exc


@dataclass(frozen=True)
class FlowConfig:
    """Every knob of the MA-vs-MP synthesis flow, in one place.

    Attributes
    ----------
    input_probability:
        Uniform primary-input signal probability (used when
        ``input_probs`` is not given).
    input_probs:
        Optional per-input probability map; overrides
        ``input_probability`` for the named inputs.
    model:
        Electrical model for the power estimator.  ``None`` derives one
        from the cell library (historic behaviour).
    library:
        Domino cell library for mapping/timing.  ``None`` selects the
        default library.
    timed:
        Run the timed flow (Table 2): transistor resizing to a delay
        target after mapping.
    timing_slack_fraction:
        Delay target as a fraction of the initial critical delay.
    power_method:
        Probability engine: ``auto`` | ``bdd`` | ``monte-carlo``.
    area_exhaustive_limit:
        Max outputs for provably-optimal MA search.
    power_exhaustive_limit:
        Max outputs for exhaustive MP search.
    max_pairs:
        Cap on pairwise MP iterations (``None`` = no cap).
    optimizer:
        Registered :mod:`repro.optimize` strategy name for the MP
        phase-assignment search (``pairwise`` — the paper's Section 4.1
        heuristic — ``exhaustive``, ``groupwise``, ``greedy-flip``,
        ``anneal``, ``random``, or any strategy you register).  Unknown
        names raise :class:`ConfigError` at construction time.
    optimizer_params:
        Strategy parameters plus the reserved budget keys
        ``max_evaluations`` / ``max_seconds`` / ``tolerance``
        (:class:`repro.optimize.OptimizerBudget`).  Validated against
        the strategy at construction time — an unknown or invalid param
        raises :class:`ConfigError` naming it, so stale configs fail
        loudly.  Values must be JSON scalars so configs keep
        round-tripping.
    n_vectors:
        Monte-Carlo vector count for estimation/measurement.
    seed:
        Seed for every stochastic component of the flow.
    current_scale:
        Switched-capacitance → "mA" calibration factor.
    minimize:
        Two-level minimisation during prepare.
    strash:
        Structural hashing during prepare.
    stage_jobs:
        Threads for the independent MA/MP work inside the
        ``transform_map``/``resize``/``measure`` stages (and the
        ``optimize_mp`` overlap with the MA build).  ``0`` (the
        default) resolves automatically: threads on a multi-core host,
        sequential inside a :func:`repro.core.batch.run_many` /
        service worker process (the pool already owns the cores).
        ``1`` forces sequential stages.  Results are bit-identical at
        every setting, which is why ``stage_jobs`` is **excluded** from
        :meth:`cache_key` / :meth:`result_key` — parallelism must not
        change store identity.
    """

    input_probability: float = 0.5
    input_probs: Optional[Dict[str, float]] = None
    model: Optional[DominoPowerModel] = None
    library: Optional[DominoCellLibrary] = None
    timed: bool = False
    timing_slack_fraction: float = 0.85
    power_method: str = "auto"
    area_exhaustive_limit: int = 12
    power_exhaustive_limit: int = 10
    max_pairs: Optional[int] = None
    optimizer: str = "pairwise"
    optimizer_params: Optional[Dict[str, Any]] = None
    n_vectors: int = 4096
    seed: int = 0
    current_scale: float = 0.01
    minimize: bool = True
    strash: bool = False
    stage_jobs: int = 0

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # validation

    def validate(self) -> "FlowConfig":
        """Check every field; raise :class:`ConfigError` on the first bad one.

        Returns ``self`` so calls can be chained.
        """
        errors = []
        if not 0.0 <= self.input_probability <= 1.0:
            errors.append(
                f"input_probability must be in [0, 1], got {self.input_probability}"
            )
        if self.input_probs is not None:
            if not isinstance(self.input_probs, Mapping):
                errors.append("input_probs must be a mapping of input name -> probability")
            else:
                for name, p in self.input_probs.items():
                    if not isinstance(p, (int, float)) or not 0.0 <= float(p) <= 1.0:
                        errors.append(
                            f"input_probs[{name!r}] must be in [0, 1], got {p!r}"
                        )
                        break
        if self.model is not None and not isinstance(self.model, DominoPowerModel):
            errors.append("model must be a DominoPowerModel or None")
        if self.library is not None and not isinstance(self.library, DominoCellLibrary):
            errors.append("library must be a DominoCellLibrary or None")
        if not 0.0 < self.timing_slack_fraction <= 1.0:
            errors.append(
                "timing_slack_fraction must be in (0, 1], "
                f"got {self.timing_slack_fraction}"
            )
        if self.power_method not in POWER_METHODS:
            errors.append(
                f"power_method must be one of {POWER_METHODS}, got {self.power_method!r}"
            )
        if self.area_exhaustive_limit < 0:
            errors.append("area_exhaustive_limit must be >= 0")
        if self.power_exhaustive_limit < 0:
            errors.append("power_exhaustive_limit must be >= 0")
        if self.max_pairs is not None and self.max_pairs < 0:
            errors.append("max_pairs must be >= 0 or None")
        optimizer_error = self._validate_optimizer()
        if optimizer_error is not None:
            errors.append(optimizer_error)
        if self.n_vectors <= 0:
            errors.append(f"n_vectors must be positive, got {self.n_vectors}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            errors.append(f"seed must be an int, got {self.seed!r}")
        if self.current_scale <= 0.0:
            errors.append(f"current_scale must be positive, got {self.current_scale}")
        if (
            not isinstance(self.stage_jobs, int)
            or isinstance(self.stage_jobs, bool)
            or self.stage_jobs < 0
        ):
            errors.append(
                f"stage_jobs must be an int >= 0 (0 = auto), got {self.stage_jobs!r}"
            )
        if errors:
            raise ConfigError("; ".join(errors))
        return self

    def _validate_optimizer(self) -> Optional[str]:
        """Error string for a bad ``optimizer`` / ``optimizer_params``
        pair, or ``None``.  Imported lazily so the config module stays
        importable without dragging the strategy registry in at module
        load."""
        if self.optimizer_params is not None:
            if not isinstance(self.optimizer_params, Mapping):
                return (
                    "optimizer_params must be a mapping, got "
                    f"{type(self.optimizer_params).__name__}"
                )
            for key, value in self.optimizer_params.items():
                if not isinstance(key, str):
                    return f"optimizer_params key {key!r} must be a string"
                if value is not None and not isinstance(
                    value, (str, int, float, bool)
                ):
                    return (
                        f"optimizer_params[{key!r}] must be a JSON scalar, "
                        f"got {type(value).__name__}"
                    )
        from repro.optimize import validate_optimizer

        try:
            validate_optimizer(self.optimizer, self.optimizer_params)
        except ConfigError as exc:
            return str(exc)
        return None

    # ------------------------------------------------------------------
    # derivation

    def replace(self, **changes: Any) -> "FlowConfig":
        """A new config with the given fields changed (and re-validated)."""
        unknown = sorted(set(changes) - {f.name for f in fields(self)})
        if unknown:
            raise ConfigError(f"unknown FlowConfig field(s): {', '.join(unknown)}")
        return dataclasses.replace(self, **changes)

    def resolved_stage_jobs(self) -> int:
        """Effective stage-thread count for one pipeline run.

        An explicit ``stage_jobs >= 1`` is honoured as given (capped at
        :data:`MAX_USEFUL_STAGE_JOBS` internally by the pipeline's unit
        count, not here).  ``0`` (auto) picks threads only where they
        can pay: a multi-core host that is *not* already inside a
        ``run_many``/service pool worker (detected via
        :data:`POOL_WORKER_ENV`), where a per-worker thread pool would
        oversubscribe the machine.
        """
        if self.stage_jobs >= 1:
            return self.stage_jobs
        if in_pool_worker():
            return 1
        return min(MAX_USEFUL_STAGE_JOBS, _available_cpus())

    def resolved_optimizer(self) -> tuple:
        """``(strategy, budget)`` for the MP phase-assignment search.

        The strategy instance is built from :attr:`optimizer_params`
        (minus the reserved budget keys, which become the shared
        :class:`repro.optimize.OptimizerBudget`); parameters the
        strategy maps to config fields via
        ``OptimizerStrategy.config_params`` default to those fields —
        this is how the legacy ``power_exhaustive_limit`` / ``max_pairs``
        knobs keep steering the default ``pairwise`` strategy.
        """
        from repro.optimize import (
            get_strategy_class,
            make_strategy,
            split_budget_params,
        )

        budget, params = split_budget_params(self.optimizer_params)
        cls = get_strategy_class(self.optimizer)
        _missing = object()
        for param, field_name in cls.config_params.items():
            if param not in params:
                value = getattr(self, field_name, _missing)
                if value is _missing:
                    raise ConfigError(
                        f"optimizer strategy {self.optimizer!r} maps param "
                        f"{param!r} to unknown FlowConfig field {field_name!r}"
                    )
                params[param] = value
        return make_strategy(self.optimizer, **params), budget

    def optimizer_reproducible(self) -> bool:
        """False when the optimizer carries a wall-clock budget
        (``optimizer_params["max_seconds"]``).

        A wall-clock cap makes the MP search machine- and load-
        dependent — the same config can truncate after a different
        number of evaluations on a different host — so such runs are
        excluded from persistent-store serving (the store's contract is
        bit-identical results for equal keys).  Evaluation caps and
        tolerances are deterministic and unaffected.
        """
        return (self.optimizer_params or {}).get("max_seconds") is None

    def resolved_library(self) -> DominoCellLibrary:
        from repro.domino.gates import DEFAULT_LIBRARY

        return self.library or DEFAULT_LIBRARY

    def resolved_model(self) -> DominoPowerModel:
        """The estimator model: explicit, or derived from the library.

        The derived model aligns the optimiser's objective with the
        measurement — the estimator sees the same output caps, boundary
        inverter caps and per-cycle clock load the mapped design will
        have.
        """
        if self.model is not None:
            return self.model
        library = self.resolved_library()
        return DominoPowerModel(
            gate_cap=library.gate_output_cap,
            cap_per_fanin=library.cap_per_input,
            inverter_cap=library.inverter_cap,
            clock_cap_per_gate=library.clock_cap,
        )

    # ------------------------------------------------------------------
    # serialisation

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data dict (JSON-compatible) that round-trips via
        :meth:`from_dict`."""
        record: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "model" and value is not None:
                value = _nested_to_dict(value)
            elif f.name == "library" and value is not None:
                value = _nested_to_dict(value)
            elif f.name in ("input_probs", "optimizer_params") and value is not None:
                value = dict(value)
            record[f.name] = value
        return record

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlowConfig":
        """Build a validated config from a plain dict.

        Unknown keys raise :class:`ConfigError` (they are almost always
        typos of real knobs).
        """
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"FlowConfig data must be a mapping, got {type(data).__name__}"
            )
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigError(f"unknown FlowConfig field(s): {', '.join(unknown)}")
        kwargs: Dict[str, Any] = dict(data)
        if kwargs.get("model") is not None and not isinstance(
            kwargs["model"], DominoPowerModel
        ):
            kwargs["model"] = _nested_from_dict(DominoPowerModel, kwargs["model"], "model")
        if kwargs.get("library") is not None and not isinstance(
            kwargs["library"], DominoCellLibrary
        ):
            kwargs["library"] = _nested_from_dict(
                DominoCellLibrary, kwargs["library"], "library"
            )
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigError(f"bad FlowConfig: {exc}") from exc

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FlowConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "FlowConfig":
        """Load a JSON config file (the ``synth --config`` format)."""
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as exc:
            raise ConfigError(f"cannot read config {path!r}: {exc}") from exc
        return cls.from_json(text)

    def cache_key(self) -> tuple:
        """Hashable key of the knobs that shape the *prepared* network
        and evaluator; used by the pipeline's shared cache."""
        model = self.resolved_model()
        library = self.resolved_library()
        probs = (
            None
            if self.input_probs is None
            else tuple(sorted(self.input_probs.items()))
        )
        return (
            self.input_probability,
            probs,
            _tuple_of(model),
            _tuple_of(library),
            self.power_method,
            self.n_vectors,
            self.seed,
            self.minimize,
            self.strash,
        )

    def optimizer_key(self) -> tuple:
        """Hashable identity of the MP optimizer: strategy name plus
        its (sorted) params.  Part of :meth:`result_key` and of the
        ``optimize_mp`` store key, so the persistent store can never
        serve one strategy's assignment (or flow record) to another —
        while :meth:`cache_key` deliberately excludes it: the prepared
        network and evaluator are strategy-independent, and sharing
        them across a strategy sweep is the point."""
        params = (
            None
            if not self.optimizer_params
            else tuple(sorted(self.optimizer_params.items()))
        )
        return (self.optimizer, params)

    def result_key(self) -> tuple:
        """Hashable key of *every* knob that shapes the final
        :class:`FlowResult` — :meth:`cache_key` plus the downstream
        optimisation/timing/measurement knobs (the MP strategy identity
        included, via :meth:`optimizer_key`).  Two configs with equal
        ``result_key()`` produce bit-identical flow results on the same
        network, which is what lets the persistent
        :class:`repro.store.ArtifactStore` serve whole runs."""
        return self.cache_key() + (
            self.timed,
            self.timing_slack_fraction,
            self.area_exhaustive_limit,
            self.power_exhaustive_limit,
            self.max_pairs,
            self.current_scale,
        ) + self.optimizer_key()


def _tuple_of(obj: Any) -> tuple:
    return tuple(getattr(obj, f.name) for f in fields(obj))
