"""Timing-aware phase assignment — the paper's proposed future work.

Section 6: "One promising direction for future work is in the area of
integrating the choice of phase assignment with timing optimization."
This module implements that integration.

Phase choice affects delay, not just power: realising a cone in
negative polarity turns OR gates into AND gates (DeMorgan), and domino
ANDs carry a series-transistor stack penalty.  A power-optimal
assignment can therefore push the block past its cycle-time target and
force aggressive (power-hungry) resizing — exactly the tension Table 2
probes.

The optimiser here extends the Section 4.1 loop with a composite
objective

    J(assignment) = power(assignment)
                  + penalty_weight * max(0, delay(assignment) - target)

where ``delay`` comes from a fast polarity-space arrival-time model:
every (node, polarity) slot gets a precomputed arrival time under the
library's stack/load delay parameters, so evaluating a candidate costs
O(outputs) — cheap enough to sit inside the pairwise loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import PhaseError
from repro.network.duplication import Polarity, Ref
from repro.network.netlist import GateType, LogicNetwork
from repro.phase import Phase, PhaseAssignment, enumerate_assignments
from repro.core.cost import CostModelData, Move, best_pair_and_combo
from repro.core.optimizer import CommitRecord, OptimizationResult
from repro.domino.gates import DEFAULT_LIBRARY, DominoCellLibrary
from repro.power.estimator import PhaseEvaluator


class PhaseTimingModel:
    """Arrival times over the polarity universe of a network.

    For every (node, polarity) the model precomputes an estimated
    arrival time assuming minimum-size cells: gate delay =
    ``intrinsic + series * (fanin - 1 if AND-type) + load * fanouts``.
    Tree decomposition of wide gates is approximated by ``ceil(log)``
    levels of the library's fanin limit.
    """

    def __init__(
        self,
        evaluator: PhaseEvaluator,
        library: Optional[DominoCellLibrary] = None,
    ):
        self.evaluator = evaluator
        self.library = library or DEFAULT_LIBRARY
        self.space = evaluator.space
        network = evaluator.network
        fanouts = network.fanout_map()

        self._arrival = np.zeros(self.space.n_slots)
        lib = self.library

        def tree_levels(gate_type: GateType, n: int) -> int:
            limit = lib.max_fanin(gate_type)
            levels = 1
            while n > limit:
                n = -(-n // limit)  # ceil division: one reduction layer
                levels += 1
            return levels

        def gate_delay(gate_type: GateType, n_fanins: int, n_fanouts: int) -> float:
            stack = (
                lib.series_delay * max(min(n_fanins, lib.max_fanin(gate_type)) - 1, 0)
                if gate_type is GateType.AND
                else 0.0
            )
            base = lib.intrinsic_delay + stack + lib.load_delay * lib.input_cap * max(
                n_fanouts, 1
            )
            return base * tree_levels(gate_type, max(n_fanins, 1))

        def ref_arrival(ref: Ref) -> float:
            if ref.kind == "const":
                return 0.0
            if ref.kind in ("input", "latch"):
                # Negative-polarity sources pass through a static inverter.
                return lib.inverter_delay if ref.polarity is Polarity.NEG else 0.0
            return self._arrival[self.space.gate_index[ref.key]]

        # Polarity-space slots in dependency order: reuse the original
        # network's topological order, which is valid for both polarities
        # because fanin structure is polarity-independent.
        for name in network.topological_order():
            node = network.nodes[name]
            if node.gate_type not in (GateType.AND, GateType.OR):
                continue
            n_fo = len(fanouts[name])
            for pol in (Polarity.POS, Polarity.NEG):
                key = (name, pol)
                idx = self.space.gate_index[key]
                gt = self.space.gate_type_of(key)
                worst_in = max(
                    (ref_arrival(r) for r in self.space.gate_fanins(key)), default=0.0
                )
                self._arrival[idx] = worst_in + gate_delay(gt, len(node.fanins), n_fo)

        self._driver_arrival: Dict[Tuple[str, Phase], float] = {}
        for po, driver in network.outputs:
            for phase in (Phase.POSITIVE, Phase.NEGATIVE):
                pol = Polarity.POS if phase is Phase.POSITIVE else Polarity.NEG
                ref = self.space.resolve(driver, pol)
                arrival = ref_arrival(ref)
                if phase is Phase.NEGATIVE:
                    arrival += lib.inverter_delay
                self._driver_arrival[(po, phase)] = arrival

    def output_arrival(self, po: str, phase: Phase) -> float:
        return self._driver_arrival[(po, phase)]

    def critical_delay(self, assignment: PhaseAssignment) -> float:
        """Estimated critical delay of the block under an assignment."""
        return max(
            (self.output_arrival(po, assignment[po]) for po in self.evaluator.outputs),
            default=0.0,
        )


@dataclass
class TimingAwareResult:
    """Outcome of the timing-aware optimisation."""

    assignment: PhaseAssignment
    power: float
    delay: float
    objective: float
    target_delay: float
    initial_power: float
    initial_delay: float
    meets_target: bool
    method: str
    evaluations: int
    history: List[CommitRecord]

    @property
    def savings_percent(self) -> float:
        if self.initial_power == 0:
            return 0.0
        return 100.0 * (self.initial_power - self.power) / self.initial_power


def minimize_power_timing_aware(
    evaluator: PhaseEvaluator,
    target_delay: Optional[float] = None,
    penalty_weight: float = 10.0,
    library: Optional[DominoCellLibrary] = None,
    initial: Optional[PhaseAssignment] = None,
    method: str = "auto",
    exhaustive_limit: int = 10,
    slack_fraction: float = 1.0,
) -> TimingAwareResult:
    """Minimise power subject to a (soft) delay target.

    With no explicit ``target_delay`` the target defaults to
    ``slack_fraction`` times the all-positive assignment's estimated
    delay — i.e. "do not get slower than the natural realisation".
    """
    timing = PhaseTimingModel(evaluator, library)
    outputs = evaluator.outputs
    start = initial or PhaseAssignment.all_positive(outputs)
    if target_delay is None:
        target_delay = timing.critical_delay(start) * slack_fraction
    if target_delay <= 0:
        raise PhaseError(f"delay target must be positive, got {target_delay}")

    def objective(assignment: PhaseAssignment) -> Tuple[float, float, float]:
        power = evaluator.power(assignment)
        delay = timing.critical_delay(assignment)
        j = power + penalty_weight * max(0.0, delay - target_delay)
        return j, power, delay

    start_j, start_power, start_delay = objective(start)
    n_eval = 1

    if method == "auto":
        method = "exhaustive" if len(outputs) <= exhaustive_limit else "pairwise"

    history: List[CommitRecord] = []
    if method == "exhaustive":
        best = (start_j, start_power, start_delay, start)
        for assignment in enumerate_assignments(outputs):
            j, power, delay = objective(assignment)
            n_eval += 1
            if j < best[0]:
                best = (j, power, delay, assignment)
        final_j, final_power, final_delay, final = best
    elif method == "pairwise":
        data = CostModelData.from_network(evaluator.network)
        assert data.outputs == outputs
        current = start
        current_j, current_power, current_delay = start_j, start_power, start_delay
        avg = np.array(
            [evaluator.average_cone_probability(current, po) for po in outputs]
        )
        n = len(outputs)
        remaining = np.triu(np.ones((n, n), dtype=bool), k=1)
        while remaining.any():
            i, j_idx, combo, cost = best_pair_and_combo(data, avg, remaining)
            po_i, po_j = outputs[i], outputs[j_idx]
            mi, mj = combo
            flips = [po for po, m in ((po_i, mi), (po_j, mj)) if m is Move.INVERT]
            candidate = current.flipped(*flips) if flips else current
            cand_j, cand_power, cand_delay = objective(candidate)
            n_eval += 1
            committed = cand_j < current_j and bool(flips)
            if committed:
                current = candidate
                current_j, current_power, current_delay = cand_j, cand_power, cand_delay
                if mi is Move.INVERT:
                    avg[i] = 1.0 - avg[i]
                if mj is Move.INVERT:
                    avg[j_idx] = 1.0 - avg[j_idx]
            history.append(
                CommitRecord(
                    pair=(po_i, po_j),
                    moves=combo,
                    cost=cost,
                    candidate_power=cand_power,
                    committed=committed,
                )
            )
            remaining[i, j_idx] = False
        final_j, final_power, final_delay, final = (
            current_j,
            current_power,
            current_delay,
            current,
        )
    else:
        raise PhaseError(f"unknown optimisation method {method!r}")

    return TimingAwareResult(
        assignment=final,
        power=final_power,
        delay=final_delay,
        objective=final_j,
        target_delay=target_delay,
        initial_power=start_power,
        initial_delay=start_delay,
        meets_target=final_delay <= target_delay + 1e-9,
        method=method,
        evaluations=n_eval,
        history=history,
    )
