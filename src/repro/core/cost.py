"""The Section 4.1 pairwise cost function.

For a pair of primary outputs (i, j) the paper scores the four
retain/invert combinations with

    K(i+, j+) = |Di| Ai + |Dj| Aj + 0.5 * O(i,j) * (Ai + Aj)
    K(i-, j-) = |Di| (1-Ai) + |Dj| (1-Aj) + 0.5 * O(i,j) * ((1-Ai) + (1-Aj))
    K(i+, j-) = |Di| Ai + |Dj| (1-Aj) + 0.5 * O(i,j) * (Ai + (1-Aj))
    K(i-, j+) = |Di| (1-Ai) + |Dj| Aj + 0.5 * O(i,j) * ((1-Ai) + Aj)

where ``+`` means *retain the current phase* and ``-`` means *invert
it* (not absolute polarity!), |D| is the transitive-fanin cone size,
A is the average signal probability over the cone under the current
assignment (flipping a phase complements cone probabilities, Property
4.1), and O(i,j) = |Di ∩ Dj| / (|Di| + |Dj|) penalises overlapping
cones whose phases might conflict and duplicate logic.

This module provides both a scalar implementation (readable, used in
tests) and vectorised numpy kernels used by the optimiser's inner loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PhaseError
from repro.network.netlist import LogicNetwork
from repro.network.topo import cone_overlap, output_cones
from repro.phase import Phase, PhaseAssignment


class Move(enum.Enum):
    """Per-output action in a candidate: retain or invert the current phase."""

    RETAIN = "+"
    INVERT = "-"


#: The four combinations in the order the paper lists them.
COMBOS: Tuple[Tuple[Move, Move], ...] = (
    (Move.RETAIN, Move.RETAIN),
    (Move.INVERT, Move.INVERT),
    (Move.RETAIN, Move.INVERT),
    (Move.INVERT, Move.RETAIN),
)


def pair_cost(
    size_i: int,
    size_j: int,
    overlap: float,
    avg_i: float,
    avg_j: float,
    move_i: Move,
    move_j: Move,
) -> float:
    """Scalar K(i <move_i>, j <move_j>) exactly as printed in the paper."""
    ai = avg_i if move_i is Move.RETAIN else 1.0 - avg_i
    aj = avg_j if move_j is Move.RETAIN else 1.0 - avg_j
    return size_i * ai + size_j * aj + 0.5 * overlap * (ai + aj)


def all_pair_costs(
    size_i: int,
    size_j: int,
    overlap: float,
    avg_i: float,
    avg_j: float,
) -> Dict[Tuple[Move, Move], float]:
    """All four K values for one output pair."""
    return {
        (mi, mj): pair_cost(size_i, size_j, overlap, avg_i, avg_j, mi, mj)
        for mi, mj in COMBOS
    }


def group_cost(
    sizes: Sequence[float],
    overlaps: "np.ndarray",
    avgs: Sequence[float],
    moves: Sequence[Move],
) -> float:
    """The cost function K extended to an output *group* (Section 4.1).

    The paper notes the pairwise K "can be extended to capture a
    greater degree of interaction between phase assignments by
    extending the definition of the cost function K to more than a
    pair of outputs":

        K(moves) = sum_m |D_m| a_m'  +  0.5 * sum_{m<l} O(m,l) (a_m' + a_l')

    where ``a' = a`` for RETAIN and ``1 - a`` for INVERT.  ``overlaps``
    is the group's (k, k) overlap submatrix.
    """
    a_eff = [
        a if m is Move.RETAIN else 1.0 - a for a, m in zip(avgs, moves)
    ]
    k = len(a_eff)
    total = sum(s * a for s, a in zip(sizes, a_eff))
    for m in range(k):
        for l in range(m + 1, k):
            total += 0.5 * overlaps[m, l] * (a_eff[m] + a_eff[l])
    return total


@dataclass
class CostModelData:
    """Static per-circuit data feeding the cost function.

    ``sizes[k]`` is |D_k| for output k, ``overlap[k, l]`` is O(k, l),
    both independent of the phase assignment (flipping a phase leaves
    the cone's *node set* unchanged; only polarities flip).
    """

    outputs: List[str]
    sizes: np.ndarray  # (P,)
    overlap: np.ndarray  # (P, P)

    @classmethod
    def from_network(cls, network: LogicNetwork) -> "CostModelData":
        cones = output_cones(network, include_sources=False)
        outputs = network.output_names()
        sizes = np.array([len(cones[po]) for po in outputs], dtype=float)
        n = len(outputs)
        overlap = np.zeros((n, n))
        cone_list = [cones[po] for po in outputs]
        for a in range(n):
            for b in range(a + 1, n):
                o = cone_overlap(cone_list[a], cone_list[b])
                overlap[a, b] = o
                overlap[b, a] = o
        return cls(outputs=outputs, sizes=sizes, overlap=overlap)

    def index_of(self, po: str) -> int:
        try:
            return self.outputs.index(po)
        except ValueError:
            raise PhaseError(f"unknown output {po!r}") from None


def cost_matrices(
    data: CostModelData, avg_probs: np.ndarray
) -> Dict[Tuple[Move, Move], np.ndarray]:
    """Vectorised K over all pairs, for the 4 combos.

    ``avg_probs[k]`` is A_k under the *current* assignment.  Entry
    ``[i, j]`` of each matrix is K(i <mi>, j <mj>); diagonals are
    meaningless and set to +inf.
    """
    sizes = data.sizes
    n = len(sizes)
    a_ret = avg_probs
    a_inv = 1.0 - avg_probs
    out: Dict[Tuple[Move, Move], np.ndarray] = {}
    for mi, mj in COMBOS:
        ai = a_ret if mi is Move.RETAIN else a_inv
        aj = a_ret if mj is Move.RETAIN else a_inv
        k = (
            (sizes * ai)[:, None]
            + (sizes * aj)[None, :]
            + 0.5 * data.overlap * (ai[:, None] + aj[None, :])
        )
        np.fill_diagonal(k, np.inf)
        out[(mi, mj)] = k
    return out


def best_pair_and_combo(
    data: CostModelData,
    avg_probs: np.ndarray,
    remaining: np.ndarray,
) -> Tuple[int, int, Tuple[Move, Move], float]:
    """Minimum-cost (i, j, combo) over the remaining candidate pairs.

    ``remaining`` is a boolean (P, P) upper-triangular mask of pairs
    still in the candidate set.
    """
    if not remaining.any():
        raise PhaseError("candidate pair set is empty")
    matrices = cost_matrices(data, avg_probs)
    best: Optional[Tuple[int, int, Tuple[Move, Move], float]] = None
    for combo, k in matrices.items():
        masked = np.where(remaining, k, np.inf)
        idx = int(np.argmin(masked))
        i, j = divmod(idx, k.shape[1])
        val = float(masked[i, j])
        if best is None or val < best[3]:
            best = (i, j, combo, val)
    assert best is not None
    return best
