"""Minimum-power phase assignment — the paper's Section 4.1 heuristic.

The loop exactly follows the paper's seven steps:

1. Generate an arbitrary initial phase assignment.
2. For each pair of primary outputs still in the candidate set, compute
   the cost K of the four retain/invert combinations.
3. Choose the pair + combination of minimum cost.
4. Synthesise the circuit with that assignment (implicitly — the
   evaluator's polarity masks stand in for re-synthesis).
5. Measure the power (Section 4.2 estimator).
6. Commit the combination iff power decreased; either way remove the
   pair from the candidate set.
7. Repeat from step 2 while candidate pairs remain.

With the cost extended to all outputs the heuristic degenerates into a
"greedily ordered exhaustive search"; we expose that as the
``exhaustive`` method, which the paper effectively uses on frg1 (3
outputs → 8 assignments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import PhaseError
from repro.network.netlist import LogicNetwork
from repro.phase import Phase, PhaseAssignment, enumerate_assignments
from repro.core.cost import (
    COMBOS,
    CostModelData,
    Move,
    best_pair_and_combo,
    group_cost,
)
from repro.power.estimator import PhaseEvaluator


@dataclass
class CommitRecord:
    """One iteration of the pairwise loop (for tracing/visualisation)."""

    pair: Tuple[str, str]
    moves: Tuple[Move, Move]
    cost: float
    candidate_power: float
    committed: bool


@dataclass
class OptimizationResult:
    """Outcome of a phase-assignment power optimisation."""

    assignment: PhaseAssignment
    power: float
    initial_power: float
    method: str
    evaluations: int
    history: List[CommitRecord] = field(default_factory=list)

    @property
    def savings_percent(self) -> float:
        if self.initial_power == 0:
            return 0.0
        return 100.0 * (self.initial_power - self.power) / self.initial_power


def minimize_power(
    evaluator: PhaseEvaluator,
    initial: Optional[PhaseAssignment] = None,
    method: str = "auto",
    exhaustive_limit: int = 10,
    max_pairs: Optional[int] = None,
    group_size: int = 2,
) -> OptimizationResult:
    """Find a low-power phase assignment.

    ``method`` is ``pairwise`` (the paper's heuristic), ``exhaustive``,
    or ``auto`` (exhaustive when #outputs <= ``exhaustive_limit``).
    ``max_pairs`` truncates the candidate set for very large circuits.
    ``group_size`` > 2 uses the paper's extended cost function over
    output groups (Section 4.1's "greater degree of interaction").
    """
    outputs = evaluator.outputs
    if group_size < 2:
        raise PhaseError(f"group size must be at least 2, got {group_size}")
    if method == "auto":
        method = "exhaustive" if len(outputs) <= exhaustive_limit else "pairwise"
    if method == "exhaustive":
        return _exhaustive(evaluator, initial)
    if method == "pairwise":
        if group_size > 2:
            return _groupwise(evaluator, initial, group_size)
        return _pairwise(evaluator, initial, max_pairs=max_pairs)
    raise PhaseError(f"unknown optimisation method {method!r}")


def _exhaustive(
    evaluator: PhaseEvaluator, initial: Optional[PhaseAssignment]
) -> OptimizationResult:
    outputs = evaluator.outputs
    start = initial or PhaseAssignment.all_positive(outputs)
    initial_power = evaluator.power(start)
    best_assignment = start
    best_power = initial_power
    n_eval = 1
    for assignment in enumerate_assignments(outputs):
        power = evaluator.power(assignment)
        n_eval += 1
        if power < best_power:
            best_assignment, best_power = assignment, power
    return OptimizationResult(
        assignment=best_assignment,
        power=best_power,
        initial_power=initial_power,
        method="exhaustive",
        evaluations=n_eval,
    )


def _pairwise(
    evaluator: PhaseEvaluator,
    initial: Optional[PhaseAssignment],
    max_pairs: Optional[int] = None,
) -> OptimizationResult:
    outputs = evaluator.outputs
    n = len(outputs)
    if n < 2:
        start = initial or PhaseAssignment.all_positive(outputs)
        start_power = evaluator.power(start)
        best, best_power = start, start_power
        n_eval = 1
        if n == 1:
            flipped = start.flipped(outputs[0])
            flipped_power = evaluator.power(flipped)
            n_eval += 1
            if flipped_power < best_power:
                best, best_power = flipped, flipped_power
        return OptimizationResult(best, best_power, start_power, "pairwise", n_eval)

    data = CostModelData.from_network(evaluator.network)
    # Align index order with evaluator outputs.
    assert data.outputs == outputs

    current = initial or PhaseAssignment.all_positive(outputs)
    current_power = evaluator.power(current)
    initial_power = current_power
    n_eval = 1

    # A_k per output under the current assignment (flips with the phase).
    avg = np.array(
        [evaluator.average_cone_probability(current, po) for po in outputs]
    )

    remaining = np.triu(np.ones((n, n), dtype=bool), k=1)
    if max_pairs is not None and remaining.sum() > max_pairs:
        # Keep the pairs with the largest overlap-weighted cones — the
        # ones whose phases interact most.
        scores = data.overlap * (data.sizes[:, None] + data.sizes[None, :])
        flat = np.where(remaining, scores, -np.inf).ravel()
        keep = np.argsort(flat)[::-1][:max_pairs]
        mask = np.zeros(n * n, dtype=bool)
        mask[keep] = True
        remaining &= mask.reshape(n, n)

    history: List[CommitRecord] = []
    while remaining.any():
        i, j, combo, cost = best_pair_and_combo(data, avg, remaining)
        po_i, po_j = outputs[i], outputs[j]
        mi, mj = combo

        flips: List[str] = []
        if mi is Move.INVERT:
            flips.append(po_i)
        if mj is Move.INVERT:
            flips.append(po_j)
        candidate = current.flipped(*flips) if flips else current
        candidate_power = evaluator.power(candidate)
        n_eval += 1

        committed = candidate_power < current_power and bool(flips)
        if committed:
            current = candidate
            current_power = candidate_power
            if mi is Move.INVERT:
                avg[i] = 1.0 - avg[i]
            if mj is Move.INVERT:
                avg[j] = 1.0 - avg[j]
        history.append(
            CommitRecord(
                pair=(po_i, po_j),
                moves=combo,
                cost=cost,
                candidate_power=candidate_power,
                committed=committed,
            )
        )
        remaining[i, j] = False

    return OptimizationResult(
        assignment=current,
        power=current_power,
        initial_power=initial_power,
        method="pairwise",
        evaluations=n_eval,
        history=history,
    )


def _groupwise(
    evaluator: PhaseEvaluator,
    initial: Optional[PhaseAssignment],
    group_size: int,
) -> OptimizationResult:
    """The Section 4.1 loop with the cost function extended to groups.

    Each primary output anchors one candidate group consisting of the
    anchor and its ``group_size - 1`` highest-overlap partners.  Every
    iteration scores all remaining groups under all ``2^k`` move
    combinations with :func:`~repro.core.cost.group_cost`, applies the
    best, measures power, and commits iff it dropped.
    """
    import itertools

    outputs = evaluator.outputs
    n = len(outputs)
    data = CostModelData.from_network(evaluator.network)
    assert data.outputs == outputs

    current = initial or PhaseAssignment.all_positive(outputs)
    current_power = evaluator.power(current)
    initial_power = current_power
    n_eval = 1
    avg = np.array(
        [evaluator.average_cone_probability(current, po) for po in outputs]
    )

    # Build anchored groups by overlap affinity.
    k = min(group_size, n)
    groups: List[Tuple[int, ...]] = []
    for anchor in range(n):
        partners = np.argsort(data.overlap[anchor])[::-1]
        members = [anchor]
        for p in partners:
            if int(p) != anchor and len(members) < k:
                members.append(int(p))
        groups.append(tuple(members))

    move_combos = list(itertools.product((Move.RETAIN, Move.INVERT), repeat=k))
    history: List[CommitRecord] = []
    remaining = set(range(len(groups)))
    while remaining:
        best: Optional[Tuple[float, int, Tuple[Move, ...]]] = None
        for gi in remaining:
            members = groups[gi]
            sizes = [data.sizes[m] for m in members]
            overlaps = data.overlap[np.ix_(members, members)]
            avgs = [avg[m] for m in members]
            for combo in move_combos:
                cost = group_cost(sizes, overlaps, avgs, combo)
                if best is None or cost < best[0]:
                    best = (cost, gi, combo)
        assert best is not None
        cost, gi, combo = best
        members = groups[gi]
        flips = [outputs[m] for m, mv in zip(members, combo) if mv is Move.INVERT]
        candidate = current.flipped(*flips) if flips else current
        candidate_power = evaluator.power(candidate)
        n_eval += 1
        committed = candidate_power < current_power and bool(flips)
        if committed:
            current = candidate
            current_power = candidate_power
            for m, mv in zip(members, combo):
                if mv is Move.INVERT:
                    avg[m] = 1.0 - avg[m]
        history.append(
            CommitRecord(
                pair=(outputs[members[0]], outputs[members[-1]]),
                moves=(combo[0], combo[-1]),
                cost=cost,
                candidate_power=candidate_power,
                committed=committed,
            )
        )
        remaining.discard(gi)

    return OptimizationResult(
        assignment=current,
        power=current_power,
        initial_power=initial_power,
        method=f"groupwise-{group_size}",
        evaluations=n_eval,
        history=history,
    )


def random_search(
    evaluator: PhaseEvaluator,
    n_samples: int = 64,
    seed: int = 0,
) -> OptimizationResult:
    """Random-assignment baseline for ablation benches."""
    outputs = evaluator.outputs
    start = PhaseAssignment.all_positive(outputs)
    best = start
    best_power = evaluator.power(start)
    initial_power = best_power
    for k in range(n_samples):
        cand = PhaseAssignment.random(outputs, seed=seed + k)
        p = evaluator.power(cand)
        if p < best_power:
            best, best_power = cand, p
    return OptimizationResult(
        assignment=best,
        power=best_power,
        initial_power=initial_power,
        method="random",
        evaluations=n_samples + 1,
    )
