"""Minimum-power phase assignment — legacy keyword front door.

The paper's Section 4.1 heuristic and its siblings now live in the
:mod:`repro.optimize` strategy registry; this module keeps the
historical API stable:

* :func:`minimize_power` — the original ``method="auto" | "pairwise" |
  "exhaustive"`` keyword interface, now a thin dispatcher over the
  registered strategies (bit-identical results);
* :func:`random_search` — the random-sampling ablation baseline, now
  the ``random`` strategy;
* :class:`OptimizationResult` / :class:`CommitRecord` — re-exported
  from :mod:`repro.optimize.base`, their new home.

New code should pick a strategy by name instead::

    from repro.optimize import make_strategy
    result = make_strategy("pairwise").optimize(evaluator, seed=0)

or, driving the whole flow, ``FlowConfig(optimizer="pairwise",
optimizer_params={...})``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PhaseError
from repro.phase import PhaseAssignment
from repro.power.estimator import PhaseEvaluator
# import via the package (not .base) so the built-in strategies are
# registered before the first make_strategy call
from repro.optimize import (
    CommitRecord,
    OptimizationResult,
    make_strategy,
)

__all__ = [
    "CommitRecord",
    "OptimizationResult",
    "minimize_power",
    "random_search",
]


def minimize_power(
    evaluator: PhaseEvaluator,
    initial: Optional[PhaseAssignment] = None,
    method: str = "auto",
    exhaustive_limit: int = 10,
    max_pairs: Optional[int] = None,
    group_size: int = 2,
) -> OptimizationResult:
    """Find a low-power phase assignment (legacy keyword API).

    ``method`` is ``pairwise`` (the paper's heuristic), ``exhaustive``,
    or ``auto`` (exhaustive when #outputs <= ``exhaustive_limit``).
    ``max_pairs`` truncates the candidate set for very large circuits.
    ``group_size`` > 2 uses the paper's extended cost function over
    output groups (Section 4.1's "greater degree of interaction").
    """
    if group_size < 2:
        raise PhaseError(f"group size must be at least 2, got {group_size}")
    if method == "auto":
        method = (
            "exhaustive"
            if len(evaluator.outputs) <= exhaustive_limit
            else "pairwise"
        )
    if method == "exhaustive":
        return make_strategy("exhaustive").optimize(evaluator, initial=initial)
    if method == "pairwise":
        if group_size > 2:
            return make_strategy("groupwise", group_size=group_size).optimize(
                evaluator, initial=initial
            )
        # exhaustive_limit=0 forces the pairwise loop: this entry point
        # already did (or skipped) the auto dispatch above
        return make_strategy(
            "pairwise", exhaustive_limit=0, max_pairs=max_pairs
        ).optimize(evaluator, initial=initial)
    raise PhaseError(f"unknown optimisation method {method!r}")


def random_search(
    evaluator: PhaseEvaluator,
    n_samples: int = 64,
    seed: int = 0,
) -> OptimizationResult:
    """Random-assignment baseline for ablation benches (the ``random``
    strategy)."""
    return make_strategy("random", n_samples=n_samples).optimize(
        evaluator, seed=seed
    )
