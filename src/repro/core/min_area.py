"""Minimum-area phase assignment — the paper's baseline ("MA" columns).

Reference [15] (Puri et al., ICCAD '96) selects output phases to
minimise the logic duplication of the inverter-free transform.  The
paper runs it to optimality, which is feasible because the benchmark
circuits have limited shared-cone structure (and frg1 has only 3
outputs).  We provide:

* exhaustive search (optimal) up to a configurable output count;
* deterministic steepest-descent hill climbing with restarts beyond it
  (single-output flips plus optional pair flips), which matches the
  behaviour of duplication-driven heuristics in practice.

The objective is the cell-count proxy of
:meth:`repro.power.estimator.PhaseEvaluator.area`: domino gates after
duplication plus static boundary inverters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.network.netlist import LogicNetwork
from repro.phase import Phase, PhaseAssignment, enumerate_assignments
from repro.power.estimator import PhaseEvaluator


@dataclass
class AreaResult:
    """Outcome of a min-area search."""

    assignment: PhaseAssignment
    area: int
    method: str
    evaluations: int


def minimize_area(
    evaluator: PhaseEvaluator,
    exhaustive_limit: int = 12,
    restarts: int = 4,
    pair_moves: bool = True,
    seed: int = 0,
) -> AreaResult:
    """Find a (near-)minimum-area phase assignment.

    Exhaustive (provably optimal) when the circuit has at most
    ``exhaustive_limit`` outputs, hill climbing with ``restarts``
    otherwise.
    """
    outputs = evaluator.outputs
    if len(outputs) <= exhaustive_limit:
        return _exhaustive(evaluator)
    return _hill_climb(evaluator, restarts=restarts, pair_moves=pair_moves, seed=seed)


def _exhaustive(evaluator: PhaseEvaluator) -> AreaResult:
    outputs = evaluator.outputs
    best_assignment: Optional[PhaseAssignment] = None
    best_area = 0
    n_eval = 0
    for assignment in enumerate_assignments(outputs):
        area = evaluator.area(assignment)
        n_eval += 1
        if best_assignment is None or area < best_area:
            best_assignment = assignment
            best_area = area
    assert best_assignment is not None
    return AreaResult(
        assignment=best_assignment,
        area=best_area,
        method="exhaustive",
        evaluations=n_eval,
    )


def _hill_climb(
    evaluator: PhaseEvaluator,
    restarts: int,
    pair_moves: bool,
    seed: int,
) -> AreaResult:
    outputs = evaluator.outputs
    n_eval = 0
    global_best: Optional[Tuple[int, PhaseAssignment]] = None

    starts: List[PhaseAssignment] = [PhaseAssignment.all_positive(outputs)]
    for r in range(max(restarts - 1, 0)):
        starts.append(PhaseAssignment.random(outputs, seed=seed + r))

    for start in starts:
        current = start
        current_area = evaluator.area(current)
        n_eval += 1
        improved = True
        while improved:
            improved = False
            # Single-output flips, first-improvement in deterministic order.
            for po in outputs:
                candidate = current.flipped(po)
                area = evaluator.area(candidate)
                n_eval += 1
                if area < current_area:
                    current, current_area = candidate, area
                    improved = True
            if improved or not pair_moves:
                continue
            # Pair flips break simple local minima created by cone overlap.
            for a in range(len(outputs)):
                for b in range(a + 1, len(outputs)):
                    candidate = current.flipped(outputs[a], outputs[b])
                    area = evaluator.area(candidate)
                    n_eval += 1
                    if area < current_area:
                        current, current_area = candidate, area
                        improved = True
                        break
                if improved:
                    break
        if global_best is None or current_area < global_best[0]:
            global_best = (current_area, current)
    assert global_best is not None
    return AreaResult(
        assignment=global_best[1],
        area=global_best[0],
        method="hill-climb",
        evaluations=n_eval,
    )
