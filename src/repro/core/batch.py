"""Parallel batch front-end: run the flow over many circuits at once.

:func:`run_many` fans a list of circuits across worker processes and
returns per-circuit results in input order with three guarantees:

* **determinism** — every stochastic component is seeded from the
  item's config, so ``jobs=4`` produces results bit-for-bit identical
  to a sequential loop of ``run_flow`` calls with the same seeds;
  optional :func:`derive_seed` per-circuit seeding is a pure function
  of ``(base seed, circuit name)`` and therefore also
  schedule-independent;
* **error isolation** — one bad circuit (unparsable BLIF, flow bug)
  yields a failed :class:`BatchItem` carrying the traceback; the rest
  of the batch completes normally;
* **progress** — an optional callback fires in the parent process as
  each circuit finishes (out of order), for CLI progress lines or
  service-side metrics.

Circuits can be given as :class:`LogicNetwork` objects, paths to BLIF
files, or :class:`BenchmarkSpec` recipes; loading/building happens in
the worker so the parent never blocks on I/O for circuits it has not
reached yet.
"""

from __future__ import annotations

import os
import time
import traceback
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import BatchError
from repro.network.netlist import LogicNetwork
from repro.core.config import FlowConfig
from repro.core.flow import FlowResult

#: Accepted circuit descriptions.
CircuitLike = Union[LogicNetwork, str, Path, "BenchmarkSpec"]  # noqa: F821

#: ``progress(done, total, item)`` — called in the parent as items finish.
ProgressCallback = Callable[[int, int, "BatchItem"], None]


def derive_seed(base_seed: int, name: str) -> int:
    """Deterministic per-circuit seed: a pure function of the base seed
    and the circuit name, independent of batch order and worker
    scheduling."""
    return (base_seed + zlib.crc32(name.encode("utf-8"))) % (2**31)


@dataclass
class BatchItem:
    """Outcome of one circuit in a batch."""

    index: int
    name: str
    config: FlowConfig
    result: Optional[FlowResult] = None
    error: Optional[str] = None
    runtime_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


@dataclass
class BatchResult:
    """All per-circuit outcomes, in input order."""

    items: List[BatchItem]
    jobs: int
    runtime_s: float

    @property
    def results(self) -> List[FlowResult]:
        """Successful flow results, in input order."""
        return [item.result for item in self.items if item.ok]

    @property
    def failures(self) -> List[BatchItem]:
        return [item for item in self.items if not item.ok]

    @property
    def n_ok(self) -> int:
        return sum(1 for item in self.items if item.ok)

    @property
    def n_failed(self) -> int:
        return len(self.items) - self.n_ok

    def rows(self) -> List[Dict[str, object]]:
        """Paper-layout table rows of the successful results."""
        return [item.result.row() for item in self.items if item.ok]


# ----------------------------------------------------------------------
# job descriptions (must pickle cheaply for the process pool)


def _describe(circuit: CircuitLike) -> tuple:
    """(kind, payload, name) — picklable description of one circuit."""
    from repro.bench.mcnc import BenchmarkSpec

    if isinstance(circuit, LogicNetwork):
        return ("network", circuit, circuit.name)
    if isinstance(circuit, BenchmarkSpec):
        return ("spec", circuit, circuit.name)
    if isinstance(circuit, (str, Path)):
        path = str(circuit)
        return ("blif", path, Path(path).stem)
    raise BatchError(
        f"cannot interpret circuit of type {type(circuit).__name__} "
        "(expected LogicNetwork, BenchmarkSpec, or BLIF path)"
    )


def _execute_job(job: tuple):
    """Worker entry point: build/load the circuit and run the pipeline.

    Returns ``(index, FlowResult | None, error | None, runtime_s)``.
    Any circuit failure becomes the error string instead of raising, so
    one bad circuit cannot take down the batch; KeyboardInterrupt and
    other non-``Exception`` exits still propagate so an inline batch
    can actually be aborted.
    """
    index, kind, payload, name, config = job
    start = time.perf_counter()
    try:
        if kind == "network":
            network = payload
        elif kind == "spec":
            network = payload.build()
        else:
            from repro.network.blif import load_blif

            network = load_blif(payload)
        from repro.core.pipeline import Pipeline

        # time the flow only, not circuit build/load — keeps per-circuit
        # runtimes comparable with the historical sequential tables
        start = time.perf_counter()
        result = Pipeline(config).run(network).flow
        return (index, result, None, time.perf_counter() - start)
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        detail = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        tb = traceback.format_exc()
        return (index, None, f"{detail}\n{tb}", time.perf_counter() - start)


def default_jobs() -> int:
    """A sensible worker count: physical parallelism minus one, ≥ 1."""
    return max(1, (os.cpu_count() or 2) - 1)


def run_many(
    circuits: Sequence[CircuitLike],
    config: Optional[FlowConfig] = None,
    *,
    configs: Optional[Sequence[FlowConfig]] = None,
    jobs: int = 1,
    per_circuit_seeds: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> BatchResult:
    """Run the synthesis flow on many circuits, optionally in parallel.

    Parameters
    ----------
    circuits:
        Networks, BLIF paths, or benchmark specs.
    config:
        Shared :class:`FlowConfig` (defaults to ``FlowConfig()``).
    configs:
        Optional per-circuit configs (same length as ``circuits``);
        overrides ``config``.
    jobs:
        Worker processes.  ``1`` runs inline in this process (still
        with error isolation); ``>1`` uses a ``ProcessPoolExecutor``.
    per_circuit_seeds:
        Re-seed each circuit with ``derive_seed(config.seed, name)`` so
        batch members decorrelate; off by default so a batch matches a
        sequential loop of ``run_flow`` calls exactly.
    progress:
        ``callback(done, total, item)`` fired as each circuit finishes.

    Returns
    -------
    BatchResult
        Per-circuit :class:`BatchItem` records in input order; failures
        carry tracebacks instead of aborting the batch.
    """
    base_config = config or FlowConfig()
    if configs is not None and len(configs) != len(circuits):
        raise BatchError(
            f"configs length {len(configs)} != circuits length {len(circuits)}"
        )
    if jobs < 1:
        raise BatchError(f"jobs must be >= 1, got {jobs}")

    jobs_list: List[tuple] = []
    items: List[BatchItem] = []
    for index, circuit in enumerate(circuits):
        kind, payload, name = _describe(circuit)
        item_config = configs[index] if configs is not None else base_config
        if per_circuit_seeds:
            item_config = item_config.replace(seed=derive_seed(item_config.seed, name))
        jobs_list.append((index, kind, payload, name, item_config))
        items.append(BatchItem(index=index, name=name, config=item_config))

    total = len(jobs_list)
    started = time.perf_counter()

    def finish(outcome: tuple, done: int) -> None:
        index, result, error, runtime_s = outcome
        item = items[index]
        item.result = result
        item.error = error
        item.runtime_s = runtime_s
        if progress is not None:
            progress(done, total, item)

    if jobs == 1 or total <= 1:
        for done, job in enumerate(jobs_list, start=1):
            finish(_execute_job(job), done)
    else:
        workers = min(jobs, max(total, 1))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {pool.submit(_execute_job, job): job for job in jobs_list}
            done = 0
            while pending:
                completed, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in completed:
                    job = pending.pop(future)
                    exc = future.exception()
                    done += 1
                    if exc is not None:
                        # pool-level failure (e.g. unpicklable payload,
                        # killed worker) — isolate it to this item too
                        finish((job[0], None, f"{type(exc).__name__}: {exc}", 0.0), done)
                    else:
                        finish(future.result(), done)

    return BatchResult(items=items, jobs=jobs, runtime_s=time.perf_counter() - started)


def format_batch(batch: BatchResult, title: str = "Batch synthesis") -> str:
    """Human-readable batch summary: the paper-layout table for the
    successes, then one line per failure."""
    from repro.core.flow import format_table

    lines = [format_table(batch.rows(), title)]
    if batch.failures:
        lines.append("")
        lines.append(f"failed circuits ({batch.n_failed}/{len(batch.items)}):")
        for item in batch.failures:
            first = (item.error or "unknown error").splitlines()[0]
            lines.append(f"  {item.name:<16} {first}")
    lines.append("")
    lines.append(
        f"{batch.n_ok}/{len(batch.items)} circuits ok, "
        f"{batch.jobs} job(s), {batch.runtime_s:.1f}s wall"
    )
    return "\n".join(lines)
