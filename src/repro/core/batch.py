"""Parallel batch front-end: run the flow over many circuits at once.

:func:`run_many` fans a list of circuits across worker processes and
returns per-circuit results in input order with three guarantees:

* **determinism** — every stochastic component is seeded from the
  item's config, so ``jobs=4`` produces results bit-for-bit identical
  to a sequential loop of ``run_flow`` calls with the same seeds;
  optional :func:`derive_seed` per-circuit seeding is a pure function
  of ``(base seed, circuit name)`` and therefore also
  schedule-independent;
* **error isolation** — one bad circuit (unparsable BLIF, flow bug)
  yields a failed :class:`BatchItem` carrying the traceback; the rest
  of the batch completes normally;
* **progress** — an optional callback fires in the parent process as
  each circuit finishes (out of order), for CLI progress lines or
  service-side metrics.

Beyond the basics, the batch front-end handles the operational
concerns of large heterogeneous suites:

* **cost-ordered scheduling** (``order="cost"``, the default) —
  circuits dispatch largest-first by predicted cost (gate count ×
  output count), so the long poles start immediately instead of
  serialising at the tail of a FIFO schedule.  Results still come back
  in input order and are bit-identical either way.
* **per-item timeouts** (``timeout_s=...``) — a hung circuit becomes a
  failed :class:`BatchItem` instead of stalling the whole pool.
* **persistent caching** (``store=...``) — each worker runs its
  pipeline against a shared :class:`repro.store.ArtifactStore`, so
  circuits whose (fingerprint, config) pair is already archived are
  served from disk without executing any synthesis stage
  (``BatchItem.cached``), and cold circuits persist their artefacts
  for the next run.

:func:`sweep` expands one base config over parameter grids into a
single ``run_many`` batch that shares the store, with a manifest
recording the grid — the repo's config-sweep front door.

Circuits can be given as :class:`LogicNetwork` objects, paths to BLIF
files, or :class:`BenchmarkSpec` recipes; loading/building happens in
the worker so the parent never blocks on I/O for circuits it has not
reached yet.
"""

from __future__ import annotations

import itertools
import os
import signal
import threading
import time
import traceback
import warnings
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import BatchError, ConfigError
from repro.network.netlist import LogicNetwork
from repro.core.config import POOL_WORKER_ENV, FlowConfig, _available_cpus
from repro.core.flow import FlowResult

#: Accepted circuit descriptions.
CircuitLike = Union[LogicNetwork, str, Path, "BenchmarkSpec"]  # noqa: F821

#: ``progress(done, total, item)`` — called in the parent as items finish.
ProgressCallback = Callable[[int, int, "BatchItem"], None]


def derive_seed(base_seed: int, name: str) -> int:
    """Deterministic per-circuit seed: a pure function of the base seed
    and the circuit name, independent of batch order and worker
    scheduling."""
    return (base_seed + zlib.crc32(name.encode("utf-8"))) % (2**31)


@dataclass
class BatchItem:
    """Outcome of one circuit in a batch."""

    index: int
    name: str
    config: FlowConfig
    result: Optional[FlowResult] = None
    error: Optional[str] = None
    runtime_s: float = 0.0
    cached: bool = False  # served whole from the persistent store

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


@dataclass
class BatchResult:
    """All per-circuit outcomes, in input order."""

    items: List[BatchItem]
    jobs: int
    runtime_s: float

    @property
    def results(self) -> List[FlowResult]:
        """Successful flow results, in input order."""
        return [item.result for item in self.items if item.ok]

    @property
    def failures(self) -> List[BatchItem]:
        return [item for item in self.items if not item.ok]

    @property
    def n_ok(self) -> int:
        return sum(1 for item in self.items if item.ok)

    @property
    def n_failed(self) -> int:
        return len(self.items) - self.n_ok

    @property
    def n_cached(self) -> int:
        """Items served whole from the persistent store."""
        return sum(1 for item in self.items if item.cached)

    def rows(self) -> List[Dict[str, object]]:
        """Paper-layout table rows of the successful results."""
        return [item.result.row() for item in self.items if item.ok]


# ----------------------------------------------------------------------
# job descriptions (must pickle cheaply for the process pool)


def _describe(circuit: CircuitLike) -> tuple:
    """(kind, payload, name) — picklable description of one circuit."""
    from repro.bench.mcnc import BenchmarkSpec

    if isinstance(circuit, LogicNetwork):
        return ("network", circuit, circuit.name)
    if isinstance(circuit, BenchmarkSpec):
        return ("spec", circuit, circuit.name)
    if isinstance(circuit, (str, Path)):
        path = str(circuit)
        return ("blif", path, Path(path).stem)
    raise BatchError(
        f"cannot interpret circuit of type {type(circuit).__name__} "
        "(expected LogicNetwork, BenchmarkSpec, or BLIF path)"
    )


def predicted_cost(kind: str, payload) -> float:
    """Predicted flow cost of one circuit, for largest-first scheduling.

    Gate count × output count tracks the dominant optimiser terms
    (evaluator sweeps are linear in gates, assignment searches in
    outputs).  For BLIF paths the file size stands in for the gate
    count so scheduling never pays a parse; prediction failures cost 0
    (scheduled last) rather than raising.
    """
    try:
        if kind == "network":
            return float(len(payload.gates)) * max(1, len(payload.outputs))
        if kind == "spec":
            return float(payload.n_gates) * max(1, payload.n_outputs)
        return float(os.path.getsize(payload))
    except (OSError, AttributeError, TypeError):
        return 0.0


class ItemTimeout(Exception):
    """Raised inside a worker when one circuit exceeds ``timeout_s``."""

    def __str__(self) -> str:
        # the watchdog guard raises the bare class via
        # PyThreadState_SetAsyncExc (no constructor call) — keep the
        # error text informative either way
        return super().__str__() or "flow exceeded its timeout_s budget"


def _sigalrm_guard(timeout_s: float):
    """SIGALRM-based guard (POSIX main thread only); ``None`` if arming
    failed, so the caller can fall back to the thread-based guard."""

    def _raise_timeout(signum, frame):
        raise ItemTimeout(f"flow exceeded timeout_s={timeout_s:g}")

    previous = signal.signal(signal.SIGALRM, _raise_timeout)
    try:
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    except (ValueError, OSError):
        signal.signal(signal.SIGALRM, previous)
        return None

    def disarm() -> None:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)

    return disarm


#: Guards the per-thread watchdog generation tokens (and each
#: watchdog's ``fired`` flag): the fire/disarm race is decided by who
#: takes this lock first.
_WATCHDOG_LOCK = threading.Lock()

#: Monotonic generation token per thread ident.  Arming a watchdog
#: bumps the thread's token; the watchdog re-reads it *before* raising
#: and stands down on a mismatch, so a timer that out-lives its item
#: can never inject into the thread's next item.  Tokens are never
#: deleted (idents can be recycled across threads; monotonicity is what
#: keeps stale timers stale).
_WATCHDOG_GENERATION: Dict[int, int] = {}


class _ThreadWatchdog:
    """Async-exception watchdog for one guarded item on one thread.

    A daemon :class:`threading.Timer` raises :class:`ItemTimeout` in
    the *working* thread via ``PyThreadState_SetAsyncExc`` (CPython),
    which interrupts pure-Python flow code at the next bytecode
    boundary — it cannot break out of a blocking C call, but the flow's
    long poles (optimiser sweeps, Monte-Carlo loops) are pure Python.

    Disarming is race-free against a concurrently firing timer:

    * :meth:`fire` checks the thread's generation token under
      :data:`_WATCHDOG_LOCK` before injecting, so once :meth:`disarm`
      has bumped the token (same lock) no further injection can start —
      not into the finished item, and not into the thread's next one;
    * an injection that *already* started (``fired`` seen true) may
      still be undelivered, so :meth:`disarm` clears it with
      ``SetAsyncExc(tid, NULL)``;
    * the delivery can even land *inside* :meth:`disarm` (async
      exceptions surface at any bytecode boundary) — the method absorbs
      it, finishes the bookkeeping, and returns normally.  Callers get
      the same guarantee from :func:`_disarm_quietly`.
    """

    def __init__(self, timeout_s: float, set_async_exc) -> None:
        self._set_async_exc = set_async_exc
        self._tid = threading.get_ident()
        with _WATCHDOG_LOCK:
            self._generation = _WATCHDOG_GENERATION.get(self._tid, 0) + 1
            _WATCHDOG_GENERATION[self._tid] = self._generation
        self._fired = False
        self._timer = threading.Timer(timeout_s, self.fire)
        self._timer.daemon = True
        self._timer.start()

    def fire(self) -> None:
        """Timer callback (watchdog thread): inject iff still armed."""
        import ctypes

        with _WATCHDOG_LOCK:
            if _WATCHDOG_GENERATION.get(self._tid) != self._generation:
                return  # disarmed (or superseded): stand down
            self._fired = True
            self._set_async_exc(
                ctypes.c_ulong(self._tid), ctypes.py_object(ItemTimeout)
            )

    def _clear_pending(self) -> None:
        import ctypes

        self._set_async_exc(ctypes.c_ulong(self._tid), None)

    def disarm(self) -> None:
        """Stand the watchdog down; never lets a late fire escape."""
        try:
            self._timer.cancel()
            with _WATCHDOG_LOCK:
                if _WATCHDOG_GENERATION.get(self._tid) == self._generation:
                    _WATCHDOG_GENERATION[self._tid] = self._generation + 1
                fired = self._fired
            if fired:
                # the work finished between the timer firing and the
                # exception being delivered — clear the still-pending
                # injection so it cannot surface in unrelated code
                self._clear_pending()
        except ItemTimeout:
            # the injection landed mid-disarm (async exceptions surface
            # at any bytecode boundary): it is consumed here; finish the
            # bookkeeping so nothing further can fire
            with _WATCHDOG_LOCK:
                if _WATCHDOG_GENERATION.get(self._tid) == self._generation:
                    _WATCHDOG_GENERATION[self._tid] = self._generation + 1
            self._clear_pending()


def _thread_timeout_guard(timeout_s: float):
    """Watchdog-timer guard for non-main threads and non-POSIX hosts.

    Returns a race-free disarm callable (see :class:`_ThreadWatchdog`).
    When ``PyThreadState_SetAsyncExc`` is missing (non-CPython
    runtimes) the guard warns explicitly instead of silently dropping
    the budget.
    """
    try:
        import ctypes

        set_async_exc = ctypes.pythonapi.PyThreadState_SetAsyncExc
    except (ImportError, AttributeError):
        warnings.warn(
            f"timeout_s={timeout_s:g} cannot be enforced in this thread: "
            "no SIGALRM (non-main thread or platform) and no "
            "PyThreadState_SetAsyncExc — the budget is not applied",
            RuntimeWarning,
            stacklevel=4,
        )
        return lambda: None

    return _ThreadWatchdog(timeout_s, set_async_exc).disarm


def _disarm_quietly(disarm: Callable[[], None]) -> None:
    """Disarm a timeout guard, absorbing a timeout that fires in the
    completion window.

    Both guards can deliver :class:`ItemTimeout` *during* disarm (a
    pending ``SIGALRM`` handler, or an async injection surfacing at a
    bytecode boundary inside the disarm body).  The item is already
    finished by then, so the stray exception must end here — letting it
    propagate would abort an inline batch or fail the worker's *next*
    item.
    """
    try:
        disarm()
    except ItemTimeout:
        pass


def _timeout_guard(timeout_s: Optional[float]):
    """Arm a wall-clock guard for one job; returns a disarm callable.

    On the main thread of a POSIX process (the ``jobs > 1`` worker
    case) the guard uses ``SIGALRM``/``setitimer``, which interrupts
    even blocking C calls.  Off the main thread — e.g. ``run_many``
    invoked from a service executor or any user thread — or where
    ``SIGALRM`` does not exist, it falls back to a watchdog timer that
    raises :class:`ItemTimeout` in the working thread.  The caller must
    invoke the returned disarm callable in a ``finally`` block.
    """
    if not timeout_s:
        return lambda: None
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):
        disarm = _sigalrm_guard(timeout_s)
        if disarm is not None:
            return disarm
    return _thread_timeout_guard(timeout_s)


def materialize(kind: str, payload) -> LogicNetwork:
    """Realise one :func:`_describe` description as a network (build
    the spec / load the BLIF / pass the network through)."""
    if kind == "network":
        return payload
    if kind == "spec":
        return payload.build()
    from repro.network.blif import load_blif

    return load_blif(payload)


def execute_one(
    kind: str,
    payload,
    config: FlowConfig,
    *,
    store: Optional["ArtifactStore"] = None,  # noqa: F821
    timeout_s: Optional[float] = None,
) -> tuple:
    """Run the flow on one described circuit, with error isolation.

    The single-item execution path shared by the :func:`run_many`
    workers and the async service (:mod:`repro.serve`).  Returns
    ``(FlowResult | None, error | None, runtime_s, cached)``.  Any
    circuit failure — a timeout included — becomes the error string
    instead of raising, so one bad circuit cannot take down a batch or
    a service worker; KeyboardInterrupt and other non-``Exception``
    exits still propagate so an inline batch can actually be aborted.
    """
    if timeout_s and config.resolved_stage_jobs() > 1:
        # The guard interrupts *this* thread; hung work in a stage
        # thread would survive the ItemTimeout and then be joined by
        # the pipeline's executor shutdown — stalling exactly the way
        # timeout_s exists to prevent.  A budgeted item therefore runs
        # its stages sequentially: enforceability beats parallelism.
        config = config.replace(stage_jobs=1)
    start = time.perf_counter()
    try:
        disarm = _timeout_guard(timeout_s)
        try:
            network = materialize(kind, payload)
            from repro.core.pipeline import Pipeline

            # time the flow only, not circuit build/load — keeps
            # per-circuit runtimes comparable with the historical
            # sequential tables
            start = time.perf_counter()
            run = Pipeline(config, store=store).run(network)
            cached = all(s.cached or s.skipped for s in run.stages)
            return (run.flow, None, time.perf_counter() - start, cached)
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            tb = traceback.format_exc()
            return (None, f"{detail}\n{tb}", time.perf_counter() - start, False)
        finally:
            _disarm_quietly(disarm)
    except ItemTimeout as exc:
        # async delivery can land on the handful of bytecodes between
        # the inner handlers and _disarm_quietly's guarded region; the
        # item effectively hit its budget, so record the normal timeout
        # failure instead of letting the stray exception abort the batch
        detail = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        return (None, detail, time.perf_counter() - start, False)


def mark_pool_worker() -> None:
    """Tag this process as a pool worker (see
    :data:`repro.core.config.POOL_WORKER_ENV`): ``stage_jobs=0`` (auto)
    then resolves to sequential stages, so a pool of N workers does not
    silently become N thread pools fighting for the same cores.  The
    environment variable (rather than a module flag) also reaches any
    process this worker might itself spawn."""
    os.environ[POOL_WORKER_ENV] = "1"


def _pool_worker_init() -> None:
    """`run_many`` worker-process initializer."""
    mark_pool_worker()


def _execute_job(job: tuple):
    """Worker entry point: :func:`execute_one` plus the batch index."""
    index, kind, payload, name, config, store, timeout_s = job
    result, error, runtime_s, cached = execute_one(
        kind, payload, config, store=store, timeout_s=timeout_s
    )
    return (index, result, error, runtime_s, cached)


def default_jobs() -> int:
    """A sensible worker count: schedulable parallelism minus one, ≥ 1."""
    return max(1, _available_cpus() - 1)


#: Dispatch orders run_many understands.
BATCH_ORDERS = ("cost", "fifo")


def run_many(
    circuits: Sequence[CircuitLike],
    config: Optional[FlowConfig] = None,
    *,
    configs: Optional[Sequence[FlowConfig]] = None,
    jobs: int = 1,
    per_circuit_seeds: bool = False,
    progress: Optional[ProgressCallback] = None,
    store: Optional["ArtifactStore"] = None,  # noqa: F821
    order: str = "cost",
    timeout_s: Optional[float] = None,
    stage_jobs: Optional[int] = None,
) -> BatchResult:
    """Run the synthesis flow on many circuits, optionally in parallel.

    Parameters
    ----------
    circuits:
        Networks, BLIF paths, or benchmark specs.
    config:
        Shared :class:`FlowConfig` (defaults to ``FlowConfig()``).
    configs:
        Optional per-circuit configs (same length as ``circuits``);
        overrides ``config``.
    jobs:
        Worker processes.  ``1`` runs inline in this process (still
        with error isolation); ``>1`` uses a ``ProcessPoolExecutor``.
    per_circuit_seeds:
        Re-seed each circuit with ``derive_seed(config.seed, name)`` so
        batch members decorrelate; off by default so a batch matches a
        sequential loop of ``run_flow`` calls exactly.
    progress:
        ``callback(done, total, item)`` fired as each circuit finishes.
        Callback exceptions are isolated (reported as a
        ``RuntimeWarning``) so one bad subscriber cannot abort the
        batch.
    store:
        Optional :class:`repro.store.ArtifactStore` shared by every
        worker.  Circuits whose (fingerprint, config) pair is already
        archived are served from disk without executing any synthesis
        stage (``BatchItem.cached``); cold circuits persist their
        artefacts for the next run.
    order:
        Dispatch order: ``"cost"`` (default) starts circuits
        largest-first by :func:`predicted_cost`, cutting wall-clock
        tail latency on heterogeneous suites; ``"fifo"`` keeps input
        order.  Results are bit-identical and input-ordered either way.
    timeout_s:
        Per-circuit wall-clock budget; a circuit that exceeds it
        becomes a failed :class:`BatchItem` instead of stalling the
        batch.  Enforced with ``SIGALRM`` on the main thread of a POSIX
        process (worker processes included) and with a watchdog timer
        raising in the working thread everywhere else, so the budget
        holds when ``run_many`` is driven from a service thread; where
        neither mechanism exists an explicit ``RuntimeWarning`` is
        emitted.
    stage_jobs:
        Override every item config's ``FlowConfig.stage_jobs`` (MA/MP
        stage-level threads inside each flow; see
        :mod:`repro.core.pipeline`).  ``None`` keeps the configs' own
        setting; the default ``stage_jobs=0`` (auto) already turns
        stage threads off inside pool workers, so ``jobs`` and
        ``stage_jobs`` compose without oversubscription.  Results are
        bit-identical at any setting.  Items carrying a ``timeout_s``
        budget always run their stages sequentially (a stage thread
        cannot be interrupted by the guard), so the budget stays
        enforceable.

    Returns
    -------
    BatchResult
        Per-circuit :class:`BatchItem` records in input order; failures
        carry tracebacks instead of aborting the batch.
    """
    base_config = config or FlowConfig()
    if configs is not None and len(configs) != len(circuits):
        raise BatchError(
            f"configs length {len(configs)} != circuits length {len(circuits)}"
        )
    if jobs < 1:
        raise BatchError(f"jobs must be >= 1, got {jobs}")
    if order not in BATCH_ORDERS:
        raise BatchError(f"order must be one of {BATCH_ORDERS}, got {order!r}")
    if timeout_s is not None and timeout_s <= 0:
        raise BatchError(f"timeout_s must be positive, got {timeout_s}")

    jobs_list: List[tuple] = []
    items: List[BatchItem] = []
    for index, circuit in enumerate(circuits):
        kind, payload, name = _describe(circuit)
        item_config = configs[index] if configs is not None else base_config
        if per_circuit_seeds:
            item_config = item_config.replace(seed=derive_seed(item_config.seed, name))
        if stage_jobs is not None and item_config.stage_jobs != stage_jobs:
            item_config = item_config.replace(stage_jobs=stage_jobs)
        jobs_list.append((index, kind, payload, name, item_config, store, timeout_s))
        items.append(BatchItem(index=index, name=name, config=item_config))

    if order == "cost":
        # stable sort: equal-cost circuits keep input order
        jobs_list.sort(key=lambda job: -predicted_cost(job[1], job[2]))

    total = len(jobs_list)
    started = time.perf_counter()

    def finish(outcome: tuple, done: int) -> None:
        index, result, error, runtime_s, cached = outcome
        item = items[index]
        item.result = result
        item.error = error
        item.runtime_s = runtime_s
        item.cached = cached
        if progress is not None:
            # one bad subscriber (e.g. a disconnected stream consumer)
            # must not abort a batch with workers still running
            try:
                progress(done, total, item)
            except Exception as exc:  # noqa: BLE001 — isolation again
                warnings.warn(
                    f"batch progress callback failed on {item.name!r} "
                    f"({type(exc).__name__}: {exc}); continuing the batch",
                    RuntimeWarning,
                    stacklevel=3,
                )

    if jobs == 1 or total <= 1:
        for done, job in enumerate(jobs_list, start=1):
            finish(_execute_job(job), done)
    else:
        workers = min(jobs, max(total, 1))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_pool_worker_init
        ) as pool:
            pending = {pool.submit(_execute_job, job): job for job in jobs_list}
            done = 0
            while pending:
                completed, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in completed:
                    job = pending.pop(future)
                    exc = future.exception()
                    done += 1
                    if exc is not None:
                        # pool-level failure (e.g. unpicklable payload,
                        # killed worker) — isolate it to this item too
                        finish(
                            (job[0], None, f"{type(exc).__name__}: {exc}", 0.0, False),
                            done,
                        )
                    else:
                        finish(future.result(), done)

    return BatchResult(items=items, jobs=jobs, runtime_s=time.perf_counter() - started)


# ----------------------------------------------------------------------
# config sweeps


@dataclass
class SweepPoint:
    """One grid point: the derived config and its per-circuit outcomes."""

    params: Dict[str, Any]
    config: FlowConfig
    items: List[BatchItem]

    @property
    def results(self) -> List[FlowResult]:
        return [item.result for item in self.items if item.ok]

    @property
    def n_ok(self) -> int:
        return sum(1 for item in self.items if item.ok)

    @property
    def n_cached(self) -> int:
        return sum(1 for item in self.items if item.cached)

    def as_batch(self) -> BatchResult:
        """This point's items viewed as a :class:`BatchResult` (for the
        report/registry helpers that consume batches)."""
        return BatchResult(
            items=self.items,
            jobs=1,
            runtime_s=sum(item.runtime_s for item in self.items),
        )


@dataclass
class SweepResult:
    """All grid points of one :func:`sweep`, in grid-expansion order."""

    base_config: FlowConfig
    grid: Dict[str, List[Any]]
    circuits: List[str]
    points: List[SweepPoint]
    jobs: int
    runtime_s: float

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def n_items(self) -> int:
        return sum(len(point.items) for point in self.points)

    @property
    def n_ok(self) -> int:
        return sum(point.n_ok for point in self.points)

    @property
    def n_cached(self) -> int:
        return sum(point.n_cached for point in self.points)

    def point(self, **params: Any) -> SweepPoint:
        """The grid point with exactly the given parameter values."""
        for candidate in self.points:
            if all(candidate.params.get(k) == v for k, v in params.items()):
                return candidate
        raise KeyError(f"no sweep point matching {params!r}")

    def manifest(self) -> Dict[str, Any]:
        """Plain-data record of the sweep: base config provenance, the
        grid, and per-point outcome counts (not the full flow records —
        those live in the run registry / report files)."""
        return {
            "kind": "sweep",
            "base_config": self.base_config.to_dict(),
            "grid": {k: list(v) for k, v in self.grid.items()},
            "circuits": list(self.circuits),
            "jobs": self.jobs,
            "runtime_s": self.runtime_s,
            "points": [
                {
                    "params": dict(point.params),
                    "n_ok": point.n_ok,
                    "n_failed": len(point.items) - point.n_ok,
                    "n_cached": point.n_cached,
                }
                for point in self.points
            ],
        }


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian expansion of a parameter grid, first key varying
    slowest (``itertools.product`` order, insertion-ordered keys)."""
    keys = list(grid)
    value_lists = [list(grid[k]) for k in keys]
    for key, values in zip(keys, value_lists):
        if not values:
            raise BatchError(f"sweep grid parameter {key!r} has no values")
    return [dict(zip(keys, combo)) for combo in itertools.product(*value_lists)]


#: Sweep-grid key prefix addressing one optimizer-strategy parameter
#: (or reserved budget key) instead of a whole ``FlowConfig`` field.
OPTIMIZER_PARAM_PREFIX = "optimizer_params."


def point_config(base: FlowConfig, params: Mapping[str, Any]) -> FlowConfig:
    """One sweep point's config: ``base`` with the grid point applied.

    Plain keys are :class:`FlowConfig` fields (``optimizer`` included,
    so ``{"optimizer": ["pairwise", "anneal"]}`` sweeps strategies);
    ``optimizer_params.<param>`` keys merge into the base config's
    ``optimizer_params`` dict, so a grid can sweep one strategy knob
    (or budget key) without flattening the others.  A point that
    *switches* strategy keeps only the shared budget keys from the base
    params — one strategy's knobs never leak into another, which is
    what lets a strategy grid run over a base config tuned for its
    default strategy.  Unknown fields and invalid strategy params
    surface as :class:`ConfigError` from the config's own validation.
    """
    from repro.optimize import budget_only_params

    direct: Dict[str, Any] = {}
    nested: Dict[str, Any] = {}
    for key, value in params.items():
        if key.startswith(OPTIMIZER_PARAM_PREFIX):
            param = key[len(OPTIMIZER_PARAM_PREFIX):]
            if not param or "." in param:
                # ConfigError, not BatchError: a bad grid key is a config
                # mistake and the CLI turns ConfigError into a clean
                # exit-2 message instead of a traceback
                raise ConfigError(
                    f"bad sweep grid key {key!r} "
                    f"(expected {OPTIMIZER_PARAM_PREFIX}<param>)"
                )
            nested[param] = value
        elif "." in key:
            raise ConfigError(
                f"sweep grid key {key!r} is not sweepable (use a FlowConfig "
                f"field name or {OPTIMIZER_PARAM_PREFIX}<param>)"
            )
        else:
            direct[key] = value
    if (
        direct.get("optimizer") not in (None, base.optimizer)
        and "optimizer_params" not in direct
        and base.optimizer_params
    ):
        direct["optimizer_params"] = budget_only_params(base.optimizer_params)
    config = base.replace(**direct) if direct else base
    if nested:
        merged = dict(config.optimizer_params or {})
        merged.update(nested)
        config = config.replace(optimizer_params=merged)
    return config


def sweep(
    circuits: Sequence[CircuitLike],
    grid: Mapping[str, Sequence[Any]],
    config: Optional[FlowConfig] = None,
    *,
    jobs: int = 1,
    per_circuit_seeds: bool = False,
    progress: Optional[ProgressCallback] = None,
    store: Optional["ArtifactStore"] = None,  # noqa: F821
    order: str = "cost",
    timeout_s: Optional[float] = None,
    stage_jobs: Optional[int] = None,
) -> SweepResult:
    """Expand one base config over parameter grids and run the batch.

    ``grid`` maps :class:`FlowConfig` field names to the values to try
    (e.g. ``{"n_vectors": [1024, 4096], "timing_slack_fraction":
    [0.7, 0.85]}``); every circuit runs at every grid point, as one
    flat :func:`run_many` batch so workers stay busy across points.
    Optimizer strategies sweep like any other field
    (``{"optimizer": ["pairwise", "anneal"]}``), and
    ``optimizer_params.<param>`` keys sweep one strategy knob or budget
    key (``{"optimizer_params.max_evaluations": [32, 128]}``) — see
    :func:`point_config`.  Strategy grid points share the persistent
    prepared-network and probability artefacts (the strategy identity
    is deliberately outside :meth:`FlowConfig.cache_key`), while the
    per-strategy assignments and flow records stay separate.
    With a ``store``, grid points that only differ in downstream knobs
    share the persistent prepared-network and probability artefacts —
    the expensive prepare work happens once for the whole sweep — and
    re-running a sweep serves unchanged points entirely from disk.

    Returns a :class:`SweepResult` whose :meth:`~SweepResult.manifest`
    records the grid and per-point outcomes; archive it with
    :meth:`repro.store.RunStore.record_sweep`.
    """
    base_config = config or FlowConfig()
    if not grid:
        raise BatchError("sweep grid must name at least one FlowConfig parameter")
    param_sets = expand_grid(grid)
    point_configs = [point_config(base_config, params) for params in param_sets]

    circuit_list = list(circuits)
    if not circuit_list:
        raise BatchError("sweep needs at least one circuit")
    flat_circuits: List[CircuitLike] = []
    flat_configs: List[FlowConfig] = []
    for config_at_point in point_configs:
        flat_circuits.extend(circuit_list)
        flat_configs.extend([config_at_point] * len(circuit_list))

    started = time.perf_counter()
    batch = run_many(
        flat_circuits,
        base_config,
        configs=flat_configs,
        jobs=jobs,
        per_circuit_seeds=per_circuit_seeds,
        progress=progress,
        store=store,
        order=order,
        timeout_s=timeout_s,
        stage_jobs=stage_jobs,
    )

    points: List[SweepPoint] = []
    n = len(circuit_list)
    for i, (params, config_at_point) in enumerate(zip(param_sets, point_configs)):
        points.append(
            SweepPoint(
                params=params,
                config=config_at_point,
                items=batch.items[i * n : (i + 1) * n],
            )
        )
    return SweepResult(
        base_config=base_config,
        grid={k: list(v) for k, v in grid.items()},
        circuits=[item.name for item in batch.items[:n]],
        points=points,
        jobs=jobs,
        runtime_s=time.perf_counter() - started,
    )


def format_sweep(result: SweepResult) -> str:
    """Per-point summary table of a sweep."""
    param_names = list(result.grid)
    header = (
        "  ".join(f"{name:>14}" for name in param_names)
        + f"  {'ok':>5} {'cached':>6} {'%Area':>7} {'%Pwr':>7}"
    )
    lines = [
        f"Sweep over {result.n_points} point(s) x {len(result.circuits)} circuit(s)",
        "=" * len(header),
        header,
        "-" * len(header),
    ]
    for point in result.points:
        flows = point.results
        if flows:
            area = sum(f.area_penalty_percent for f in flows) / len(flows)
            power = sum(f.power_savings_percent for f in flows) / len(flows)
            area_s, power_s = f"{area:>7.1f}", f"{power:>7.1f}"
        else:
            area_s = power_s = f"{'n/a':>7}"
        lines.append(
            "  ".join(f"{str(point.params[name]):>14}" for name in param_names)
            + f"  {point.n_ok:>3}/{len(point.items):<1} {point.n_cached:>6} "
            + f"{area_s} {power_s}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{result.n_ok}/{result.n_items} runs ok, {result.n_cached} store-served, "
        f"{result.jobs} job(s), {result.runtime_s:.1f}s wall"
    )
    return "\n".join(lines)


def format_batch(batch: BatchResult, title: str = "Batch synthesis") -> str:
    """Human-readable batch summary: the paper-layout table for the
    successes, then one line per failure."""
    from repro.core.flow import format_table

    lines = [format_table(batch.rows(), title)]
    if batch.failures:
        lines.append("")
        lines.append(f"failed circuits ({batch.n_failed}/{len(batch.items)}):")
        for item in batch.failures:
            first = (item.error or "unknown error").splitlines()[0]
            lines.append(f"  {item.name:<16} {first}")
    lines.append("")
    cached = f"{batch.n_cached} store-served, " if batch.n_cached else ""
    lines.append(
        f"{batch.n_ok}/{len(batch.items)} circuits ok, {cached}"
        f"{batch.jobs} job(s), {batch.runtime_s:.1f}s wall"
    )
    return "\n".join(lines)
