"""Staged, composable synthesis pipeline.

The Figure 6 flow, decomposed into named stages that run in a fixed
order, each producing an inspectable :class:`StageResult`:

======================  =================================================
stage                   produces
======================  =================================================
``prepare``             the cleaned AOI network (minimise / strash / AOI)
``sequential``          per-input signal probabilities (latch fixed point)
``evaluator``           the shared :class:`PhaseEvaluator`
``optimize_ma``         the minimum-area baseline assignment
``optimize_mp``         the minimum-power assignment, via the
                        :mod:`repro.optimize` strategy registry
                        (``config.optimizer``; default: the paper's
                        ``pairwise`` heuristic, bit-identical)
``transform_map``       phase transform + technology mapping per variant
``resize``              transistor resizing (timed flow only)
``measure``             Monte-Carlo power measurement → ``FlowResult``
======================  =================================================

Stages can be **skipped** (``optimize_mp`` skipped ⇒ the MP variant
reuses the MA assignment; ``resize`` auto-skips in the untimed flow) or
**overridden** with a custom callable, which is how experiments plug in
alternative optimisers without forking the flow.

A :class:`PipelineCache` shares the two expensive artefacts — the
prepared network and the :class:`PhaseEvaluator` — across runs that
only differ in downstream knobs (timed vs untimed, resizing targets,
measurement scales), which is the common shape of a parameter sweep.

On top of the in-process cache, an optional persistent
:class:`repro.store.ArtifactStore` (``Pipeline(store=...)``) backs the
misses with disk entries keyed by the network's structural
:meth:`~repro.network.netlist.LogicNetwork.fingerprint` plus the config
knobs that shape each artefact.  A fully warm store short-circuits the
entire run: the archived :class:`FlowResult` is returned with every
stage marked ``cached`` and **no** stage callable — default, skipped or
overridden — executes.  Overrides therefore do not participate in store
keys; the store refuses to *write* while overrides are installed (so a
custom optimiser can never poison shared entries), but cached reads
win.  Pass ``store=None`` (the default) to force overridden stages to
recompute.

**Concurrency contract** (``FlowConfig.stage_jobs``): the MA and MP
variants are independent once the shared evaluator exists, and the
pipeline exploits that with threads when ``stage_jobs`` resolves to
more than one —

======================  =================================================
stage                   parallel behaviour with ``stage_jobs > 1``
======================  =================================================
``prepare``             sequential (single shared artefact)
``sequential``          sequential (single shared artefact)
``evaluator``           sequential (single shared artefact)
``optimize_ma``         sequential (MP's search seeds from its result)
``optimize_mp``         overlapped with the MA variant's transform+map
                        (the only work independent of the MP search)
``transform_map``       one thread per variant
``resize``              one thread per variant
``measure``             one thread per variant
======================  =================================================

Results are **bit-identical** to ``stage_jobs=1``: every stochastic
component takes an explicit seed per call (no shared RNG), variant
threads touch disjoint builds, the shared inputs (prepared AOI,
evaluator masks) are only read, and the two shared mutable caches the
variants can touch — the library's cell cache and the
:class:`PipelineCache` — use atomic first-writer-wins inserts / a
lock.  ``stage_jobs`` is therefore excluded
from :meth:`FlowConfig.result_key` — parallelism never changes store
identity.  The default (``stage_jobs=0``, auto) uses threads on a
multi-core host but stays sequential inside a
:func:`repro.core.batch.run_many` / service worker process, whose pool
already owns the cores; items carrying a per-item ``timeout_s`` budget
are likewise forced sequential by ``execute_one`` (the guard cannot
interrupt a stage thread).  Overrides disable the ``optimize_mp``
overlap (a custom stage may mutate the context) but keep the
per-variant fan-out of the default stages.

The legacy :func:`repro.core.flow.run_flow` is a thin wrapper over
``Pipeline().run(...)`` and stays bit-for-bit compatible.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.network.duplication import DominoImplementation, phase_transform
from repro.network.netlist import LogicNetwork
from repro.network.ops import cleanup, to_aoi
from repro.phase import PhaseAssignment
from repro.core.config import FlowConfig
from repro.core.min_area import minimize_area
from repro.domino.gates import DominoCellLibrary
from repro.domino.mapper import MappedDesign, map_implementation, simulate_mapped_power
from repro.domino.timing import (
    ResizeResult,
    analyze_timing,
    default_timing_target,
    resize_to_meet_timing,
)
from repro.power.estimator import DominoPowerModel, PhaseEvaluator
from repro.seq.partition import sequential_probabilities

#: Canonical stage order.
STAGE_NAMES: Tuple[str, ...] = (
    "prepare",
    "sequential",
    "evaluator",
    "optimize_ma",
    "optimize_mp",
    "transform_map",
    "resize",
    "measure",
)

#: Stages that may be skipped without leaving the flow unrunnable.
SKIPPABLE_STAGES = frozenset(
    {"sequential", "optimize_ma", "optimize_mp", "resize", "measure"}
)


@dataclass
class StageResult:
    """Outcome of one pipeline stage."""

    name: str
    output: Any
    runtime_s: float
    skipped: bool = False
    cached: bool = False

    def __repr__(self) -> str:  # compact: outputs can be whole networks
        flags = "".join(
            f" [{f}]" for f, on in (("skipped", self.skipped), ("cached", self.cached)) if on
        )
        return f"StageResult({self.name!r}, {self.runtime_s:.3f}s{flags})"


@dataclass
class VariantBuild:
    """Per-variant (MA / MP) synthesis artefacts accumulated across the
    transform/resize/measure stages."""

    label: str
    assignment: PhaseAssignment
    estimated_power: float
    implementation: Optional[DominoImplementation] = None
    design: Optional[MappedDesign] = None
    resize: Optional[ResizeResult] = None


@dataclass
class PipelineContext:
    """Mutable state threaded through the stages.

    Stage callables receive the context and return their output; the
    pipeline stores the output both in the matching context slot and in
    the run's :class:`StageResult` list, so overrides only need to
    compute a value, not know where it lives.
    """

    network: LogicNetwork
    config: FlowConfig
    library: DominoCellLibrary
    model: DominoPowerModel
    aoi: Optional[LogicNetwork] = None
    input_probs: Optional[Dict[str, float]] = None
    evaluator: Optional[PhaseEvaluator] = None
    ma_result: Optional[Any] = None  # AreaResult
    mp_result: Optional[Any] = None  # OptimizationResult
    builds: Dict[str, VariantBuild] = field(default_factory=dict)
    resizes: Dict[str, Optional[ResizeResult]] = field(default_factory=dict)
    flow: Optional["FlowResult"] = None  # noqa: F821  (set by measure)
    #: stage-level thread pool (``None`` ⇒ sequential stages)
    executor: Optional[ThreadPoolExecutor] = field(default=None, repr=False)
    #: in-flight MA variant build overlapping ``optimize_mp``
    ma_prebuild: Optional[Future] = field(default=None, repr=False)


class PipelineCache:
    """Within-process cache for the expensive shared artefacts.

    Entries are keyed by the *identity* of the source network plus the
    config knobs that shape the artefact; a strong reference to the
    source network is kept so a recycled ``id()`` can never alias a
    different circuit.

    Thread-safe: one cache may back pipelines running concurrently
    (service threads, ``stage_jobs`` workers), so lookups, inserts and
    the hit/miss counters are guarded by a lock — an unlocked
    read-modify-write would drop counts or, worse, expose a dict mid
    resize to a concurrent reader.
    """

    def __init__(self) -> None:
        self._entries: Dict[tuple, Tuple[LogicNetwork, Any]] = {}
        self._lock = Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, kind: str, network: LogicNetwork, key: tuple) -> Optional[Any]:
        with self._lock:
            entry = self._entries.get((kind, id(network), key))
            if entry is None or entry[0] is not network:
                self.misses += 1
                return None
            self.hits += 1
            return entry[1]

    def put(self, kind: str, network: LogicNetwork, key: tuple, value: Any) -> None:
        with self._lock:
            self._entries[(kind, id(network), key)] = (network, value)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


@dataclass
class PipelineResult:
    """Everything one pipeline run produced."""

    flow: Optional["FlowResult"]  # noqa: F821
    stages: List[StageResult]
    context: PipelineContext

    def stage(self, name: str) -> StageResult:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage {name!r} in this run")

    @property
    def stage_names(self) -> List[str]:
        return [s.name for s in self.stages]

    @property
    def total_runtime_s(self) -> float:
        return sum(s.runtime_s for s in self.stages)


# ----------------------------------------------------------------------
# default stage implementations


def _stage_prepare(ctx: PipelineContext) -> LogicNetwork:
    prepared = ctx.network
    if ctx.config.minimize:
        from repro.network.minimize import minimize_network

        prepared = minimize_network(prepared)
    if ctx.config.strash:
        from repro.network.strash import structural_hash

        prepared = structural_hash(prepared).network
    return cleanup(to_aoi(prepared))


def _stage_sequential(ctx: PipelineContext) -> Dict[str, float]:
    config = ctx.config
    aoi = ctx.aoi
    if config.input_probs is None:
        input_probs: Dict[str, float] = {
            name: config.input_probability for name in aoi.inputs
        }
    else:
        input_probs = dict(config.input_probs)
    if not aoi.is_combinational:
        seq_probs = sequential_probabilities(
            aoi, input_probs=input_probs, method=config.power_method, seed=config.seed
        )
        input_probs = dict(input_probs)
        input_probs.update(seq_probs.latch_probabilities)
    return input_probs


def _stage_evaluator(ctx: PipelineContext) -> PhaseEvaluator:
    config = ctx.config
    return PhaseEvaluator(
        ctx.aoi,
        input_probs=ctx.input_probs,
        model=ctx.model,
        method=config.power_method,
        seed=config.seed,
        n_vectors=config.n_vectors,
    )


def _stage_optimize_ma(ctx: PipelineContext):
    return minimize_area(
        ctx.evaluator,
        exhaustive_limit=ctx.config.area_exhaustive_limit,
        seed=ctx.config.seed,
    )


def _stage_optimize_mp(ctx: PipelineContext):
    """The MP search, through the :mod:`repro.optimize` registry.

    The strategy comes from ``config.optimizer`` (+ params/budget from
    ``config.optimizer_params``); the default ``pairwise`` strategy
    with its config-mapped ``exhaustive_limit``/``max_pairs`` params
    reproduces the historical ``minimize_power(method="auto")`` call
    bit for bit.
    """
    initial = ctx.ma_result.assignment if ctx.ma_result is not None else None
    strategy, budget = ctx.config.resolved_optimizer()
    return strategy.optimize(
        ctx.evaluator, initial=initial, budget=budget, seed=ctx.config.seed
    )


def _variant_assignments(ctx: PipelineContext) -> List[Tuple[str, PhaseAssignment, float]]:
    """(label, assignment, estimated power) for the MA and MP variants,
    honouring skipped optimisation stages."""
    evaluator = ctx.evaluator
    if ctx.ma_result is not None:
        ma_assignment = ctx.ma_result.assignment
    else:
        ma_assignment = PhaseAssignment.all_positive(ctx.aoi.output_names())
    if ctx.mp_result is not None:
        mp_assignment = ctx.mp_result.assignment
        mp_power = ctx.mp_result.power
    else:
        mp_assignment = ma_assignment
        mp_power = evaluator.power(mp_assignment)
    return [
        ("MA", ma_assignment, evaluator.power(ma_assignment)),
        ("MP", mp_assignment, mp_power),
    ]


def _run_stage_units(ctx: PipelineContext, thunks: List[Callable[[], Any]]) -> List[Any]:
    """Run one stage's independent per-variant units, threaded when the
    context carries an executor.  Output order always matches input
    order, so parallel scheduling can never reorder results."""
    if ctx.executor is None or len(thunks) <= 1:
        return [thunk() for thunk in thunks]
    futures = [ctx.executor.submit(thunk) for thunk in thunks]
    return [future.result() for future in futures]


def _build_variant(
    ctx: PipelineContext,
    label: str,
    assignment: PhaseAssignment,
    est_power: Optional[float] = None,
) -> VariantBuild:
    """Transform + map one variant (the per-variant unit of
    ``transform_map``, also submitted early as the ``optimize_mp``
    overlap).  Reads the shared AOI/evaluator only."""
    if est_power is None:
        est_power = ctx.evaluator.power(assignment)
    impl = phase_transform(ctx.aoi, assignment)
    design = map_implementation(impl, ctx.library)
    return VariantBuild(
        label=label,
        assignment=assignment,
        estimated_power=est_power,
        implementation=impl,
        design=design,
    )


def _submit_ma_lookahead(ctx: PipelineContext) -> None:
    """Start the MA variant's transform+map while ``optimize_mp`` runs.

    The MA build depends only on the (already final) MA assignment and
    the read-only AOI/evaluator, so it is the one piece of downstream
    work independent of the MP search — overlapping the two is what
    parallelises the ``optimize_ma``/``optimize_mp`` region without
    breaking MP's dependence on MA's assignment as its initial point.
    """
    if ctx.executor is None or ctx.ma_prebuild is not None:
        return
    if ctx.ma_result is not None:
        assignment = ctx.ma_result.assignment
    else:
        assignment = PhaseAssignment.all_positive(ctx.aoi.output_names())
    ctx.ma_prebuild = ctx.executor.submit(_build_variant, ctx, "MA", assignment)


def _stage_transform_map(ctx: PipelineContext) -> Dict[str, VariantBuild]:
    variants = _variant_assignments(ctx)
    prebuild, ctx.ma_prebuild = ctx.ma_prebuild, None
    pending = [
        (label, assignment, est_power)
        for label, assignment, est_power in variants
        if not (prebuild is not None and label == "MA")
    ]
    computed = _run_stage_units(
        ctx,
        [
            lambda l=label, a=assignment, e=est_power: _build_variant(ctx, l, a, e)
            for label, assignment, est_power in pending
        ],
    )
    by_label = {label: build for (label, _, _), build in zip(pending, computed)}
    builds: Dict[str, VariantBuild] = {}
    for label, assignment, est_power in variants:
        build = by_label.get(label)
        if build is None:
            build = prebuild.result()
            if build.assignment != assignment:  # stale lookahead: recompute
                build = _build_variant(ctx, label, assignment, est_power)
        builds[label] = build
    return builds


def _stage_resize(ctx: PipelineContext) -> Dict[str, Optional[ResizeResult]]:
    labels = list(ctx.builds)

    def _resize_one(build: VariantBuild) -> ResizeResult:
        target = default_timing_target(build.design, ctx.config.timing_slack_fraction)
        result = resize_to_meet_timing(build.design, target)
        build.resize = result
        return result

    results = _run_stage_units(
        ctx, [lambda b=ctx.builds[label]: _resize_one(b) for label in labels]
    )
    return dict(zip(labels, results))


def _stage_measure(ctx: PipelineContext):
    from repro.core.flow import FlowResult, SynthesisVariant

    config = ctx.config
    labels = list(ctx.builds)

    def _measure_one(build: VariantBuild) -> tuple:
        timing = analyze_timing(build.design)
        sim = simulate_mapped_power(
            build.design,
            input_probs=ctx.input_probs,
            n_vectors=config.n_vectors,
            seed=config.seed,
            current_scale=config.current_scale,
        )
        return timing, sim

    measured = _run_stage_units(
        ctx, [lambda b=ctx.builds[label]: _measure_one(b) for label in labels]
    )
    variants: Dict[str, SynthesisVariant] = {}
    for label, (timing, sim) in zip(labels, measured):
        build = ctx.builds[label]
        variants[label] = SynthesisVariant(
            label=label,
            assignment=build.assignment,
            implementation=build.implementation,
            design=build.design,
            size=build.design.standard_cell_count(),
            power_ma=sim["current_ma"],
            estimated_power=build.estimated_power,
            resize=build.resize,
            critical_delay=timing.critical_delay,
        )
    return FlowResult(
        name=ctx.network.name,
        n_inputs=len(ctx.aoi.inputs),
        n_outputs=len(ctx.aoi.outputs),
        ma=variants["MA"],
        mp=variants["MP"],
        timed=config.timed,
        probability_method=ctx.evaluator.probability_result.method,
    )


#: stage name → (default implementation, context slot).
_STAGE_TABLE: Dict[str, Tuple[Callable[[PipelineContext], Any], str]] = {
    "prepare": (_stage_prepare, "aoi"),
    "sequential": (_stage_sequential, "input_probs"),
    "evaluator": (_stage_evaluator, "evaluator"),
    "optimize_ma": (_stage_optimize_ma, "ma_result"),
    "optimize_mp": (_stage_optimize_mp, "mp_result"),
    "transform_map": (_stage_transform_map, "builds"),
    "resize": (_stage_resize, "resizes"),
    "measure": (_stage_measure, "flow"),
}


class Pipeline:
    """Composable runner for the synthesis flow.

    Parameters
    ----------
    config:
        Default :class:`FlowConfig` for :meth:`run` (a per-call config
        overrides it).
    skip:
        Stage names to skip.  Only ``sequential``, ``optimize_ma``,
        ``optimize_mp``, ``resize`` and ``measure`` are skippable — the
        rest are structural.  ``resize`` additionally auto-skips in the
        untimed flow.
    overrides:
        Mapping of stage name → ``callable(context) -> output``; the
        returned output is stored exactly where the default stage's
        would be.
    cache:
        Optional :class:`PipelineCache` shared across runs to reuse the
        prepared network and :class:`PhaseEvaluator`.
    store:
        Optional persistent :class:`repro.store.ArtifactStore`.  Misses
        of the in-process cache fall back to disk entries keyed by the
        network fingerprint + config; executed stages write their
        artefacts back (unless overrides are installed).  A stored
        flow record for the exact (fingerprint, config, skip) triple
        short-circuits the whole run.
    """

    def __init__(
        self,
        config: Optional[FlowConfig] = None,
        *,
        skip: Tuple[str, ...] = (),
        overrides: Optional[Mapping[str, Callable[[PipelineContext], Any]]] = None,
        cache: Optional[PipelineCache] = None,
        store: Optional["ArtifactStore"] = None,  # noqa: F821
    ) -> None:
        self.config = config or FlowConfig()
        self.cache = cache
        self.store = store
        unknown = sorted(set(skip) - set(STAGE_NAMES))
        if unknown:
            raise ConfigError(f"unknown stage(s) in skip: {', '.join(unknown)}")
        not_skippable = sorted(set(skip) - SKIPPABLE_STAGES)
        if not_skippable:
            raise ConfigError(
                f"stage(s) cannot be skipped: {', '.join(not_skippable)} "
                f"(skippable: {', '.join(sorted(SKIPPABLE_STAGES))})"
            )
        self.skip = frozenset(skip)
        overrides = dict(overrides or {})
        unknown = sorted(set(overrides) - set(STAGE_NAMES))
        if unknown:
            raise ConfigError(f"unknown stage(s) in overrides: {', '.join(unknown)}")
        for name, fn in overrides.items():
            if not callable(fn):
                raise ConfigError(f"override for stage {name!r} is not callable")
        self.overrides = overrides

    @property
    def stage_names(self) -> Tuple[str, ...]:
        return STAGE_NAMES

    # ------------------------------------------------------------------

    def _cached_stage(
        self, name: str, ctx: PipelineContext
    ) -> Tuple[Optional[Any], Optional[tuple]]:
        """(cached value, cache key) for cacheable stages; overridden
        stages are never cached (their output may depend on anything)."""
        if self.cache is None or name in self.overrides:
            return None, None
        config = ctx.config
        if name == "prepare":
            key = (config.minimize, config.strash)
        elif name == "evaluator":
            # an overridden prepare/sequential stage changes the AOI /
            # probabilities the evaluator is built from in ways the
            # config key can't see — never share those across pipelines
            if {"prepare", "sequential"} & set(self.overrides):
                return None, None
            key = config.cache_key() + ("sequential" in self.skip,)
        else:
            return None, None
        return self.cache.get(name, ctx.network, key), key

    # ------------------------------------------------------------------
    # persistent store integration

    #: stages with a persistent artefact (``resize``/``transform_map``
    #: outputs hold mapped designs and are cheap relative to what feeds
    #: them; ``evaluator`` holds live BDDs and cannot leave the process).
    STORE_STAGES = ("prepare", "sequential", "optimize_ma", "optimize_mp", "measure")

    _STORE_KIND = {
        "prepare": "prepare",
        "sequential": "probs",
        "optimize_ma": "assign_ma",
        "optimize_mp": "assign_mp",
        "measure": "flow",
    }

    def _store_key(self, name: str, config: FlowConfig) -> tuple:
        """Config key of one stage's persistent artefact: exactly the
        knobs (and skip flags) that can change the stage's output for a
        fixed source network."""
        if name == "prepare":
            return (config.minimize, config.strash)
        if name == "sequential":
            probs = (
                None
                if config.input_probs is None
                else tuple(sorted(config.input_probs.items()))
            )
            return (
                config.minimize,
                config.strash,
                config.input_probability,
                probs,
                config.power_method,
                config.seed,
            )
        if name == "optimize_ma":
            return config.cache_key() + (
                "sequential" in self.skip,
                config.area_exhaustive_limit,
            )
        if name == "optimize_mp":
            # optimizer_key() keeps one strategy's assignment from ever
            # being served to another (no cross-strategy store hits)
            return config.cache_key() + (
                "sequential" in self.skip,
                "optimize_ma" in self.skip,
                config.area_exhaustive_limit,
                config.power_exhaustive_limit,
                config.max_pairs,
            ) + config.optimizer_key()
        if name == "measure":
            return config.result_key() + (tuple(sorted(self.skip)),)
        raise KeyError(name)

    def _store_get(self, name: str, fingerprint: str, config: FlowConfig):
        """Decoded artefact from the persistent store, or ``None``."""
        from repro.store.serialize import (
            StoreError,
            assignment_from_dict,
            network_from_dict,
        )

        payload = self.store.get(
            self._STORE_KIND[name], fingerprint, self._store_key(name, config)
        )
        if payload is None:
            return None
        try:
            if name == "prepare":
                return network_from_dict(payload)
            if name == "sequential":
                return {str(k): float(v) for k, v in payload["input_probs"].items()}
            if name == "optimize_ma":
                from repro.core.min_area import AreaResult

                return AreaResult(
                    assignment=assignment_from_dict(payload["assignment"]),
                    area=int(payload["area"]),
                    method=str(payload["method"]),
                    evaluations=int(payload["evaluations"]),
                )
            if name == "optimize_mp":
                from repro.core.optimizer import OptimizationResult

                strategy = payload.get("strategy")
                return OptimizationResult(
                    assignment=assignment_from_dict(payload["assignment"]),
                    power=float(payload["power"]),
                    initial_power=float(payload["initial_power"]),
                    method=str(payload["method"]),
                    evaluations=int(payload["evaluations"]),
                    strategy=None if strategy is None else str(strategy),
                )
            if name == "measure":
                from repro.report import flow_result_from_dict

                return flow_result_from_dict(payload)
        except (StoreError, KeyError, TypeError, ValueError, AttributeError):
            return None  # corrupted payload: recompute and overwrite
        raise KeyError(name)

    def _store_put(self, name: str, fingerprint: str, config: FlowConfig, output: Any) -> None:
        """Persist one executed stage's artefact (no-op with overrides
        installed: an overridden stage upstream may have changed what
        this output means, and shared entries must stay trustworthy)."""
        from repro.store.serialize import assignment_to_dict, network_to_dict

        if name == "prepare":
            payload = network_to_dict(output)
        elif name == "sequential":
            payload = {"input_probs": dict(output)}
        elif name in ("optimize_ma", "optimize_mp"):
            payload = {
                "assignment": assignment_to_dict(output.assignment),
                "method": output.method,
                "evaluations": output.evaluations,
            }
            if name == "optimize_ma":
                payload["area"] = output.area
            else:
                payload["power"] = output.power
                payload["initial_power"] = output.initial_power
                payload["strategy"] = getattr(output, "strategy", None)
        elif name == "measure":
            from repro.report import flow_result_to_dict

            payload = flow_result_to_dict(output)
        else:
            return
        self.store.put(
            self._STORE_KIND[name], fingerprint, self._store_key(name, config), payload
        )

    def cached_flow(
        self, network: LogicNetwork, config: Optional[FlowConfig] = None
    ) -> Optional["FlowResult"]:  # noqa: F821
        """The archived :class:`FlowResult` this pipeline would
        short-circuit to for ``network``, or ``None``.

        A pure store probe — nothing executes and nothing is written —
        used by callers that need to know *before* scheduling work
        whether a run would be served warm (the async service's
        submit-time dedup).  Always ``None`` without a store, when
        ``measure`` is skipped, or when the optimizer carries a
        wall-clock budget (see
        :meth:`FlowConfig.optimizer_reproducible`).
        """
        if self.store is None or "measure" in self.skip:
            return None
        config = config or self.config
        config.validate()
        if not config.optimizer_reproducible():
            return None
        return self._store_get("measure", network.fingerprint(), config)

    def _short_circuit(
        self, ctx: PipelineContext, flow: "FlowResult"  # noqa: F821
    ) -> PipelineResult:
        """A whole-run store hit: every stage reports cached, nothing ran."""
        ctx.flow = flow
        stages = [
            StageResult(
                name=name,
                output=flow if name == "measure" else None,
                runtime_s=0.0,
                skipped=name in self.skip or (name == "resize" and not ctx.config.timed),
                cached=True,
            )
            for name in STAGE_NAMES
        ]
        return PipelineResult(flow=flow, stages=stages, context=ctx)

    def run(
        self, network: LogicNetwork, config: Optional[FlowConfig] = None
    ) -> PipelineResult:
        """Execute the stages on one circuit and return every artefact."""
        config = config or self.config
        config.validate()
        library = config.resolved_library()
        model = config.resolved_model()
        ctx = PipelineContext(
            network=network, config=config, library=library, model=model
        )
        fingerprint = network.fingerprint() if self.store is not None else None
        # a wall-clock optimizer budget makes the MP search machine- and
        # load-dependent: its assignment and flow record are neither
        # served from nor written to the persistent store (the
        # strategy-independent prepare/probs/MA artefacts still are)
        reproducible = config.optimizer_reproducible()
        if fingerprint is not None and "measure" not in self.skip and reproducible:
            flow = self._store_get("measure", fingerprint, config)
            if flow is not None:
                return self._short_circuit(ctx, flow)
        store_writes = self.store is not None and not self.overrides
        stage_jobs = config.resolved_stage_jobs()
        if stage_jobs > 1:
            # threads spawn lazily on first submit, so an all-cached or
            # short run never actually pays for them
            ctx.executor = ThreadPoolExecutor(
                max_workers=stage_jobs, thread_name_prefix="repro-stage"
            )
        stages: List[StageResult] = []
        try:
            for name in STAGE_NAMES:
                fn, slot = _STAGE_TABLE[name]
                auto_skip = name == "resize" and not config.timed
                if name in self.skip or auto_skip:
                    stages.append(
                        StageResult(name=name, output=None, runtime_s=0.0, skipped=True)
                    )
                    if name == "sequential":
                        # downstream stages still need input probabilities
                        ctx.input_probs = (
                            dict(config.input_probs)
                            if config.input_probs is not None
                            else {n: config.input_probability for n in ctx.aoi.inputs}
                        )
                    continue
                cached, key = self._cached_stage(name, ctx)
                start = time.perf_counter()
                from_store = False
                # "measure" was already probed by the whole-run short circuit
                if (
                    cached is None
                    and fingerprint is not None
                    and name in self._STORE_KIND
                    and name != "measure"
                    and (reproducible or name != "optimize_mp")
                ):
                    cached = self._store_get(name, fingerprint, config)
                    from_store = cached is not None
                if cached is not None:
                    output = cached
                    if from_store and key is not None:
                        # warm the in-process cache too, for later runs in
                        # this process that share the same network object
                        self.cache.put(name, ctx.network, key, output)
                else:
                    if name == "optimize_mp" and not self.overrides:
                        # overlap the MA variant's transform+map with the
                        # MP search (see the module's concurrency contract);
                        # disabled with overrides installed — a custom
                        # stage may mutate the context under our feet
                        _submit_ma_lookahead(ctx)
                    output = self.overrides.get(name, fn)(ctx)
                    if key is not None:
                        self.cache.put(name, ctx.network, key, output)
                    if (
                        store_writes
                        and name in self._STORE_KIND
                        and (reproducible or name not in ("optimize_mp", "measure"))
                    ):
                        self._store_put(name, fingerprint, config, output)
                elapsed = time.perf_counter() - start
                setattr(ctx, slot, output)
                stages.append(
                    StageResult(
                        name=name, output=output, runtime_s=elapsed, cached=cached is not None
                    )
                )
        finally:
            if ctx.executor is not None:
                ctx.executor.shutdown(wait=True)
                ctx.executor = None
        return PipelineResult(flow=ctx.flow, stages=stages, context=ctx)
