"""Result persistence and rendering.

Serialises flow/table results to JSON and CSV and renders Markdown
tables, so benchmark runs can be archived and diffed across commits —
the workflow EXPERIMENTS.md documents.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.flow import FlowResult, SynthesisVariant
from repro.phase import Phase, PhaseAssignment

#: File extensions :func:`save_results` / :func:`save_batch` understand.
REPORT_EXTENSIONS = (".json", ".csv", ".md")

TABLE_COLUMNS = (
    "ckt",
    "n_pis",
    "n_pos",
    "ma_size",
    "ma_pwr",
    "mp_size",
    "mp_pwr",
    "area_penalty_pct",
    "pwr_savings_pct",
)


def flow_result_to_dict(result: FlowResult) -> Dict[str, object]:
    """Full serialisable record of one flow run (richer than .row())."""
    record: Dict[str, object] = dict(result.row())
    record.update(
        {
            "timed": result.timed,
            "probability_method": result.probability_method,
            "ma_assignment": {po: ph.value for po, ph in result.ma.assignment.items()},
            "mp_assignment": {po: ph.value for po, ph in result.mp.assignment.items()},
            "ma_estimated_power": result.ma.estimated_power,
            "mp_estimated_power": result.mp.estimated_power,
            "ma_critical_delay": result.ma.critical_delay,
            "mp_critical_delay": result.mp.critical_delay,
        }
    )
    for label, variant in (("ma", result.ma), ("mp", result.mp)):
        if variant.resize is not None:
            record[f"{label}_resize"] = {
                "met_timing": variant.resize.met_timing,
                "target": variant.resize.target,
                "initial_delay": variant.resize.initial_delay,
                "final_delay": variant.resize.final_delay,
                "iterations": variant.resize.iterations,
                "upsized_cells": variant.resize.upsized_cells,
            }
    return record


def flow_result_from_dict(record: Mapping[str, object]) -> FlowResult:
    """Rebuild a :class:`FlowResult` from :func:`flow_result_to_dict`.

    The inverse the old API was missing: :func:`load_results_json`
    returned bare dicts while :func:`save_results` consumed
    ``FlowResult`` objects.  The reconstruction preserves every number a
    table or comparison needs — sizes, measured/estimated powers,
    assignments, delays, resize outcome — bit-for-bit (JSON round-trips
    floats exactly).  The in-memory synthesis artefacts
    (``implementation`` / ``design``) are not serialised and come back
    as ``None``.
    """
    from repro.domino.timing import ResizeResult

    def variant(label: str) -> SynthesisVariant:
        resize = None
        resize_record = record.get(f"{label}_resize")
        if isinstance(resize_record, Mapping):
            resize = ResizeResult(
                met_timing=bool(resize_record["met_timing"]),
                target=float(resize_record["target"]),
                initial_delay=float(resize_record["initial_delay"]),
                final_delay=float(resize_record["final_delay"]),
                iterations=int(resize_record.get("iterations", 0)),
                upsized_cells=int(resize_record["upsized_cells"]),
            )
        assignment = PhaseAssignment(
            {
                po: Phase(value)
                for po, value in dict(record[f"{label}_assignment"]).items()
            }
        )
        return SynthesisVariant(
            label=label.upper(),
            assignment=assignment,
            implementation=None,
            design=None,
            size=int(record[f"{label}_size"]),
            power_ma=float(record[f"{label}_pwr"]),
            estimated_power=float(record[f"{label}_estimated_power"]),
            resize=resize,
            critical_delay=float(record.get(f"{label}_critical_delay", 0.0)),
        )

    try:
        return FlowResult(
            name=str(record["ckt"]),
            n_inputs=int(record["n_pis"]),
            n_outputs=int(record["n_pos"]),
            ma=variant("ma"),
            mp=variant("mp"),
            timed=bool(record["timed"]),
            probability_method=str(record["probability_method"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed flow record: {exc}") from exc


def results_to_json(results: Sequence[FlowResult], indent: int = 2) -> str:
    """JSON array of full flow records."""
    return json.dumps([flow_result_to_dict(r) for r in results], indent=indent)


def results_to_csv(results: Sequence[FlowResult]) -> str:
    """CSV with the paper's table columns."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(TABLE_COLUMNS))
    writer.writeheader()
    for result in results:
        row = result.row()
        writer.writerow({k: row[k] for k in TABLE_COLUMNS})
    return buf.getvalue()


def results_to_markdown(
    results: Sequence[FlowResult],
    paper_rows: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> str:
    """GitHub-flavoured Markdown table, optionally with paper columns."""
    headers = [
        "Ckt",
        "#PI",
        "#PO",
        "MA size",
        "MA pwr",
        "MP size",
        "MP pwr",
        "%Area",
        "%Pwr",
    ]
    if paper_rows:
        headers += ["paper %Area", "paper %Pwr"]
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join(["---"] * len(headers)) + "|")
    for result in results:
        row = result.row()
        cells = [
            str(row["ckt"]),
            str(row["n_pis"]),
            str(row["n_pos"]),
            str(row["ma_size"]),
            f"{row['ma_pwr']:.2f}",
            str(row["mp_size"]),
            f"{row['mp_pwr']:.2f}",
            f"{row['area_penalty_pct']:.1f}",
            f"{row['pwr_savings_pct']:.1f}",
        ]
        if paper_rows:
            paper = paper_rows.get(str(row["ckt"]))
            if paper:
                cells += [
                    f"{paper['area_penalty_pct']:.1f}",
                    f"{paper['power_savings_pct']:.1f}",
                ]
            else:
                cells += ["n/a", "n/a"]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def save_results(results: Sequence[FlowResult], path: str) -> None:
    """Write results to ``path``; format chosen by extension
    (.json / .csv / .md)."""
    if path.endswith(".json"):
        text = results_to_json(results)
    elif path.endswith(".csv"):
        text = results_to_csv(results)
    elif path.endswith(".md"):
        text = results_to_markdown(results)
    else:
        raise ValueError(
            f"unknown report format for {path!r} (use {'/'.join(REPORT_EXTENSIONS)})"
        )
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)


def load_results_json(path: str) -> List[Dict[str, object]]:
    """Read back a JSON report written by :func:`save_results` as bare
    dicts (thin wrapper kept for backwards compatibility; prefer
    :func:`load_results` for real :class:`FlowResult` objects)."""
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def load_results(path: str) -> List[FlowResult]:
    """Read back a JSON report as :class:`FlowResult` objects — the
    symmetric inverse of :func:`save_results` for ``.json`` reports."""
    return [flow_result_from_dict(record) for record in load_results_json(path)]


# ----------------------------------------------------------------------
# batch reports


def batch_to_records(batch: "BatchResult") -> List[Dict[str, object]]:  # noqa: F821
    """One record per batch item — full flow record for successes, an
    ``error`` record (name + first traceback line + full traceback) for
    failures, so archived batch runs keep their failure provenance."""
    records: List[Dict[str, object]] = []
    for item in batch.items:
        if item.ok:
            record = flow_result_to_dict(item.result)
        else:
            error = item.error or "unknown error"
            record = {
                "ckt": item.name,
                "error": error.splitlines()[0],
                "traceback": error,
            }
        record["runtime_s"] = item.runtime_s
        record["seed"] = item.config.seed
        records.append(record)
    return records


def save_batch(batch: "BatchResult", path: str) -> None:  # noqa: F821
    """Write a batch run to ``path`` (.json keeps failures and per-item
    metadata; .csv/.md keep the successful table rows)."""
    if path.endswith(".json"):
        text = json.dumps(batch_to_records(batch), indent=2)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return
    save_results(batch.results, path)
