"""Domino-aware BDD variable ordering (paper Section 4.2.2).

The paper orders BDD variables by two principles:

1. Variables appear in the **reverse** of the order in which circuit
   inputs are first visited during a topological traversal of the gates.
2. Gates at the same topological level are traversed in **decreasing
   order of fanout-cone cardinality**.

Together these push variables that are close to the primary inputs or
that feed large cones toward the *bottom* of the BDD, maximising node
sharing in the flat, highly convergent cones typical of control domino
blocks.

This module implements that heuristic plus two reference orderings used
by the Figure 10 reproduction and the ablation benches: the naive
topological (first-visit, *not* reversed) ordering and a deterministic
"disturbed" ordering that interleaves signal groups.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.network.netlist import GateType, LogicNetwork
from repro.network.topo import fanout_cone_sizes, levels


def _first_visit_order(
    network: LogicNetwork, roots: Optional[Sequence[str]] = None
) -> List[str]:
    """Source names in the order first touched by a level-by-level
    traversal, visiting same-level gates in decreasing fanout-cone size."""
    lv = levels(network)
    cone_size = fanout_cone_sizes(network)
    gate_names = [n.name for n in network.gates]
    if roots is not None:
        from repro.network.topo import transitive_fanin

        cone = transitive_fanin(network, roots, include_sources=True)
        gate_names = [g for g in gate_names if g in cone]
    # Sort gates by (level asc, cone size desc, name) for determinism.
    gate_names.sort(key=lambda g: (lv[g], -cone_size[g], g))
    visited: Set[str] = set()
    order: List[str] = []
    source_like = {
        n.name
        for n in network.nodes.values()
        if n.gate_type is GateType.INPUT or n.gate_type is GateType.LATCH
    }
    for g in gate_names:
        for fi in network.nodes[g].fanins:
            if fi in source_like and fi not in visited:
                visited.add(fi)
                order.append(fi)
    # Sources never read by any gate (e.g. dangling PIs) go last.
    for name in network.inputs:
        if name not in visited:
            visited.add(name)
            order.append(name)
    for latch in network.latches:
        if latch.name not in visited:
            visited.add(latch.name)
            order.append(latch.name)
    return order


def domino_variable_order(
    network: LogicNetwork, roots: Optional[Sequence[str]] = None
) -> List[str]:
    """The paper's ordering: reverse first-visit order.

    Index 0 of the returned list is the BDD *top* variable.  Restricting
    to ``roots`` orders only the support of those nodes.
    """
    return list(reversed(_first_visit_order(network, roots)))


def naive_topological_order(
    network: LogicNetwork, roots: Optional[Sequence[str]] = None
) -> List[str]:
    """First-visit order without reversal (the Figure 10 middle row)."""
    return _first_visit_order(network, roots)


def disturbed_order(
    network: LogicNetwork,
    roots: Optional[Sequence[str]] = None,
    stride: int = 2,
) -> List[str]:
    """Deterministic ordering that breaks natural signal grouping.

    Interleaves the reversed first-visit order with stride ``stride``:
    variables ``[a, b, c, d, e]`` become ``[a, c, e, b, d]``.  Models
    the "unnaturally sandwiched" ordering in the bottom row of
    Figure 10.
    """
    base = domino_variable_order(network, roots)
    out: List[str] = []
    for offset in range(stride):
        out.extend(base[offset::stride])
    return out


def declaration_order(
    network: LogicNetwork, roots: Optional[Sequence[str]] = None
) -> List[str]:
    """PI declaration order — the ordering a naive tool would use."""
    order = list(network.inputs) + [latch.name for latch in network.latches]
    if roots is not None:
        from repro.network.topo import transitive_fanin

        cone = transitive_fanin(network, roots, include_sources=True)
        order = [v for v in order if v in cone]
    return order


ORDERING_STRATEGIES = {
    "domino": domino_variable_order,
    "topological": naive_topological_order,
    "disturbed": disturbed_order,
    "declaration": declaration_order,
}


def order_variables(
    network: LogicNetwork,
    strategy: str = "domino",
    roots: Optional[Sequence[str]] = None,
) -> List[str]:
    """Dispatch over the named ordering strategies."""
    try:
        fn = ORDERING_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown ordering strategy {strategy!r}; "
            f"choose from {sorted(ORDERING_STRATEGIES)}"
        ) from None
    return fn(network, roots)
