"""Rebuild-based variable-order refinement ("sifting lite").

The paper's static ordering heuristic (Section 4.2.2) is a construction
order; classic BDD packages additionally *sift* variables dynamically.
Our manager keeps nodes immutable, so instead of in-place level swaps
this module refines an ordering by **rebuilding**: each variable is
tentatively moved to a set of candidate positions, the shared BDD is
rebuilt, and the position with the smallest node count wins.  Quadratic
in rebuilds, perfectly adequate for the control-block cone sizes the
paper targets — and an honest ablation partner for the static
heuristic: it answers "how much is left on the table?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bdd.builder import build_node_bdds
from repro.bdd.ordering import domino_variable_order
from repro.errors import BddError
from repro.network.netlist import LogicNetwork


@dataclass
class SiftResult:
    """Outcome of order refinement."""

    order: List[str]
    initial_size: int
    final_size: int
    moves: int
    rebuilds: int

    @property
    def improvement_percent(self) -> float:
        if self.initial_size == 0:
            return 0.0
        return 100.0 * (self.initial_size - self.final_size) / self.initial_size


def _shared_size(
    network: LogicNetwork,
    roots: Optional[Sequence[str]],
    order: List[str],
    max_nodes: int,
) -> int:
    bdds = build_node_bdds(
        network, roots=roots, variable_order=order, max_nodes=max_nodes
    )
    if roots is None:
        roots = list(dict.fromkeys(network.output_drivers()))
    return bdds.shared_size(roots)


def sift_order(
    network: LogicNetwork,
    roots: Optional[Sequence[str]] = None,
    initial_order: Optional[Sequence[str]] = None,
    passes: int = 1,
    candidate_positions: int = 8,
    max_nodes: int = 500_000,
    max_variables: int = 40,
) -> SiftResult:
    """Refine a variable order by greedy position search.

    Starts from ``initial_order`` (default: the paper's domino
    ordering).  For every variable, up to ``candidate_positions``
    evenly spaced target positions are tried; the best placement is
    kept.  ``passes`` full sweeps are performed.
    """
    if initial_order is None:
        initial_order = domino_variable_order(network, roots)
    order = list(initial_order)
    if len(order) > max_variables:
        raise BddError(
            f"sift_order limited to {max_variables} variables; got {len(order)}"
        )
    rebuilds = 0
    initial_size = _shared_size(network, roots, order, max_nodes)
    rebuilds += 1
    best_size = initial_size
    moves = 0

    n = len(order)
    for _sweep in range(passes):
        improved_this_pass = False
        for var in list(order):
            current_pos = order.index(var)
            positions = sorted(
                {
                    round(k * (n - 1) / max(candidate_positions - 1, 1))
                    for k in range(candidate_positions)
                }
                | {0, n - 1}
            )
            best_pos = current_pos
            for pos in positions:
                if pos == current_pos:
                    continue
                trial = list(order)
                trial.pop(current_pos)
                trial.insert(pos, var)
                size = _shared_size(network, roots, trial, max_nodes)
                rebuilds += 1
                if size < best_size:
                    best_size = size
                    best_pos = pos
            if best_pos != current_pos:
                order.pop(current_pos)
                order.insert(best_pos, var)
                moves += 1
                improved_this_pass = True
        if not improved_this_pass:
            break

    return SiftResult(
        order=order,
        initial_size=initial_size,
        final_size=best_size,
        moves=moves,
        rebuilds=rebuilds,
    )
