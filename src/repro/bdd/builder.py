"""Build BDDs for logic-network nodes.

Bridges :class:`~repro.network.netlist.LogicNetwork` and
:class:`~repro.bdd.manager.BddManager`: constructs the BDD of every
requested node bottom-up in topological order, sharing intermediate
results across cones (the sharing the paper's ordering heuristic is
designed to maximise).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import BddError
from repro.network.netlist import GateType, LogicNetwork
from repro.network.topo import transitive_fanin
from repro.bdd.manager import ONE, ZERO, BddManager
from repro.bdd.ordering import order_variables


class NetworkBdds:
    """BDDs for a set of network nodes, plus the owning manager."""

    def __init__(self, manager: BddManager, node_bdds: Dict[str, int]):
        self.manager = manager
        self.node_bdds = node_bdds

    def bdd_of(self, name: str) -> int:
        try:
            return self.node_bdds[name]
        except KeyError:
            raise BddError(f"no BDD was built for node {name!r}") from None

    def probability(self, name: str, var_probs: Mapping[str, float]) -> float:
        return self.manager.probability(self.bdd_of(name), var_probs)

    def probabilities(
        self, var_probs: Mapping[str, float]
    ) -> Dict[str, float]:
        """Signal probability of every node with a BDD."""
        return {
            name: self.manager.probability(f, var_probs)
            for name, f in self.node_bdds.items()
        }

    def shared_size(self, names: Optional[Iterable[str]] = None) -> int:
        """Distinct BDD nodes used by the given node functions (Fig. 10 metric)."""
        if names is None:
            roots = list(self.node_bdds.values())
        else:
            roots = [self.bdd_of(n) for n in names]
        return self.manager.dag_size(roots)


def build_node_bdds(
    network: LogicNetwork,
    roots: Optional[Sequence[str]] = None,
    ordering: str = "domino",
    variable_order: Optional[Sequence[str]] = None,
    max_nodes: int = 2_000_000,
) -> NetworkBdds:
    """Construct BDDs for ``roots`` (default: all PO drivers).

    Latch outputs are treated as free variables, which matches the
    partitioned combinational blocks the paper's estimator works on.

    Parameters
    ----------
    ordering:
        One of ``domino`` (the paper's heuristic), ``topological``,
        ``disturbed``, ``declaration``.  Ignored when an explicit
        ``variable_order`` is supplied.
    max_nodes:
        Node budget; :class:`~repro.errors.BddError` is raised beyond it.
    """
    if roots is None:
        roots = list(dict.fromkeys(network.output_drivers()))
    if variable_order is None:
        variable_order = order_variables(network, ordering, roots)
    manager = BddManager(variable_order, max_nodes=max_nodes)

    cone = transitive_fanin(network, roots, include_sources=True)
    node_bdds: Dict[str, int] = {}
    for name in network.topological_order():
        if name not in cone:
            continue
        node = network.nodes[name]
        t = node.gate_type
        if t is GateType.INPUT or t is GateType.LATCH:
            node_bdds[name] = manager.var(name)
            continue
        if t is GateType.CONST0:
            node_bdds[name] = ZERO
            continue
        if t is GateType.CONST1:
            node_bdds[name] = ONE
            continue
        fanin_bdds = [node_bdds[fi] for fi in node.fanins]
        if t is GateType.BUF:
            node_bdds[name] = fanin_bdds[0]
        elif t is GateType.NOT:
            node_bdds[name] = manager.apply_not(fanin_bdds[0])
        elif t is GateType.AND:
            node_bdds[name] = manager.apply_many("and", fanin_bdds)
        elif t is GateType.OR:
            node_bdds[name] = manager.apply_many("or", fanin_bdds)
        elif t is GateType.NAND:
            node_bdds[name] = manager.apply_not(manager.apply_many("and", fanin_bdds))
        elif t is GateType.NOR:
            node_bdds[name] = manager.apply_not(manager.apply_many("or", fanin_bdds))
        elif t is GateType.XOR:
            node_bdds[name] = manager.apply_many("xor", fanin_bdds)
        elif t is GateType.XNOR:
            node_bdds[name] = manager.apply_not(manager.apply_many("xor", fanin_bdds))
        elif t is GateType.MUX:
            sel, d0, d1 = fanin_bdds
            node_bdds[name] = manager.ite(sel, d1, d0)
        elif t is GateType.SOP:
            node_bdds[name] = _sop_bdd(manager, node, fanin_bdds)
        else:  # pragma: no cover - exhaustive over GateType
            raise BddError(f"cannot build BDD for node {name} of type {t.value}")
    return NetworkBdds(manager, node_bdds)


def _sop_bdd(manager: BddManager, node, fanin_bdds: List[int]) -> int:
    """BDD of a generic SOP cover node."""
    cover = node.cover
    acc = ZERO
    for cube in cover.cubes:
        term = ONE
        for lit, f in zip(cube, fanin_bdds):
            if lit == "1":
                term = manager.apply_and(term, f)
            elif lit == "0":
                term = manager.apply_and(term, manager.apply_not(f))
            if term == ZERO:
                break
        acc = manager.apply_or(acc, term)
        if acc == ONE:
            break
    if cover.output_value == "0":
        acc = manager.apply_not(acc)
    return acc


def compare_orderings(
    network: LogicNetwork,
    roots: Optional[Sequence[str]] = None,
    strategies: Sequence[str] = ("domino", "topological", "disturbed"),
    max_nodes: int = 2_000_000,
) -> Dict[str, int]:
    """Shared BDD node counts per ordering strategy (Fig. 10 experiment)."""
    if roots is None:
        roots = list(dict.fromkeys(network.output_drivers()))
    results: Dict[str, int] = {}
    for strategy in strategies:
        bdds = build_node_bdds(network, roots, ordering=strategy, max_nodes=max_nodes)
        results[strategy] = bdds.shared_size(roots)
    return results
