"""A from-scratch ROBDD package.

Reduced Ordered Binary Decision Diagrams (Bryant, 1986 — reference [1]
in the paper) with a unique table, an ITE-based apply with memoisation,
satisfying-probability evaluation, and node counting.  The manager is
deliberately small and dependency-free; it is the workhorse behind the
paper's exact signal-probability computation (Section 4.2.2).

Nodes are integers.  ``0`` and ``1`` are the terminal nodes; every
other node is a triple ``(level, low, high)`` interned in the unique
table.  Variables are identified by *level* (position in the current
ordering); the manager also keeps a name <-> level mapping so callers
can think in terms of variable names.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import BddError

ZERO = 0
ONE = 1


class BddManager:
    """ROBDD manager with a fixed variable ordering.

    Parameters
    ----------
    variables:
        Ordered variable names; index 0 is the *top* level of the BDD.
    max_nodes:
        Safety budget.  Exceeding it raises :class:`BddError` so callers
        can fall back to Monte-Carlo estimation instead of thrashing.
    """

    def __init__(self, variables: Sequence[str], max_nodes: int = 2_000_000):
        if len(set(variables)) != len(variables):
            raise BddError("duplicate variable names in ordering")
        self.variables: List[str] = list(variables)
        self.level_of: Dict[str, int] = {v: i for i, v in enumerate(variables)}
        self.max_nodes = max_nodes
        # node id -> (level, low, high); ids 0 and 1 are terminals.
        self._nodes: List[Tuple[int, int, int]] = [
            (len(variables), ZERO, ZERO),  # dummy record for terminal 0
            (len(variables), ONE, ONE),  # dummy record for terminal 1
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Node primitives
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        if len(self._nodes) >= self.max_nodes:
            raise BddError(
                f"BDD node budget exceeded ({self.max_nodes} nodes); "
                "consider a different ordering or Monte-Carlo fallback"
            )
        node_id = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node_id
        return node_id

    def var(self, name: str) -> int:
        """BDD for a single variable."""
        try:
            level = self.level_of[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None
        return self._mk(level, ZERO, ONE)

    def nvar(self, name: str) -> int:
        """BDD for a negated variable."""
        try:
            level = self.level_of[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None
        return self._mk(level, ONE, ZERO)

    def level(self, f: int) -> int:
        if f <= ONE:
            return len(self.variables)
        return self._nodes[f][0]

    def cofactors(self, f: int, level: int) -> Tuple[int, int]:
        """(low, high) cofactors of ``f`` with respect to ``level``."""
        if f <= ONE or self._nodes[f][0] != level:
            return f, f
        _, lo, hi = self._nodes[f]
        return lo, hi

    @property
    def node_count(self) -> int:
        """Total interned non-terminal nodes in the manager."""
        return len(self._nodes) - 2

    # ------------------------------------------------------------------
    # Boolean operations (ITE core)
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h``."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self.level(f), self.level(g), self.level(h))
        f0, f1 = self.cofactors(f, top)
        g0, g1 = self.cofactors(g, top)
        h0, h1 = self.cofactors(h, top)
        lo = self.ite(f0, g0, h0)
        hi = self.ite(f1, g1, h1)
        result = self._mk(top, lo, hi)
        self._ite_cache[key] = result
        return result

    def apply_not(self, f: int) -> int:
        cached = self._not_cache.get(f)
        if cached is None:
            cached = self.ite(f, ZERO, ONE)
            self._not_cache[f] = cached
        return cached

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, ZERO)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, ONE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_many(self, op: str, operands: Sequence[int]) -> int:
        """Fold a variadic AND/OR/XOR over operands."""
        if not operands:
            raise BddError(f"apply_many({op!r}) with no operands")
        ops: Dict[str, Tuple[Callable[[int, int], int], Optional[int]]] = {
            "and": (self.apply_and, ONE),
            "or": (self.apply_or, ZERO),
            "xor": (self.apply_xor, ZERO),
        }
        if op not in ops:
            raise BddError(f"unknown operator {op!r}")
        fn, _ident = ops[op]
        acc = operands[0]
        for nxt in operands[1:]:
            acc = fn(acc, nxt)
        return acc

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def probability(self, f: int, var_probs: Mapping[str, float]) -> float:
        """Probability that ``f`` evaluates to 1 given independent
        per-variable probabilities.

        This is the signal-probability primitive of the paper's power
        estimator: P(node) computed bottom-up over the shared DAG.
        """
        memo: Dict[int, float] = {ZERO: 0.0, ONE: 1.0}
        stack = [f]
        while stack:
            node = stack[-1]
            if node in memo:
                stack.pop()
                continue
            level, lo, hi = self._nodes[node]
            missing = [c for c in (lo, hi) if c not in memo]
            if missing:
                stack.extend(missing)
                continue
            p = var_probs.get(self.variables[level], 0.5)
            memo[node] = p * memo[hi] + (1.0 - p) * memo[lo]
            stack.pop()
        return memo[f]

    def dag_size(self, roots: Iterable[int]) -> int:
        """Number of distinct non-terminal nodes reachable from ``roots``.

        This is the "number of BDD nodes" metric of Figure 10.
        """
        seen: Set[int] = set()
        stack = [r for r in roots]
        while stack:
            node = stack.pop()
            if node <= ONE or node in seen:
                continue
            seen.add(node)
            _, lo, hi = self._nodes[node]
            stack.append(lo)
            stack.append(hi)
        return len(seen)

    def evaluate(self, f: int, values: Mapping[str, bool]) -> bool:
        """Evaluate a BDD on a complete variable assignment."""
        node = f
        while node > ONE:
            level, lo, hi = self._nodes[node]
            node = hi if values.get(self.variables[level], False) else lo
        return node == ONE

    def support_of(self, f: int) -> Set[str]:
        """Variable names the function actually depends on."""
        seen: Set[int] = set()
        out: Set[str] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= ONE or node in seen:
                continue
            seen.add(node)
            level, lo, hi = self._nodes[node]
            out.add(self.variables[level])
            stack.append(lo)
            stack.append(hi)
        return out

    def count_minterms(self, f: int, n_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``n_vars`` variables."""
        n = n_vars if n_vars is not None else len(self.variables)
        memo: Dict[int, float] = {}

        def sat(node: int) -> float:
            # Fraction of the full space that satisfies the function.
            if node == ZERO:
                return 0.0
            if node == ONE:
                return 1.0
            if node in memo:
                return memo[node]
            _, lo, hi = self._nodes[node]
            val = 0.5 * sat(lo) + 0.5 * sat(hi)
            memo[node] = val
            return val

        return round(sat(f) * (2 ** n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BddManager {len(self.variables)} vars, {self.node_count} nodes>"
