"""From-scratch ROBDD package with the paper's domino-aware variable ordering."""

from repro.bdd.manager import ONE, ZERO, BddManager
from repro.bdd.builder import NetworkBdds, build_node_bdds, compare_orderings
from repro.bdd.ordering import (
    ORDERING_STRATEGIES,
    declaration_order,
    disturbed_order,
    domino_variable_order,
    naive_topological_order,
    order_variables,
)
from repro.bdd.sifting import SiftResult, sift_order

__all__ = [
    "SiftResult",
    "sift_order",
    "ONE",
    "ZERO",
    "BddManager",
    "NetworkBdds",
    "build_node_bdds",
    "compare_orderings",
    "ORDERING_STRATEGIES",
    "declaration_order",
    "disturbed_order",
    "domino_variable_order",
    "naive_topological_order",
    "order_variables",
]
