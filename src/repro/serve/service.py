"""Asyncio job-queue service over the synthesis flow.

:class:`Service` turns the repo's batch machinery into a long-lived
server: submissions become jobs with ids, a bounded queue applies
backpressure, synthesis runs in a ``ProcessPoolExecutor`` driven from
the event loop (the loop never blocks on flow work), and every job
exposes status snapshots plus an ordered event stream for progress
consumers.

Lifecycle of one job::

    submit(circuit, config) ──▶ queued ──▶ running ──▶ done | failed
                        │                      ▲
                        ├──▶ done (cached)     │  cancel() of a queued
                        └──▶ cancelled ────────┘  job never runs it

* **Backpressure** — the queue is bounded (``queue_size``); a
  submission that finds it full raises
  :class:`repro.errors.QueueFullError` instead of growing memory
  without limit.
* **Store-backed dedup** — with an :class:`repro.store.ArtifactStore`
  attached, a submission whose ``fingerprint() +
  FlowConfig.result_key()`` pair is already archived completes
  instantly with ``cached=True`` and never occupies a queue slot or a
  worker: zero synthesis stages execute
  (:meth:`repro.core.pipeline.Pipeline.cached_flow`).
* **Progress** — the service-level ``progress`` callback has the exact
  :data:`repro.core.batch.ProgressCallback` shape ``run_many`` uses,
  fed with :class:`repro.core.batch.BatchItem` records as jobs finish,
  and is isolated the same way (one bad subscriber cannot take the
  service down).
* **Graceful shutdown** — ``shutdown(drain=True)`` refuses new
  submissions and completes queued + in-flight work before joining the
  worker processes; ``drain=False`` cancels queued jobs first.  Either
  way the pool is joined: no orphaned workers.

The synchronous flow entry points stay untouched: the service is a
layer over :func:`repro.core.batch.execute_one`, the same single-item
path ``run_many`` workers use.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import signal
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Deque, Dict, List, Optional

logger = logging.getLogger(__name__)

from repro.errors import (
    QueueFullError,
    ServeError,
    ServiceClosedError,
    UnknownJobError,
)
from repro.core.batch import (
    BatchItem,
    CircuitLike,
    ProgressCallback,
    _describe,
    default_jobs,
    execute_one,
    materialize,
)
from repro.core.config import FlowConfig
from repro.core.flow import FlowResult

#: Job lifecycle states; ``done``/``failed``/``cancelled`` are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Terminal job states.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Queue sentinel that tells a dispatcher to exit.
_STOP = object()

#: Default bound on retained *finished* jobs (see ``Service.max_history``).
DEFAULT_MAX_HISTORY = 1024


def _worker_init() -> None:
    """Worker-process initializer: ignore SIGINT, mark as pool worker.

    A terminal Ctrl-C delivers SIGINT to the whole foreground process
    group — workers included.  The parent turns it into a graceful
    drain; the workers must keep running through that drain instead of
    dying mid-flow and breaking the pool.

    The pool-worker mark makes ``FlowConfig.stage_jobs=0`` (auto)
    resolve to sequential stages inside each worker — the pool already
    owns the host's cores, so per-worker stage threads would only
    oversubscribe (an explicit ``stage_jobs>1`` is still honoured).
    """
    from repro.core.batch import mark_pool_worker

    mark_pool_worker()
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover — exotic platforms
        pass


class ExecutionBackend:
    """Strategy interface deciding *where* a job's circuit runs.

    The :class:`Service` owns submissions, the queue, job states, and
    events; the backend owns execution.  Two implementations ship:
    :class:`LocalPoolBackend` (a ``ProcessPoolExecutor`` on this host —
    the historical behaviour and the default) and
    :class:`repro.fleet.FleetBackend` (a coordinator leasing jobs to a
    fleet of remote workers).  Both return the same
    ``(result, error, runtime_s, cached)`` outcome tuple from
    :meth:`execute`, so the service surface — submit/status/events/
    cancel/healthz — is byte-identical whichever backend runs the flow.
    """

    #: Concurrent executions the backend can absorb — the service runs
    #: this many dispatcher tasks.
    slots: int = 1

    async def start(self) -> None:
        """Bring up execution resources (pools, listeners)."""

    async def shutdown(self) -> None:
        """Release execution resources; every worker joined, no orphans."""

    async def abort_pending(self) -> None:
        """Fail work the backend holds but has not started (called on a
        non-draining shutdown so dispatchers cannot wait forever on
        work no one will ever pick up).  Default: nothing held."""

    async def execute(self, job: "Job") -> tuple:
        """Run one job's circuit; returns
        ``(FlowResult | None, error | None, runtime_s, cached)``."""
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        """JSON-safe backend health record (merged into ``/healthz``)."""
        return {"kind": type(self).__name__, "slots": self.slots}


class LocalPoolBackend(ExecutionBackend):
    """Execute jobs in a local ``ProcessPoolExecutor`` (one host)."""

    def __init__(
        self,
        workers: Optional[int] = None,
        store: Optional["ArtifactStore"] = None,  # noqa: F821
    ) -> None:
        if workers is not None and workers < 1:
            raise ServeError(f"jobs must be >= 1, got {workers}")
        self.slots = workers or default_jobs()
        self.store = store
        self._pool: Optional[ProcessPoolExecutor] = None

    async def start(self) -> None:
        self._pool = ProcessPoolExecutor(
            max_workers=self.slots, initializer=_worker_init
        )

    async def shutdown(self) -> None:
        if self._pool is not None:
            # every future is resolved once the dispatchers exit, so
            # this only joins the (idle) worker processes
            self._pool.shutdown(wait=True)
            self._pool = None

    async def execute(self, job: "Job") -> tuple:
        kind, payload = job.work
        return await asyncio.get_running_loop().run_in_executor(
            self._pool,
            _pool_execute,
            kind,
            payload,
            job.config,
            self.store,
            job.timeout_s,
        )

    def stats(self) -> Dict[str, Any]:
        return {"kind": "local-pool", "slots": self.slots}


@dataclass
class Job:
    """One submission and everything that happened to it."""

    job_id: str
    name: str
    config: FlowConfig
    timeout_s: Optional[float] = None
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    runtime_s: float = 0.0
    cached: bool = False
    result: Optional[FlowResult] = None
    error: Optional[str] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: picklable ``(kind, payload)`` description handed to the worker
    work: Any = field(default=None, repr=False)

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def ok(self) -> bool:
        return self.state == "done" and self.result is not None

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe status record (what ``GET /jobs/<id>`` returns)."""
        snap: Dict[str, Any] = {
            "job_id": self.job_id,
            "name": self.name,
            "state": self.state,
            "cached": self.cached,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "runtime_s": self.runtime_s,
            "n_events": len(self.events),
        }
        if self.error is not None:
            snap["error"] = self.error
        if self.result is not None:
            snap["row"] = self.result.row()
        return snap


class Service:
    """Async job-queue front-end for the synthesis flow.

    Parameters
    ----------
    config:
        Default :class:`FlowConfig` for submissions that do not carry
        their own.
    jobs:
        Worker processes of the default :class:`LocalPoolBackend`
        (defaults to :func:`default_jobs`); also the number of
        dispatcher tasks, so at most ``jobs`` circuits are in flight at
        once.  Ignored when an explicit ``backend`` is given.
    backend:
        Optional :class:`ExecutionBackend` deciding where circuits run;
        default is a :class:`LocalPoolBackend` over ``jobs`` processes
        sharing ``store``.  Pass a :class:`repro.fleet.FleetBackend` to
        lease jobs to a distributed worker fleet instead — the service
        surface and results are identical either way.
    queue_size:
        Bound on the number of *queued* (not yet running) jobs; a full
        queue rejects submissions with :class:`QueueFullError`.
    store:
        Optional :class:`repro.store.ArtifactStore` shared by the
        workers and used for submit-time dedup.
    timeout_s:
        Default per-job wall-clock budget (overridable per submission).
    max_history:
        Bound on *finished* jobs retained for status/event queries; the
        oldest finished records are evicted past it, so a long-lived
        service cannot grow without bound.  Queued and running jobs are
        never evicted.
    progress:
        Optional :data:`ProgressCallback` fired (isolated) as each job
        reaches a terminal state, with a :class:`BatchItem` view of the
        job; ``done`` counts finished jobs, ``total`` counts
        submissions so far.

    Use as an async context manager, or call :meth:`start` /
    :meth:`shutdown` explicitly::

        async with Service(config, store=store) as service:
            job_id = await service.submit("design.blif")
            job = await service.result(job_id)
    """

    def __init__(
        self,
        config: Optional[FlowConfig] = None,
        *,
        jobs: Optional[int] = None,
        queue_size: int = 64,
        store: Optional["ArtifactStore"] = None,  # noqa: F821
        timeout_s: Optional[float] = None,
        max_history: int = DEFAULT_MAX_HISTORY,
        progress: Optional[ProgressCallback] = None,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        if queue_size < 1:
            raise ServeError(f"queue_size must be >= 1, got {queue_size}")
        if jobs is not None and jobs < 1:
            raise ServeError(f"jobs must be >= 1, got {jobs}")
        if timeout_s is not None and timeout_s <= 0:
            raise ServeError(f"timeout_s must be positive, got {timeout_s}")
        if max_history < 1:
            raise ServeError(f"max_history must be >= 1, got {max_history}")
        self.config = config or FlowConfig()
        self._backend = backend or LocalPoolBackend(jobs, store)
        self.workers = self._backend.slots
        self.queue_size = queue_size
        self.store = store
        self.default_timeout_s = timeout_s
        self.max_history = max_history
        self.progress = progress
        self.state = "new"  # new -> running -> closing -> closed
        self._jobs: Dict[str, Job] = {}
        self._finished_ids: Deque[str] = deque()
        self._ids = itertools.count(1)
        self._queue: Optional[asyncio.Queue] = None
        self._dispatchers: List[asyncio.Task] = []
        self._changed: Optional[asyncio.Condition] = None
        self._n_finished = 0

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend jobs run on."""
        return self._backend

    @property
    def _pool(self) -> Optional[ProcessPoolExecutor]:
        """The local backend's process pool (``None`` once shut down or
        when a non-local backend executes jobs) — kept as a stable
        inspection point for tests and debuggers."""
        return getattr(self._backend, "_pool", None)

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> "Service":
        """Create the queue, execution backend, and dispatcher tasks."""
        if self.state != "new":
            raise ServeError(f"cannot start a service in state {self.state!r}")
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        self._changed = asyncio.Condition()
        await self._backend.start()
        self.workers = self._backend.slots
        self._dispatchers = [
            asyncio.create_task(self._dispatch(), name=f"repro-serve-dispatch-{i}")
            for i in range(self.workers)
        ]
        self.state = "running"
        logger.info(
            "service running: %d slot(s), queue %d, backend %s",
            self.workers,
            self.queue_size,
            self._backend.stats().get("kind", type(self._backend).__name__),
        )
        return self

    async def __aenter__(self) -> "Service":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop the service and join every worker (no orphans).

        ``drain=True`` completes queued and in-flight jobs first;
        ``drain=False`` cancels queued jobs (they finish ``cancelled``)
        and only waits for circuits already running — a flow mid-stage
        cannot be preempted without killing its process.
        """
        if self.state in ("closing", "closed"):
            return
        if self.state == "new":
            self.state = "closed"
            return
        self.state = "closing"
        logger.info("service closing (drain=%s)", drain)
        if not drain:
            while True:
                try:
                    job = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if job is not _STOP and not job.finished:
                    await self._finish_cancelled(job)
            # a backend holding undispatched work (a fleet coordinator
            # with no live workers) must fail it now, or the dispatcher
            # gather below waits forever on work no one will run
            await self._backend.abort_pending()
        for _ in self._dispatchers:
            await self._queue.put(_STOP)
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers = []
        await self._backend.shutdown()
        self.state = "closed"
        logger.info("service closed")
        async with self._changed:
            self._changed.notify_all()

    # ------------------------------------------------------------------
    # submission API

    async def submit(
        self,
        circuit: CircuitLike,
        config: Optional[FlowConfig] = None,
        *,
        timeout_s: Optional[float] = None,
        name: Optional[str] = None,
    ) -> str:
        """Queue one circuit; returns its job id.

        Raises :class:`QueueFullError` when the bounded queue is full
        (backpressure — retry later) and :class:`ServiceClosedError`
        once shutdown has begun.  With a store attached, a submission
        whose result is already archived completes immediately
        (``cached=True``) without consuming a queue slot.
        """
        if self.state != "running":
            raise ServiceClosedError(
                f"service is {self.state}; submissions are closed"
            )
        if timeout_s is not None and timeout_s <= 0:
            raise ServeError(f"timeout_s must be positive, got {timeout_s}")
        job_config = config or self.config
        kind, payload, described_name = _describe(circuit)
        job = Job(
            job_id=f"job-{next(self._ids)}",
            name=name or described_name,
            config=job_config,
            timeout_s=timeout_s if timeout_s is not None else self.default_timeout_s,
            submitted_at=time.time(),
        )
        job.work = (kind, payload)
        self._jobs[job.job_id] = job

        if self.store is not None:
            cached = await asyncio.get_running_loop().run_in_executor(
                None, self._probe_store, kind, payload, job_config
            )
            if cached is not None:
                job.result = cached
                job.cached = True
                logger.info(
                    "%s %s served from store (dedup)", job.job_id, job.name
                )
                await self._finish(job, "done")
                return job.job_id
            if self.state != "running":
                # shutdown began while the probe ran off-loop: the
                # dispatchers are gone, so enqueueing now would strand
                # the job in "queued" forever
                del self._jobs[job.job_id]
                raise ServiceClosedError(
                    f"service is {self.state}; submissions are closed"
                )

        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            del self._jobs[job.job_id]
            raise QueueFullError(
                f"job queue is full ({self.queue_size} queued); retry later"
            ) from None
        logger.info(
            "%s %s queued (%d waiting)", job.job_id, job.name, self._queue.qsize()
        )
        await self._emit(job, queued=self._queue.qsize())
        return job.job_id

    def _probe_store(self, kind: str, payload, config: FlowConfig):
        """Submit-time dedup: the archived FlowResult, or ``None``.

        Runs in a thread (BLIF parsing / spec building can be slow);
        failures fall through to a normal queued run, where the worker
        will surface the real error with a full traceback.
        """
        from repro.core.pipeline import Pipeline

        try:
            network = materialize(kind, payload)
            return Pipeline(config, store=self.store).cached_flow(network)
        except Exception:  # noqa: BLE001 — probe must never block intake
            return None

    # ------------------------------------------------------------------
    # inspection API

    def job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(f"unknown job id {job_id!r}") from None

    def status(self, job_id: str) -> Dict[str, Any]:
        """JSON-safe snapshot of one job."""
        return self.job(job_id).snapshot()

    def jobs_snapshot(self) -> List[Dict[str, Any]]:
        """Snapshots of every job, oldest first."""
        return [job.snapshot() for job in self._jobs.values()]

    def stats(self) -> Dict[str, Any]:
        """Service-level health record (what ``GET /healthz`` returns).

        ``queue_depth`` counts every job still in ``queued`` state —
        both those waiting in the bounded intake queue and those a
        dispatcher has not yet transitioned — so it is the number a
        load balancer should watch, while ``queue_size`` is the bound
        that turns into HTTP 429.  ``backend`` carries the execution
        backend's own health record: the local pool reports its size; a
        fleet backend reports workers by state (registered/idle/busy/
        quarantined/dead), lease and job counts, and the affinity
        hit/miss counters.  ``store_backend`` carries the artifact
        store's per-backend entry/byte/hit/miss/eviction breakdown
        (nested per tier for a tiered store).
        """
        by_state: Dict[str, int] = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            by_state[job.state] += 1
        return {
            "state": self.state,
            "workers": self.workers,
            "queue_size": self.queue_size,
            "queue_depth": by_state["queued"],
            "jobs": by_state,
            "store": str(self.store.root) if self.store is not None else None,
            "store_backend": (
                self.store.backend.stats() if self.store is not None else None
            ),
            "backend": self._backend.stats(),
        }

    async def result(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Wait until the job reaches a terminal state; returns the job.

        Inspect ``job.result`` / ``job.error`` / ``job.cached`` on the
        returned record.  ``timeout`` bounds the wait, raising
        :class:`asyncio.TimeoutError`.
        """
        job = self.job(job_id)

        async def _wait() -> Job:
            async with self._changed:
                await self._changed.wait_for(lambda: job.finished)
            return job

        if timeout is not None:
            return await asyncio.wait_for(_wait(), timeout)
        return await _wait()

    async def events(
        self, job_id: str, *, from_seq: int = 0
    ) -> AsyncIterator[Dict[str, Any]]:
        """Ordered event stream of one job, ending after its terminal
        event; ``from_seq`` resumes a dropped stream without replaying."""
        job = self.job(job_id)
        seq = from_seq
        while True:
            async with self._changed:
                await self._changed.wait_for(
                    lambda: len(job.events) > seq or job.finished
                )
                pending = list(job.events[seq:])
            for event in pending:
                yield event
            seq += len(pending)
            if job.finished and seq >= len(job.events):
                return

    async def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; returns ``True`` iff it will not run.

        A job that already started is **never** reported cancelled:
        a running circuit cannot be preempted (it executes in a worker
        process mid-flow), and cancelling the asyncio future around it
        is a lie — ``Future.cancel()`` happily "succeeds" on a pending
        asyncio future whose pool work is already executing (or even
        finished), which used to tell the client *cancelled* while the
        worker kept running.  Running and terminal jobs therefore both
        return ``False``; terminal-state transitions stay one-way
        (:meth:`_finish` ignores any second transition), so a worker
        completing after a cancel can never overwrite ``cancelled``
        with ``done``, and vice versa.
        """
        job = self.job(job_id)
        if job.state == "queued":
            await self._finish_cancelled(job)
            return True
        return False

    # ------------------------------------------------------------------
    # internals

    async def _dispatch(self) -> None:
        while True:
            job = await self._queue.get()
            if job is _STOP:
                return
            if job.finished:  # cancelled while queued
                continue
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        job.state = "running"
        job.started_at = time.time()
        logger.info("%s %s started", job.job_id, job.name)
        await self._emit(job)
        try:
            result, error, runtime_s, cached = await self._backend.execute(job)
        except asyncio.CancelledError:  # pragma: no cover — shutdown race
            await self._finish_cancelled(job)
            return
        except Exception as exc:  # noqa: BLE001 — backend-level failure
            result, error, runtime_s, cached = (
                None,
                f"{type(exc).__name__}: {exc}",
                0.0,
                False,
            )
        job.result = result
        job.error = error
        job.runtime_s = runtime_s
        job.cached = cached
        await self._finish(job, "done" if error is None else "failed")

    async def _finish_cancelled(self, job: Job) -> None:
        await self._finish(job, "cancelled")

    async def _finish(self, job: Job, state: str) -> None:
        if job.finished:  # cancel/shutdown race: first terminal state wins
            return
        job.state = state
        job.finished_at = time.time()
        self._n_finished += 1
        if state == "failed":
            logger.warning(
                "%s %s failed after %.1fs: %s",
                job.job_id,
                job.name,
                job.runtime_s,
                (job.error or "unknown error").splitlines()[0],
            )
        else:
            logger.info(
                "%s %s %s after %.1fs%s",
                job.job_id,
                job.name,
                state,
                job.runtime_s,
                " (cached)" if job.cached else "",
            )
        # bound retained history: only finished jobs are evictable, so a
        # long-lived service's memory stays proportional to max_history
        self._finished_ids.append(job.job_id)
        while len(self._finished_ids) > self.max_history:
            evicted = self._finished_ids.popleft()
            self._jobs.pop(evicted, None)
        await self._emit(job)
        if self.progress is not None:
            item = BatchItem(
                index=self._n_finished,
                name=job.name,
                config=job.config,
                result=job.result,
                error=job.error if job.state != "cancelled" else "cancelled",
                runtime_s=job.runtime_s,
                cached=job.cached,
            )
            try:
                self.progress(self._n_finished, len(self._jobs), item)
            except Exception:  # noqa: BLE001 — same isolation as run_many
                pass

    async def _emit(self, job: Job, **extra: Any) -> None:
        event: Dict[str, Any] = {
            "seq": len(job.events),
            "job_id": job.job_id,
            "name": job.name,
            "state": job.state,
            "t": time.time(),
            "cached": job.cached,
        }
        if job.error is not None:
            event["error"] = job.error.splitlines()[0]
        if job.state == "done" and job.result is not None:
            event["row"] = job.result.row()
        event.update(extra)
        job.events.append(event)
        async with self._changed:
            self._changed.notify_all()


def _pool_execute(kind, payload, config, store, timeout_s):
    """Picklable worker shim: :func:`execute_one` with keywords applied
    (``ProcessPoolExecutor`` submits positional args only)."""
    return execute_one(kind, payload, config, store=store, timeout_s=timeout_s)
