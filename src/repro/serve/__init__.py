"""Async serving for the synthesis flow.

Two coordinated layers:

* :class:`Service` — an in-process asyncio job queue: ``submit`` a
  circuit, get a job id back, poll :meth:`~Service.status` / await
  :meth:`~Service.result` / stream :meth:`~Service.events`; execution
  happens in a ``ProcessPoolExecutor`` so the event loop never blocks
  on synthesis, a bounded queue applies backpressure, and an attached
  :class:`repro.store.ArtifactStore` serves repeated submissions
  instantly with ``cached=True``.
* :class:`HttpFrontend` — a stdlib-only JSON-over-HTTP adapter
  (``POST /jobs``, ``GET /jobs/<id>``, ``GET /jobs/<id>/events``,
  ``GET /healthz``) exposed on the CLI as ``repro-domino serve``.

:func:`serve_forever` wires the two together with signal-driven
graceful shutdown — the CLI entry point and the shape to embed the
server elsewhere.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from typing import Callable, Optional

from repro.serve.service import (
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    Service,
)
from repro.serve.http import HttpFrontend

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "Service",
    "HttpFrontend",
    "serve_forever",
]


async def serve_forever(
    service: Service,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    drain: bool = True,
    ready: Optional[Callable[[HttpFrontend], None]] = None,
    stop: Optional[asyncio.Event] = None,
) -> None:
    """Run ``service`` behind an :class:`HttpFrontend` until stopped.

    Starts the service (if not already running) and the HTTP listener,
    then waits on ``stop`` — an :class:`asyncio.Event` the caller can
    set, also wired to ``SIGINT``/``SIGTERM`` where the platform allows
    it.  ``ready`` is called once with the bound frontend (its ``port``
    resolves ``port=0``).  On the way out the listener closes first,
    then the service shuts down draining (or aborting, ``drain=False``)
    the queue, leaving no orphaned workers.
    """
    if service.state == "new":
        await service.start()
    frontend = HttpFrontend(service, host=host, port=port)
    await frontend.start()
    stop = stop or asyncio.Event()
    loop = asyncio.get_running_loop()
    hooked = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            hooked.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or platform without signal handlers
    if ready is not None:
        ready(frontend)
    try:
        await stop.wait()
    finally:
        for signum in hooked:
            loop.remove_signal_handler(signum)
        await frontend.stop()
        try:
            await service.shutdown(drain=drain)
        except Exception as exc:  # noqa: BLE001 — shutdown must not mask stop
            print(f"service shutdown error: {exc}", file=sys.stderr)
