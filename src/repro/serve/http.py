"""Stdlib-only JSON-over-HTTP front-end for :class:`~repro.serve.Service`.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
framework, no threads, one short-lived connection per request — that
maps the service API onto four endpoints:

==============================  ========================================
``POST /jobs``                  submit a circuit; ``202`` + job record
                                (``200`` when served from the store)
``GET /jobs``                   all job snapshots
``GET /jobs/<id>``              one job snapshot (``404`` unknown)
``GET /jobs/<id>/events``       NDJSON event stream until terminal
``DELETE /jobs/<id>``           cancel; ``{"cancelled": bool}``
``GET /healthz``                service health: queue depth, job counts
                                by state, and the execution backend's
                                stats — for a fleet-backed service
                                (:mod:`repro.fleet`) that is workers by
                                state (idle/busy/quarantined/dead), per-
                                worker detail, and the affinity hit rate
==============================  ========================================

``POST /jobs`` accepts a JSON body naming the circuit one of three
ways, plus optional knobs::

    {"blif": ".model ...", "config": {...}, "timeout_s": 60}
    {"path": "designs/frg1.blif"}
    {"spec": "frg1", "name": "warm-check"}

``blif`` is inline BLIF text (parsed off-loop), ``path`` a server-side
BLIF file, ``spec`` a named benchmark recipe
(:func:`repro.bench.mcnc.spec_by_name`).  ``config`` is a
:class:`repro.FlowConfig` dict as produced by ``FlowConfig.to_dict``.

Backpressure maps to status codes: a full queue answers ``429``, a
closing service ``503`` — a load balancer can react without parsing
bodies.  The events endpoint streams one JSON object per line and
closes after the job's terminal event, so ``urllib`` /``curl`` clients
can simply read lines until EOF.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    ConfigError,
    QueueFullError,
    ReproError,
    ServeError,
    ServiceClosedError,
    UnknownJobError,
)
from repro.serve.service import Service

#: Request body cap (BLIF text included) — 32 MiB handles every MCNC
#: circuit with orders of magnitude to spare while bounding memory.
MAX_BODY_BYTES = 32 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Internal: abort the request with this status + message."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message
        super().__init__(message)


class HttpFrontend:
    """Thin HTTP adapter over one :class:`Service` instance."""

    def __init__(
        self, service: Service, host: str = "127.0.0.1", port: int = 8080
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> "HttpFrontend":
        """Bind and start serving; ``port=0`` picks a free port (the
        bound port is written back to :attr:`port`)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # connection plumbing

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as exc:
                await self._send_json(
                    writer, exc.status, {"error": exc.message}
                )
                return
            try:
                await self._route(method, path, body, writer)
            except _HttpError as exc:
                await self._send_json(writer, exc.status, {"error": exc.message})
            except (QueueFullError,) as exc:
                await self._send_json(writer, 429, {"error": str(exc)})
            except ServiceClosedError as exc:
                await self._send_json(writer, 503, {"error": str(exc)})
            except UnknownJobError as exc:
                await self._send_json(writer, 404, {"error": str(exc)})
            except (ConfigError, ServeError, ReproError) as exc:
                await self._send_json(writer, 400, {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001 — keep the server up
                await self._send_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Optional[Dict[str, Any]]]:
        request_line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body: Optional[Dict[str, Any]] = None
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "malformed Content-Length header") from None
        if length < 0:
            raise _HttpError(400, "malformed Content-Length header")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _HttpError(400, f"body is not valid JSON: {exc}") from None
            if not isinstance(body, dict):
                raise _HttpError(400, "body must be a JSON object")
        return method.upper(), target.split("?", 1)[0], body

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]
    ) -> None:
        data = (json.dumps(payload) + "\n").encode("utf-8")
        writer.write(
            (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(data)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        writer.write(data)
        await writer.drain()

    # ------------------------------------------------------------------
    # routing

    async def _route(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]],
        writer: asyncio.StreamWriter,
    ) -> None:
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, self.service.stats())
            return
        if path == "/jobs":
            if method == "POST":
                await self._post_job(body or {}, writer)
                return
            if method == "GET":
                await self._send_json(
                    writer, 200, {"jobs": self.service.jobs_snapshot()}
                )
                return
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/events") and method == "GET":
                await self._stream_events(rest[: -len("/events")].rstrip("/"), writer)
                return
            if "/" not in rest:
                if method == "GET":
                    await self._send_json(writer, 200, self.service.status(rest))
                    return
                if method == "DELETE":
                    cancelled = await self.service.cancel(rest)
                    await self._send_json(
                        writer,
                        200,
                        {"job_id": rest, "cancelled": cancelled},
                    )
                    return
                raise _HttpError(405, f"{method} not allowed on {path}")
        raise _HttpError(404, f"no route for {method} {path}")

    async def _post_job(
        self, body: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        circuit = await self._circuit_from_body(body)
        config = None
        if body.get("config") is not None:
            from repro.core.config import FlowConfig

            config = FlowConfig.from_dict(body["config"])
        timeout_s = body.get("timeout_s")
        if timeout_s is not None:
            try:
                timeout_s = float(timeout_s)
            except (TypeError, ValueError):
                raise _HttpError(
                    400, f"timeout_s must be a number, got {timeout_s!r}"
                ) from None
            if timeout_s <= 0:
                raise _HttpError(
                    400, f"timeout_s must be positive, got {timeout_s:g}"
                )
        job_id = await self.service.submit(
            circuit, config, timeout_s=timeout_s, name=body.get("name")
        )
        snapshot = self.service.status(job_id)
        # an instant store hit answers 200 (done), a queued job 202
        await self._send_json(
            writer, 200 if snapshot["state"] == "done" else 202, snapshot
        )

    async def _circuit_from_body(self, body: Dict[str, Any]):
        sources = [k for k in ("blif", "path", "spec") if body.get(k) is not None]
        if len(sources) != 1:
            raise _HttpError(
                400, "body must name exactly one of 'blif', 'path', 'spec'"
            )
        source = sources[0]
        value = body[source]
        if not isinstance(value, str) or not value.strip():
            raise _HttpError(400, f"'{source}' must be a non-empty string")
        if source == "path":
            return value
        if source == "spec":
            from repro.bench.mcnc import spec_by_name

            try:
                return spec_by_name(value)
            except ReproError as exc:
                raise _HttpError(400, str(exc)) from None
        # inline BLIF text: parse off-loop, fail fast with a real message
        from repro.network.blif import parse_blif

        return await asyncio.get_running_loop().run_in_executor(
            None, parse_blif, value
        )

    async def _stream_events(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        # probe first so an unknown id is a clean 404, not a broken stream
        self.service.job(job_id)
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Cache-Control: no-store\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        # From here on the response has started: a consumer dropping the
        # connection mid-stream (Ctrl-C on a curl, a dead dashboard tab)
        # surfaces as BrokenPipeError / ConnectionResetError from the
        # writes — that is the client's normal way of unsubscribing, so
        # end the stream quietly instead of letting the error bubble up
        # into the 500 handler (which would write a second response into
        # a dead socket and log a server-side traceback for routine
        # disconnects).  The event generator is closed explicitly so its
        # condition-variable wait is torn down now, not at GC time.
        events = self.service.events(job_id)
        try:
            await writer.drain()
            async for event in events:
                writer.write((json.dumps(event) + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away mid-stream; nothing left to tell it
        finally:
            await events.aclose()
