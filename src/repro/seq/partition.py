"""Sequential partitioning and steady-state probability estimation.

The paper's power estimator cannot run exact symbolic analysis over
sequential feedback, so it cuts the circuit into combinational blocks
at a (heuristically minimised) feedback vertex set, treating cut latch
outputs as new primary inputs (Figure 7).  Non-feedback latch outputs
are determined by upstream logic, so only the feedback latches need
iterated probabilities.

:func:`sequential_probabilities` combines the two: it computes node
signal probabilities by damped fixed-point iteration over the feedback
latch probabilities, propagating exactly through the acyclic remainder
each round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import SequentialError
from repro.network.netlist import GateType, LogicNetwork
from repro.network.topo import transitive_fanin
from repro.power.probability import ProbabilityResult, node_probabilities
from repro.seq.mfvs import MfvsResult, mfvs, verify_feedback_set
from repro.seq.sgraph import SGraph, extract_sgraph


@dataclass
class CombinationalBlock:
    """One combinational block of the partition."""

    name: str
    outputs: List[str]  # roots: latch data inputs and/or PO drivers
    nodes: Set[str]
    pseudo_inputs: List[str]  # PIs + latch outputs feeding this block

    @property
    def n_inputs(self) -> int:
        return len(self.pseudo_inputs)


@dataclass
class PartitionResult:
    """Partition of a sequential circuit into combinational blocks."""

    sgraph: SGraph
    mfvs_result: MfvsResult
    feedback_latches: List[str]
    blocks: List[CombinationalBlock]

    @property
    def n_feedback(self) -> int:
        return len(self.feedback_latches)

    def max_block_inputs(self) -> int:
        return max((b.n_inputs for b in self.blocks), default=0)


def partition_sequential(
    network: LogicNetwork,
    method: str = "greedy",
    enhanced: bool = True,
) -> PartitionResult:
    """Cut latch feedback with (enhanced) MFVS and enumerate the blocks.

    Each latch data input and each PO driver roots a block; blocks whose
    cones overlap are merged, which mirrors the "disjoint combinational
    blocks" of the paper's Figure 6 pipeline.
    """
    graph = extract_sgraph(network)
    result = mfvs(graph, method=method, enhanced=enhanced)
    if not verify_feedback_set(graph, result.feedback):
        raise SequentialError("MFVS result failed verification")  # pragma: no cover

    # Roots: every latch data input and PO driver.
    roots: List[Tuple[str, str]] = []
    for latch in network.latches:
        roots.append((f"latch:{latch.name}", latch.fanins[0]))
    for po, driver in network.outputs:
        roots.append((f"po:{po}", driver))

    # Union-find over roots via cone overlap on logic nodes.
    cones: Dict[str, Set[str]] = {}
    for label, driver in roots:
        cones[label] = transitive_fanin(network, [driver], include_sources=False)

    parent: Dict[str, str] = {label: label for label, _ in roots}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    labels = [label for label, _ in roots]
    node_owner: Dict[str, str] = {}
    for label in labels:
        for n in cones[label]:
            if n in node_owner:
                union(label, node_owner[n])
            else:
                node_owner[n] = label

    groups: Dict[str, List[str]] = {}
    for label in labels:
        groups.setdefault(find(label), []).append(label)

    driver_of_label = dict(roots)
    blocks: List[CombinationalBlock] = []
    for gi, (rep, members) in enumerate(sorted(groups.items())):
        nodes: Set[str] = set()
        outputs: List[str] = []
        for label in members:
            nodes |= cones[label]
            outputs.append(driver_of_label[label])
        sources = transitive_fanin(
            network, [driver_of_label[m] for m in members], include_sources=True
        ) - nodes
        pseudo_inputs = sorted(
            s
            for s in sources
            if network.nodes[s].gate_type in (GateType.INPUT, GateType.LATCH)
        )
        blocks.append(
            CombinationalBlock(
                name=f"block{gi}",
                outputs=sorted(set(outputs)),
                nodes=nodes,
                pseudo_inputs=pseudo_inputs,
            )
        )

    return PartitionResult(
        sgraph=graph,
        mfvs_result=result,
        feedback_latches=list(result.feedback),
        blocks=blocks,
    )


@dataclass
class SequentialProbabilities:
    """Fixed-point solution of latch/node signal probabilities."""

    probabilities: Dict[str, float]
    latch_probabilities: Dict[str, float]
    iterations: int
    converged: bool
    partition: Optional[PartitionResult] = None


def sequential_probabilities(
    network: LogicNetwork,
    input_probs: Optional[Mapping[str, float]] = None,
    method: str = "auto",
    tolerance: float = 1e-4,
    max_iterations: int = 64,
    damping: float = 0.5,
    mfvs_method: str = "greedy",
    enhanced: bool = True,
    seed: int = 0,
) -> SequentialProbabilities:
    """Steady-state signal probabilities of a sequential network.

    Latch outputs start at their reset-value prior (init 1 -> 1.0,
    init 0 -> 0.0, unknown -> 0.5) and are updated toward the
    probability of their data input with ``damping`` until the largest
    change drops below ``tolerance``.
    """
    if input_probs is None:
        input_probs = {name: 0.5 for name in network.inputs}
    latches = network.latches
    if not latches:
        res = node_probabilities(network, input_probs, method=method, seed=seed)
        return SequentialProbabilities(
            probabilities=res.probabilities,
            latch_probabilities={},
            iterations=0,
            converged=True,
        )

    partition = partition_sequential(network, method=mfvs_method, enhanced=enhanced)

    latch_probs: Dict[str, float] = {}
    for latch in latches:
        if latch.init_value == 1:
            latch_probs[latch.name] = 1.0
        elif latch.init_value == 0:
            latch_probs[latch.name] = 0.0
        else:
            latch_probs[latch.name] = 0.5

    probs: Dict[str, float] = {}
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        combined = dict(input_probs)
        combined.update(latch_probs)
        res = node_probabilities(network, combined, method=method, seed=seed)
        probs = res.probabilities
        delta = 0.0
        for latch in latches:
            target = probs[latch.fanins[0]]
            current = latch_probs[latch.name]
            updated = current + damping * (target - current)
            delta = max(delta, abs(updated - current))
            latch_probs[latch.name] = updated
        if delta < tolerance:
            converged = True
            break
    probs.update(latch_probs)
    return SequentialProbabilities(
        probabilities=probs,
        latch_probabilities=latch_probs,
        iterations=iterations,
        converged=converged,
        partition=partition,
    )
