"""Sequential substrate: s-graphs, MFVS (with the paper's symmetry
transformation), partitioning and fixed-point probabilities."""

from repro.seq.sgraph import SGraph, extract_sgraph, sgraph_from_edges
from repro.seq.transforms import (
    ReductionResult,
    apply_symmetry_grouping,
    apply_t0_sources_sinks,
    apply_t1_self_loops,
    apply_t2_bypass,
    figure9_graph,
    reduce_graph,
)
from repro.seq.mfvs import (
    MfvsResult,
    exact_mfvs,
    greedy_mfvs,
    mfvs,
    verify_feedback_set,
)
from repro.seq.partition import (
    CombinationalBlock,
    PartitionResult,
    SequentialProbabilities,
    partition_sequential,
    sequential_probabilities,
)

__all__ = [
    "SGraph",
    "extract_sgraph",
    "sgraph_from_edges",
    "ReductionResult",
    "apply_symmetry_grouping",
    "apply_t0_sources_sinks",
    "apply_t1_self_loops",
    "apply_t2_bypass",
    "figure9_graph",
    "reduce_graph",
    "MfvsResult",
    "exact_mfvs",
    "greedy_mfvs",
    "mfvs",
    "verify_feedback_set",
    "CombinationalBlock",
    "PartitionResult",
    "SequentialProbabilities",
    "partition_sequential",
    "sequential_probabilities",
]
