"""Minimum feedback vertex set solvers.

MFVS is NP-complete; the paper approximates it with the testing-domain
heuristic of [2] enhanced by the symmetry transformation.  We provide:

* :func:`greedy_mfvs` — reduce (T0/T1/T2 [+ symmetry]) to a fixpoint,
  then repeatedly cut the most profitable (super)vertex.  Supervertices
  are processed in descending weight order, as the paper prescribes.
* :func:`exact_mfvs` — branch-and-bound, exact for small graphs; used
  to validate the heuristic in tests and ablations.
* :func:`mfvs` — dispatcher with an ``enhanced`` switch (symmetry
  on/off) so benches can measure the fourth transformation's value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import SequentialError
from repro.seq.sgraph import SGraph
from repro.seq.transforms import ReductionResult, reduce_graph


@dataclass
class MfvsResult:
    """A feedback vertex set over the original flip-flop names."""

    feedback: List[str]
    method: str
    reductions: Dict[str, int] = field(default_factory=dict)
    supervertices_cut: int = 0

    @property
    def size(self) -> int:
        return len(self.feedback)


def _cut_score(graph: SGraph, v: str) -> Tuple[float, int, str]:
    """Greedy ranking: prefer heavy supervertices first (paper's rule),
    then high cycle connectivity per unit weight."""
    indeg = len(graph.pred[v])
    outdeg = len(graph.succ[v])
    return (
        float(graph.weight[v]),
        indeg * outdeg,
        v,  # deterministic tie-break
    )


def greedy_mfvs(graph: SGraph, use_symmetry: bool = True) -> MfvsResult:
    """Reduction-based greedy FVS (enhanced MFVS when ``use_symmetry``)."""
    reduction = reduce_graph(graph, use_symmetry=use_symmetry)
    g = reduction.graph
    feedback: List[str] = list(reduction.forced_fvs)
    counts = dict(reduction.applications)
    supers_cut = 0

    while g.n_vertices > 0:
        if g.is_acyclic():
            break
        # Process supervertices in descending weight; among equals take
        # the best-connected vertex.
        candidates = [v for v in g.vertices if g.succ[v] or g.pred[v]]
        if not candidates:
            break
        pick = max(candidates, key=lambda v: _cut_score(g, v))
        if g.weight[pick] > 1:
            supers_cut += 1
        feedback.extend(g.members[pick])
        g.remove_vertex(pick)
        inner = reduce_graph(g, use_symmetry=use_symmetry)
        g = inner.graph
        feedback.extend(inner.forced_fvs)
        for k, n in inner.applications.items():
            counts[k] = counts.get(k, 0) + n

    return MfvsResult(
        feedback=sorted(set(feedback)),
        method="greedy-enhanced" if use_symmetry else "greedy",
        reductions=counts,
        supervertices_cut=supers_cut,
    )


def exact_mfvs(graph: SGraph, max_vertices: int = 24) -> MfvsResult:
    """Exact weighted MFVS by branch-and-bound (small graphs only).

    The bound is the total member count of the best solution so far;
    reductions are applied at every node of the search tree, which makes
    the search practical up to a couple dozen vertices.
    """
    if graph.n_vertices > max_vertices:
        raise SequentialError(
            f"exact MFVS limited to {max_vertices} vertices; "
            f"graph has {graph.n_vertices}"
        )

    best: List[Optional[List[str]]] = [None]

    def cost(sol: List[str]) -> int:
        return len(sol)

    def search(g: SGraph, picked: List[str]) -> None:
        reduction = reduce_graph(g, use_symmetry=False)
        picked = picked + reduction.forced_fvs
        g = reduction.graph
        if best[0] is not None and cost(picked) >= cost(best[0]):
            return
        if g.is_acyclic():
            if best[0] is None or cost(picked) < cost(best[0]):
                best[0] = picked
            return
        # Branch on a shortest cycle found by BFS from some vertex.
        cycle = _find_cycle(g)
        if cycle is None:  # pragma: no cover - acyclic handled above
            if best[0] is None or cost(picked) < cost(best[0]):
                best[0] = picked
            return
        for v in cycle:
            sub = g.subgraph_without([v])
            search(sub, picked + list(g.members[v]))

    search(graph.copy(), [])
    assert best[0] is not None
    return MfvsResult(feedback=sorted(set(best[0])), method="exact")


def _find_cycle(graph: SGraph) -> Optional[List[str]]:
    """A shortest directed cycle (vertex list), or None when acyclic."""
    best_cycle: Optional[List[str]] = None
    for start in graph.vertices:
        # BFS from start over successors, looking for a path back.
        parent: Dict[str, Optional[str]] = {start: None}
        queue = [start]
        found = False
        while queue and not found:
            u = queue.pop(0)
            for w in graph.succ[u]:
                if w == start:
                    # reconstruct path start .. u
                    path = [u]
                    cur = parent[u]
                    while cur is not None:
                        path.append(cur)
                        cur = parent[cur]
                    path.reverse()
                    cycle = path
                    if best_cycle is None or len(cycle) < len(best_cycle):
                        best_cycle = cycle
                    found = True
                    break
                if w not in parent:
                    parent[w] = u
                    queue.append(w)
        if best_cycle is not None and len(best_cycle) == 1:
            break
    return best_cycle


def mfvs(
    graph: SGraph,
    method: str = "greedy",
    enhanced: bool = True,
    exact_limit: int = 24,
) -> MfvsResult:
    """Dispatch: ``greedy`` (default, paper's enhanced heuristic),
    ``exact``, or ``auto`` (exact when small enough)."""
    if method == "exact":
        return exact_mfvs(graph, max_vertices=exact_limit)
    if method == "auto":
        if graph.n_vertices <= exact_limit:
            return exact_mfvs(graph, max_vertices=exact_limit)
        return greedy_mfvs(graph, use_symmetry=enhanced)
    if method == "greedy":
        return greedy_mfvs(graph, use_symmetry=enhanced)
    raise SequentialError(f"unknown MFVS method {method!r}")


def verify_feedback_set(graph: SGraph, feedback: List[str]) -> bool:
    """True iff removing ``feedback`` leaves the graph acyclic."""
    return graph.subgraph_without(feedback).is_acyclic()
