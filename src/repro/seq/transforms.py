"""MFVS graph transformations (paper Figures 8 and 9).

The classic reductions from the partial-scan literature ([2] in the
paper) shrink an s-graph without changing its minimum feedback vertex
set:

* **T0 (sink/source removal)** — a vertex with no predecessors or no
  successors lies on no cycle; drop it (Fig. 8a/8c "ignore X").
* **T1 (self-loop)** — a vertex with a self-loop is in every feedback
  set; move it into the MFVS and delete it (Fig. 8b).
* **T2 (bypass)** — a vertex without a self-loop that has exactly one
  predecessor or exactly one successor can be bypassed: connect its
  predecessors to its successors and remove it.

The paper's contribution is a **fourth, symmetry-based transformation**
(Fig. 9): vertices with identical fanin sets *and* identical fanout
sets are interchangeable — phase-assignment duplication produces many
such twins — so they are merged into a single *weighted supervertex*.
The downstream MFVS heuristic then treats the weight as the cost of
cutting the group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.seq.sgraph import SGraph


@dataclass
class ReductionResult:
    """Outcome of exhaustively applying the reductions to a graph."""

    graph: SGraph
    forced_fvs: List[str]  # original flip-flop names forced by self-loops
    applications: Dict[str, int] = field(default_factory=dict)

    def total_applications(self) -> int:
        return sum(self.applications.values())


def apply_t0_sources_sinks(graph: SGraph) -> int:
    """Repeatedly delete vertices with no preds or no succs; returns count."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for v in list(graph.vertices):
            if graph.has_self_loop(v):
                continue
            if not graph.pred[v] or not graph.succ[v]:
                graph.remove_vertex(v)
                removed += 1
                changed = True
    return removed


def apply_t1_self_loops(graph: SGraph, forced: List[str]) -> int:
    """Move self-loop vertices into the forced FVS; returns count."""
    count = 0
    for v in list(graph.vertices):
        if graph.has_self_loop(v):
            forced.extend(graph.members[v])
            graph.remove_vertex(v)
            count += 1
    return count


def apply_t2_bypass(graph: SGraph) -> int:
    """Bypass single-pred or single-succ vertices; returns count.

    Bypassing may create self-loops (u -> X -> u collapses to a u
    self-loop), which a subsequent T1 pass picks up.
    """
    count = 0
    changed = True
    while changed:
        changed = False
        for v in list(graph.vertices):
            if graph.has_self_loop(v):
                continue
            preds = graph.pred[v] - {v}
            succs = graph.succ[v] - {v}
            if len(preds) == 1 or len(succs) == 1:
                graph.remove_vertex(v)
                for p in preds:
                    for s in succs:
                        graph.add_edge(p, s)
                count += 1
                changed = True
    return count


def apply_symmetry_grouping(graph: SGraph) -> int:
    """The paper's fourth transformation: merge fanin/fanout twins.

    Vertices whose predecessor sets and successor sets (excluding the
    group itself) are identical become one supervertex whose weight is
    the sum of member weights.  Returns the number of groups merged.
    """
    # Signature excludes candidate group members only when the group is
    # mutually non-adjacent; to keep it simple and sound we group
    # vertices with *identical* raw pred/succ sets (no self-loops).
    signature: Dict[Tuple[FrozenSet[str], FrozenSet[str]], List[str]] = {}
    for v in graph.vertices:
        if graph.has_self_loop(v):
            continue
        key = (frozenset(graph.pred[v]), frozenset(graph.succ[v]))
        signature.setdefault(key, []).append(v)

    # Earlier merges rename vertices, so neighbour references recorded in
    # the signatures must be chased through this map.
    rename: Dict[str, str] = {}

    def resolve(v: str) -> str:
        while v in rename:
            v = rename[v]
        return v

    merged_groups = 0
    for (preds, succs), group in signature.items():
        group = [v for v in group if v in graph.succ]
        if len(group) < 2:
            continue
        merged_groups += 1
        name = "+".join(sorted(group))
        weight = sum(graph.weight[v] for v in group)
        members: List[str] = []
        for v in group:
            members.extend(graph.members[v])
        for v in group:
            graph.remove_vertex(v)
            rename[v] = name
        graph.add_vertex(name, weight=weight, members=members)
        group_set = set(group)
        for p in preds:
            if p in group_set:
                continue
            target = resolve(p)
            if target in graph.succ:
                graph.add_edge(target, name)
        for s in succs:
            if s in group_set:
                continue
            target = resolve(s)
            if target in graph.succ:
                graph.add_edge(name, target)
        # Group members adjacent to each other produce a self-loop on
        # the supervertex, correctly signalling an internal cycle.
        if preds & group_set or succs & group_set:
            graph.add_edge(name, name)
    return merged_groups


def reduce_graph(graph: SGraph, use_symmetry: bool = True) -> ReductionResult:
    """Apply T0/T1/T2 (+ symmetry) to a fixpoint.

    The input graph is copied; the reduced copy, the forced FVS members
    and per-transformation application counts are returned.
    """
    g = graph.copy()
    forced: List[str] = []
    counts = {"t0": 0, "t1": 0, "t2": 0, "symmetry": 0}
    changed = True
    while changed:
        changed = False
        n = apply_t1_self_loops(g, forced)
        counts["t1"] += n
        changed = changed or n > 0
        n = apply_t0_sources_sinks(g)
        counts["t0"] += n
        changed = changed or n > 0
        n = apply_t2_bypass(g)
        counts["t2"] += n
        changed = changed or n > 0
        if use_symmetry:
            n = apply_symmetry_grouping(g)
            counts["symmetry"] += n
            changed = changed or n > 0
    return ReductionResult(graph=g, forced_fvs=forced, applications=counts)


def figure9_graph() -> SGraph:
    """The strongly connected example of Figure 9.

    Vertices A, B, E share identical fanins/fanouts ({C, D} both ways),
    and C, D likewise ({A, B, E} both ways); none of the classic
    transformations applies, but symmetry grouping reduces the graph to
    supervertices ABE (weight 3) and CD (weight 2).
    """
    from repro.seq.sgraph import sgraph_from_edges

    edges = []
    for x in ("A", "B", "E"):
        for y in ("C", "D"):
            edges.append((x, y))
            edges.append((y, x))
    return sgraph_from_edges(edges, vertices=["A", "B", "C", "D", "E"])
