"""s-graph extraction (paper Section 4.2.1).

An *s-graph* is a directed graph whose vertices are the flip-flops of a
sequential circuit and whose edges record structural dependencies: an
edge ``u -> v`` exists when a purely combinational path runs from the
output of latch ``u`` to the data input of latch ``v``.  MFVS-based
partitioning (Chakradhar et al., DAC '94 — reference [2]) operates on
this graph.

We keep our own tiny digraph class so the transformation and MFVS code
can mutate weights/supervertices freely without dragging in networkx.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import SequentialError
from repro.network.netlist import GateType, LogicNetwork


class SGraph:
    """Directed graph over latch names with weighted (super)vertices.

    ``weight[v]`` counts how many original flip-flops a vertex stands
    for (1 until the symmetry transformation groups vertices), and
    ``members[v]`` lists them.
    """

    def __init__(self) -> None:
        self.succ: Dict[str, Set[str]] = {}
        self.pred: Dict[str, Set[str]] = {}
        self.weight: Dict[str, int] = {}
        self.members: Dict[str, Tuple[str, ...]] = {}

    # -- construction ----------------------------------------------------
    def add_vertex(self, name: str, weight: int = 1, members: Optional[Iterable[str]] = None) -> None:
        if name in self.succ:
            raise SequentialError(f"duplicate s-graph vertex {name!r}")
        self.succ[name] = set()
        self.pred[name] = set()
        self.weight[name] = weight
        self.members[name] = tuple(members) if members is not None else (name,)

    def add_edge(self, u: str, v: str) -> None:
        if u not in self.succ or v not in self.succ:
            raise SequentialError(f"edge ({u!r}, {v!r}) references unknown vertex")
        self.succ[u].add(v)
        self.pred[v].add(u)

    def remove_vertex(self, name: str) -> None:
        for s in self.succ.pop(name):
            self.pred[s].discard(name)
        for p in self.pred.pop(name):
            self.succ[p].discard(name)
        del self.weight[name]
        del self.members[name]

    def remove_edge(self, u: str, v: str) -> None:
        self.succ[u].discard(v)
        self.pred[v].discard(u)

    # -- queries ------------------------------------------------------------
    @property
    def vertices(self) -> List[str]:
        return list(self.succ)

    @property
    def n_vertices(self) -> int:
        return len(self.succ)

    @property
    def n_edges(self) -> int:
        return sum(len(s) for s in self.succ.values())

    def has_self_loop(self, v: str) -> bool:
        return v in self.succ[v]

    def edges(self) -> List[Tuple[str, str]]:
        return [(u, v) for u, ss in self.succ.items() for v in ss]

    def copy(self) -> "SGraph":
        g = SGraph()
        for v in self.succ:
            g.add_vertex(v, self.weight[v], self.members[v])
        for u, v in self.edges():
            g.add_edge(u, v)
        return g

    def is_acyclic(self) -> bool:
        """Kahn's algorithm cycle check."""
        indeg = {v: len(self.pred[v]) for v in self.succ}
        queue = [v for v, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            v = queue.pop()
            seen += 1
            for s in self.succ[v]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    queue.append(s)
        return seen == len(self.succ)

    def subgraph_without(self, removed: Iterable[str]) -> "SGraph":
        removed_set = set(removed)
        g = SGraph()
        for v in self.succ:
            if v not in removed_set:
                g.add_vertex(v, self.weight[v], self.members[v])
        for u, v in self.edges():
            if u not in removed_set and v not in removed_set:
                g.add_edge(u, v)
        return g

    def strongly_connected_components(self) -> List[List[str]]:
        """Tarjan's SCC (iterative), in reverse topological order."""
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        result: List[List[str]] = []
        counter = [0]

        for root in self.succ:
            if root in index:
                continue
            work: List[Tuple[str, Optional[str], Iterable[str]]] = [
                (root, None, iter(self.succ[root]))
            ]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                v, parent, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, v, iter(self.succ[w])))
                        advanced = True
                        break
                    if w in on_stack:
                        low[v] = min(low[v], index[w])
                if advanced:
                    continue
                work.pop()
                if parent is not None:
                    low[parent] = min(low[parent], low[v])
                if low[v] == index[v]:
                    comp: List[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == v:
                            break
                    result.append(comp)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SGraph {self.n_vertices} vertices, {self.n_edges} edges>"


def extract_sgraph(network: LogicNetwork) -> SGraph:
    """Build the s-graph of a sequential network.

    Vertices are latch names; an edge u -> v exists when latch v's data
    cone (stopping at latch boundaries) contains latch u's output.
    """
    graph = SGraph()
    latches = network.latches
    for latch in latches:
        graph.add_vertex(latch.name)
    latch_names = {latch.name for latch in latches}
    # For each latch, walk its data input cone up to sources/latches.
    for latch in latches:
        seen: Set[str] = set()
        stack = [latch.fanins[0]]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            node = network.node(name)
            if node.gate_type is GateType.LATCH:
                graph.add_edge(name, latch.name)
                continue
            if node.gate_type.is_source:
                continue
            stack.extend(fi for fi in node.fanins if fi not in seen)
    return graph


def sgraph_from_edges(
    edges: Iterable[Tuple[str, str]], vertices: Optional[Iterable[str]] = None
) -> SGraph:
    """Convenience constructor for tests and figures."""
    g = SGraph()
    declared = list(vertices) if vertices is not None else []
    for v in declared:
        g.add_vertex(v)
    for u, v in edges:
        if u not in g.succ:
            g.add_vertex(u)
        if v not in g.succ:
            g.add_vertex(v)
        g.add_edge(u, v)
    return g
