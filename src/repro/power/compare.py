"""Static-CMOS vs domino power comparison.

Section 1 of the paper, citing Weste & Eshraghian: "Due to clock
loading and the precharging every clock cycle, domino gates can consume
up to four times the power of an equivalent static gate."  This module
quantifies that factor under our models, decomposed into its three
causes:

1. **switching asymmetry** — a domino gate pays ``p`` per cycle, a
   static gate ``2p(1-p)`` (only on changes);
2. **clock loading** — every domino cell drives its precharge/evaluate
   clock pins every cycle;
3. **phase-assignment duplication** — the inverter-free requirement
   duplicates logic that a static implementation (inverters allowed)
   keeps single.

The static reference is a zero-delay model too; real static CMOS also
glitches (Property 2.2 says domino does not), which would *raise*
static power — so the reported ratio is an upper-ish bound on domino's
disadvantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.network.netlist import GateType, LogicNetwork
from repro.phase import PhaseAssignment
from repro.power.activity import static_switching
from repro.power.estimator import DominoPowerModel, PhaseEvaluator
from repro.power.probability import node_probabilities


@dataclass
class StaticVsDominoReport:
    """Power of one circuit under static vs domino implementation."""

    static_power: float
    domino_power: float
    domino_switching: float
    domino_clock: float
    domino_boundary: float
    static_gates: int
    domino_gates: int
    static_andor_gates: int = 0

    @property
    def ratio(self) -> float:
        """Domino power divided by static power (paper: up to ~4x)."""
        if self.static_power == 0:
            return float("inf")
        return self.domino_power / self.static_power

    @property
    def duplication_factor(self) -> float:
        """Domino AND/OR instances per static AND/OR gate — the area
        cost of the inverter-free requirement (inverters excluded from
        the static count because they dissolve in the domino block)."""
        base = self.static_andor_gates or self.static_gates
        if base == 0:
            return 1.0
        return self.domino_gates / base


def compare_static_vs_domino(
    network: LogicNetwork,
    input_probs: Optional[Mapping[str, float]] = None,
    model: Optional[DominoPowerModel] = None,
    assignment: Optional[PhaseAssignment] = None,
    method: str = "auto",
    seed: int = 0,
) -> StaticVsDominoReport:
    """Compare a static-CMOS realisation against a domino realisation.

    The static reference implements the network as-is (inverters are
    fine in static logic) with each gate switching ``2p(1-p) * C``.
    The domino realisation uses the given phase ``assignment`` (default:
    the min-area choice of all-positive) through the usual estimator,
    including clock load and boundary inverters.
    """
    from repro.network.ops import cleanup, to_aoi

    aoi = cleanup(to_aoi(network))
    model = model or DominoPowerModel(clock_cap_per_gate=0.25)

    probs = node_probabilities(aoi, input_probs=input_probs, method=method, seed=seed)
    static_power = 0.0
    static_gates = 0
    static_andor = 0
    for node in aoi.gates:
        p = probs.probabilities.get(node.name)
        if p is None:
            continue
        static_gates += 1
        if node.gate_type in (GateType.AND, GateType.OR):
            static_andor += 1
        cap = model.gate_cap + model.cap_per_fanin * len(node.fanins)
        static_power += static_switching(p) * cap

    evaluator = PhaseEvaluator(
        aoi, input_probs=input_probs, model=model, method=method, seed=seed
    )
    if assignment is None:
        assignment = PhaseAssignment.all_positive(aoi.output_names())
    breakdown = evaluator.breakdown(assignment)

    return StaticVsDominoReport(
        static_power=static_power,
        domino_power=breakdown.total,
        domino_switching=breakdown.domino,
        domino_clock=breakdown.clock,
        domino_boundary=breakdown.input_inverters + breakdown.output_inverters,
        static_gates=static_gates,
        domino_gates=breakdown.n_gates,
        static_andor_gates=static_andor,
    )
