"""Unit-delay glitch analysis (paper Property 2.2).

Property 2.2: *domino gates never glitch* — once a gate discharges it
cannot recharge until the next precharge, so zero-delay switching
counts are exact for domino blocks.  Static CMOS has no such luxury:
unequal path delays produce spurious transitions that zero-delay
analysis misses entirely.

This module quantifies that difference with a unit-delay time-frame
simulator: when the inputs step from one vector to the next, every
gate re-evaluates one time unit after its fanins, and the output may
wiggle several times before settling.  Counting all transitions gives
the glitch-inclusive activity; comparing against the zero-delay count
isolates the glitch power a static implementation would pay and a
domino implementation provably does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.errors import PowerError
from repro.network.netlist import GateType, LogicNetwork
from repro.network.topo import depth as network_depth
from repro.power.probability import random_source_batch, simulate_batch


@dataclass
class GlitchReport:
    """Transition accounting for a static implementation of a network."""

    zero_delay_transitions: float  # per cycle, summed over gates
    unit_delay_transitions: float  # per cycle, including glitches
    per_node_glitches: Dict[str, float]
    n_cycles: int

    @property
    def glitch_transitions(self) -> float:
        return self.unit_delay_transitions - self.zero_delay_transitions

    @property
    def glitch_fraction(self) -> float:
        """Fraction of all transitions that are spurious."""
        if self.unit_delay_transitions == 0:
            return 0.0
        return self.glitch_transitions / self.unit_delay_transitions


def unit_delay_glitch_report(
    network: LogicNetwork,
    input_probs: Optional[Mapping[str, float]] = None,
    n_cycles: int = 1024,
    seed: int = 0,
) -> GlitchReport:
    """Measure zero-delay vs unit-delay transition counts.

    The network is treated as a *static* implementation: every gate has
    one unit of delay.  For each consecutive input-vector pair the
    simulator plays out ``depth + 1`` time frames and counts every
    output change of every gate (vectorised over all cycle pairs).
    Sequential networks are rejected — partition first.
    """
    if not network.is_combinational:
        raise PowerError("glitch analysis requires a combinational network")
    if n_cycles < 2:
        raise PowerError("need at least 2 cycles to observe transitions")
    if input_probs is None:
        input_probs = {pi: 0.5 for pi in network.inputs}

    batch = random_source_batch(network, input_probs, n_cycles, seed=seed)
    order = [
        name
        for name in network.topological_order()
        if not network.nodes[name].gate_type.is_source
    ]
    gates = [name for name in order if network.nodes[name].gate_type is not GateType.LATCH]

    # Zero-delay reference: settled values each cycle.
    settled = simulate_batch(network, batch)
    zero_delay = 0.0
    for name in gates:
        arr = settled[name]
        zero_delay += float(np.sum(arr[1:] != arr[:-1]))

    # Unit-delay time frames.  State: current waveform value per node,
    # initialised to the settled values of cycle 0; then for each cycle
    # step the inputs to the next vector and propagate frame by frame.
    n_pairs = n_cycles - 1
    current: Dict[str, np.ndarray] = {}
    for name in network.inputs:
        current[name] = batch[name][:-1].copy()
    for name in gates:
        current[name] = settled[name][:-1].copy()

    next_inputs = {name: batch[name][1:] for name in network.inputs}
    transitions: Dict[str, np.ndarray] = {
        name: np.zeros(n_pairs, dtype=np.int64) for name in gates
    }

    frames = network_depth(network) + 1
    # Apply the input step at frame 0.
    for name in network.inputs:
        current[name] = next_inputs[name]
    for _frame in range(frames):
        new_values: Dict[str, np.ndarray] = {}
        for name in gates:
            node = network.nodes[name]
            fanin_arrays = [current[fi] for fi in node.fanins]
            t = node.gate_type
            if t is GateType.AND:
                val = np.logical_and.reduce(fanin_arrays)
            elif t is GateType.OR:
                val = np.logical_or.reduce(fanin_arrays)
            elif t is GateType.NOT:
                val = ~fanin_arrays[0]
            elif t is GateType.BUF:
                val = fanin_arrays[0]
            elif t is GateType.NAND:
                val = ~np.logical_and.reduce(fanin_arrays)
            elif t is GateType.NOR:
                val = ~np.logical_or.reduce(fanin_arrays)
            elif t is GateType.XOR:
                val = np.logical_xor.reduce(fanin_arrays)
            elif t is GateType.XNOR:
                val = ~np.logical_xor.reduce(fanin_arrays)
            elif t is GateType.MUX:
                sel, d0, d1 = fanin_arrays
                val = np.where(sel, d1, d0)
            elif t is GateType.SOP:
                from repro.power.probability import _sop_batch

                val = _sop_batch(node, fanin_arrays, n_pairs)
            elif t in (GateType.CONST0, GateType.CONST1):
                val = np.full(n_pairs, t is GateType.CONST1, dtype=bool)
            else:  # pragma: no cover
                raise PowerError(f"cannot glitch-simulate {t.value}")
            new_values[name] = val
        for name in gates:
            transitions[name] += (new_values[name] != current[name]).astype(np.int64)
            current[name] = new_values[name]

    unit_delay = float(sum(int(tr.sum()) for tr in transitions.values()))
    per_node = {}
    for name in gates:
        settled_changes = float(np.sum(settled[name][1:] != settled[name][:-1]))
        per_node[name] = (float(transitions[name].sum()) - settled_changes) / n_pairs

    return GlitchReport(
        zero_delay_transitions=zero_delay / n_pairs,
        unit_delay_transitions=unit_delay / n_pairs,
        per_node_glitches=per_node,
        n_cycles=n_cycles,
    )


def domino_glitch_check(impl, input_probs=None, n_cycles: int = 512, seed: int = 0) -> bool:
    """Verify Property 2.2 on a domino implementation.

    A domino gate's evaluation is monotonic within a cycle: with all
    gates evaluating on settled (zero-delay) values, the per-cycle
    charge count equals the firing count — there is no frame-to-frame
    wiggle to add.  The check recomputes each gate's value from partial
    (frame-limited) fanin information and asserts monotone 0->1
    behaviour: a gate that is 1 at frame t stays 1 at frame t+1.
    """
    from repro.network.duplication import DominoImplementation
    from repro.power.simulator import evaluate_implementation_batch

    assert isinstance(impl, DominoImplementation)
    network = impl.network
    if input_probs is None:
        input_probs = {s: 0.5 for s in network.sources()}
    batch = random_source_batch(network, input_probs, n_cycles, seed=seed)

    # Frame-by-frame monotone evaluation: gates start precharged (0 at
    # the buffered output) and may only rise as fanins arrive.
    gate_order = impl.topological_gate_order()
    frames = len(gate_order) + 1
    values = {gate.key: np.zeros(n_cycles, dtype=bool) for gate in gate_order}
    final = evaluate_implementation_batch(impl, batch)
    for _frame in range(frames):
        for gate in gate_order:
            fanin_vals = []
            for ref in gate.fanins:
                if ref.kind == "gate":
                    fanin_vals.append(values[ref.key])
                else:
                    from repro.power.simulator import _ref_values

                    fanin_vals.append(_ref_values(ref, batch, values, n_cycles))
            if gate.gate_type is GateType.AND:
                new = np.logical_and.reduce(fanin_vals)
            else:
                new = np.logical_or.reduce(fanin_vals)
            # Monotonicity: once high, stays high within the cycle.
            if np.any(values[gate.key] & ~new):
                return False
            values[gate.key] = values[gate.key] | new
    # And the monotone fixpoint equals the zero-delay result.
    for key, arr in final.items():
        if not np.array_equal(values[key], arr):
            return False
    return True
