"""Signal-probability computation for logic networks.

Two engines:

* **Exact** — BDD evaluation with the paper's domino variable ordering
  (Section 4.2.2).  Exact under the independent-input model.
* **Monte-Carlo** — vectorised random simulation, used both as a
  cross-check and as the automatic fallback when a cone blows the BDD
  node budget.

Latch outputs are treated as additional inputs; sequential circuits
should be partitioned first (:mod:`repro.seq.partition`), which also
supplies latch-output probabilities via fixed-point iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import BddError, PowerError
from repro.network.netlist import GateType, LogicNetwork
from repro.bdd.builder import build_node_bdds


def uniform_input_probabilities(
    network: LogicNetwork, probability: float = 0.5
) -> Dict[str, float]:
    """Same probability for every PI and latch output (the paper uses 0.5)."""
    probs = {name: probability for name in network.inputs}
    for latch in network.latches:
        probs[latch.name] = probability
    return probs


def simulate_batch(
    network: LogicNetwork, source_values: Mapping[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Vectorised zero-delay evaluation over a batch of vectors.

    ``source_values`` maps every PI (and latch output) name to a boolean
    array of shape ``(batch,)``.  Returns arrays for every node.
    """
    values: Dict[str, np.ndarray] = {}
    batch = None
    for name, arr in source_values.items():
        arr = np.asarray(arr, dtype=bool)
        values[name] = arr
        batch = len(arr) if batch is None else batch
        if len(arr) != batch:
            raise PowerError("inconsistent batch sizes in source_values")
    if batch is None:
        raise PowerError("no source values supplied")

    for name in network.topological_order():
        if name in values:
            continue
        node = network.nodes[name]
        t = node.gate_type
        if t is GateType.INPUT or t is GateType.LATCH:
            raise PowerError(f"missing batch values for source {name!r}")
        if t is GateType.CONST0:
            values[name] = np.zeros(batch, dtype=bool)
            continue
        if t is GateType.CONST1:
            values[name] = np.ones(batch, dtype=bool)
            continue
        fanin_arrays = [values[fi] for fi in node.fanins]
        if t is GateType.BUF:
            values[name] = fanin_arrays[0]
        elif t is GateType.NOT:
            values[name] = ~fanin_arrays[0]
        elif t is GateType.AND:
            values[name] = np.logical_and.reduce(fanin_arrays)
        elif t is GateType.OR:
            values[name] = np.logical_or.reduce(fanin_arrays)
        elif t is GateType.NAND:
            values[name] = ~np.logical_and.reduce(fanin_arrays)
        elif t is GateType.NOR:
            values[name] = ~np.logical_or.reduce(fanin_arrays)
        elif t is GateType.XOR:
            values[name] = np.logical_xor.reduce(fanin_arrays)
        elif t is GateType.XNOR:
            values[name] = ~np.logical_xor.reduce(fanin_arrays)
        elif t is GateType.MUX:
            sel, d0, d1 = fanin_arrays
            values[name] = np.where(sel, d1, d0)
        elif t is GateType.SOP:
            values[name] = _sop_batch(node, fanin_arrays, batch)
        else:  # pragma: no cover - exhaustive over GateType
            raise PowerError(f"cannot simulate node {name} of type {t.value}")
    return values


def _sop_batch(node, fanin_arrays: List[np.ndarray], batch: int) -> np.ndarray:
    cover = node.cover
    acc = np.zeros(batch, dtype=bool)
    for cube in cover.cubes:
        term = np.ones(batch, dtype=bool)
        for lit, arr in zip(cube, fanin_arrays):
            if lit == "1":
                term &= arr
            elif lit == "0":
                term &= ~arr
        acc |= term
    if cover.output_value == "0":
        acc = ~acc
    return acc


def random_source_batch(
    network: LogicNetwork,
    input_probs: Mapping[str, float],
    n_vectors: int,
    seed: int = 0,
    correlation: float = 0.0,
) -> Dict[str, np.ndarray]:
    """Random boolean vectors distributed per the given probabilities.

    ``correlation`` adds lag-1 temporal correlation per input: each
    cycle the signal *holds* its previous value with probability
    ``correlation`` and redraws otherwise.  The stationary distribution
    keeps the requested signal probability, but transition rates drop
    by a factor of ``1 - correlation`` — which affects *static*
    boundary inverters while leaving domino switching untouched
    (domino gates pay per evaluation, not per change).
    """
    if not (0.0 <= correlation < 1.0):
        raise PowerError(f"correlation must be in [0, 1), got {correlation}")
    rng = np.random.default_rng(seed)
    batch: Dict[str, np.ndarray] = {}
    names = list(network.inputs) + [latch.name for latch in network.latches]
    for name in names:
        p = input_probs.get(name, 0.5)
        fresh = rng.random(n_vectors) < p
        if correlation == 0.0 or n_vectors <= 1:
            batch[name] = fresh
            continue
        hold = rng.random(n_vectors) < correlation
        hold[0] = False
        # A held position repeats the most recent redraw: index each
        # position by its latest non-hold predecessor.
        idx = np.arange(n_vectors)
        redraw_idx = np.where(~hold, idx, -1)
        last_redraw = np.maximum.accumulate(redraw_idx)
        batch[name] = fresh[last_redraw]
    return batch


def monte_carlo_probabilities(
    network: LogicNetwork,
    input_probs: Mapping[str, float],
    n_vectors: int = 4096,
    seed: int = 0,
) -> Dict[str, float]:
    """Signal probability of every node by random simulation."""
    batch = random_source_batch(network, input_probs, n_vectors, seed)
    values = simulate_batch(network, batch)
    return {name: float(arr.mean()) for name, arr in values.items()}


def bdd_probabilities(
    network: LogicNetwork,
    input_probs: Mapping[str, float],
    ordering: str = "domino",
    max_nodes: int = 2_000_000,
) -> Dict[str, float]:
    """Exact signal probability of every node reachable from the POs
    (and from latch data inputs, for sequential networks).

    Builds BDDs for all nodes in those cones under the requested
    variable ordering and evaluates P(node=1) on the shared DAG.
    Raises :class:`~repro.errors.BddError` past the node budget.
    """
    bdds = build_node_bdds(
        network, roots=_probability_roots(network), ordering=ordering, max_nodes=max_nodes
    )
    return bdds.probabilities(input_probs)


def _probability_roots(network: LogicNetwork) -> List[str]:
    """PO drivers plus latch data inputs, deduplicated in order."""
    roots = list(network.output_drivers())
    roots.extend(latch.fanins[0] for latch in network.latches)
    return list(dict.fromkeys(roots))


@dataclass
class ProbabilityResult:
    """Node probabilities plus a record of how they were obtained."""

    probabilities: Dict[str, float]
    method: str  # "bdd" or "monte-carlo"
    bdd_nodes: int = 0
    n_vectors: int = 0


def node_probabilities(
    network: LogicNetwork,
    input_probs: Optional[Mapping[str, float]] = None,
    method: str = "auto",
    ordering: str = "domino",
    max_nodes: int = 500_000,
    n_vectors: int = 4096,
    seed: int = 0,
) -> ProbabilityResult:
    """Compute node signal probabilities with automatic fallback.

    ``method`` is ``"bdd"``, ``"monte-carlo"`` or ``"auto"`` (try BDD,
    fall back to Monte-Carlo if the node budget is exceeded).
    """
    if input_probs is None:
        input_probs = uniform_input_probabilities(network)
    if method not in ("auto", "bdd", "monte-carlo"):
        raise PowerError(f"unknown probability method {method!r}")
    if method in ("auto", "bdd"):
        try:
            bdds = build_node_bdds(
                network,
                roots=_probability_roots(network),
                ordering=ordering,
                max_nodes=max_nodes,
            )
            probs = bdds.probabilities(input_probs)
            # Sources not inside any cone still deserve a probability.
            for name, p in input_probs.items():
                probs.setdefault(name, p)
            return ProbabilityResult(
                probabilities=probs, method="bdd", bdd_nodes=bdds.manager.node_count
            )
        except BddError:
            if method == "bdd":
                raise
    probs = monte_carlo_probabilities(network, input_probs, n_vectors, seed)
    return ProbabilityResult(probabilities=probs, method="monte-carlo", n_vectors=n_vectors)
