"""Fast phase-aware domino power estimation (paper Section 4.2).

The estimator evaluates the paper's objective

    P(assignment) = sum_i  S_i * C_i * P_i   over the domino block

(plus optional boundary-inverter and clock-load terms) for *many*
candidate phase assignments cheaply.  The enabling observation is that
output phases never change node *functions* — only which polarity of
each node is materialised.  So:

1. Compute each node's positive-polarity signal probability once
   (:mod:`repro.power.probability`); the negative realisation has
   probability ``1 - p`` (paper Property 4.1).
2. Precompute, for every primary output ``o`` and phase ``q``, the set
   ``S(o, q)`` of (node, polarity) gates its cone materialises, as a
   numpy boolean mask over the 2N-element polarity universe.
3. The power/area of an arbitrary assignment is then a mask union plus
   a dot product — no re-synthesis inside the optimisation loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import PowerError
from repro.network.duplication import Polarity, Ref, phase_transform
from repro.network.netlist import GateType, LogicNetwork
from repro.phase import Phase, PhaseAssignment
from repro.power.activity import (
    boundary_input_inverter_switching,
    boundary_output_inverter_switching,
)
from repro.power.probability import ProbabilityResult, node_probabilities


@dataclass
class DominoPowerModel:
    """Electrical model parameters for the estimator and simulator.

    All capacitances are in arbitrary units; the paper's experiments use
    ``gate_cap = 1`` and a neutral gate penalty.

    Attributes
    ----------
    gate_cap:
        Output capacitance C_i of a domino gate.
    cap_per_fanin:
        Extra output-stage capacitance per gate input (0 disables).
    inverter_cap:
        Capacitance of a static boundary inverter.
    clock_cap_per_gate:
        Clock-pin load switched every cycle by every domino gate —
        models the domino clock-loading cost; it makes area duplication
        directly visible to the power objective.
    and_series_penalty:
        The paper's P_i speed/energy penalty per extra series transistor
        in AND-type gates.  Gate factor = 1 + penalty * (fanin - 1).
    include_boundary_inverters:
        Count the static inverters at block inputs/outputs (Figure 5
        counts them; the Section 5 objective uses the block only).
    current_scale:
        Multiplier converting switched-capacitance units per cycle into
        the reported "mA" figure (PowerMill substitute calibration).
    """

    gate_cap: float = 1.0
    cap_per_fanin: float = 0.0
    inverter_cap: float = 1.0
    clock_cap_per_gate: float = 0.0
    and_series_penalty: float = 0.0
    include_boundary_inverters: bool = True
    current_scale: float = 1.0

    def gate_factor(self, gate_type: GateType, n_fanins: int) -> float:
        """Capacitance * penalty factor of a domino gate."""
        cap = self.gate_cap + self.cap_per_fanin * n_fanins
        if gate_type is GateType.AND and n_fanins > 1:
            cap *= 1.0 + self.and_series_penalty * (n_fanins - 1)
        return cap


@dataclass
class PowerBreakdown:
    """Decomposed power estimate for one phase assignment."""

    domino: float
    input_inverters: float
    output_inverters: float
    clock: float
    n_gates: int
    n_input_inverters: int
    n_output_inverters: int
    probability_method: str = "bdd"

    @property
    def total(self) -> float:
        return self.domino + self.input_inverters + self.output_inverters + self.clock

    @property
    def area_cells(self) -> int:
        """Unmapped cell-count proxy: gates plus boundary inverters."""
        return self.n_gates + self.n_input_inverters + self.n_output_inverters


class PolaritySpace:
    """Polarity-resolved view of an AOI network.

    Enumerates the universe of possible domino gates — every AND/OR node
    in both polarities — with their fanin references, and resolves
    NOT/BUF chains away.  This is the shared machinery behind both the
    estimator masks and consistency checks against
    :func:`~repro.network.duplication.phase_transform`.
    """

    def __init__(self, network: LogicNetwork):
        self.network = network
        offenders = [
            n.name
            for n in network.gates
            if n.gate_type not in (GateType.AND, GateType.OR, GateType.NOT, GateType.BUF)
        ]
        if offenders:
            raise PowerError(
                f"PolaritySpace requires an AOI network; offending nodes: {offenders[:5]}"
            )
        self.gate_nodes: List[str] = [
            n.name for n in network.gates if n.gate_type in (GateType.AND, GateType.OR)
        ]
        self.gate_index: Dict[Tuple[str, Polarity], int] = {}
        for i, name in enumerate(self.gate_nodes):
            self.gate_index[(name, Polarity.POS)] = 2 * i
            self.gate_index[(name, Polarity.NEG)] = 2 * i + 1
        self.n_slots = 2 * len(self.gate_nodes)

        self.sources: List[str] = network.sources()
        self.source_index: Dict[str, int] = {s: i for i, s in enumerate(self.sources)}

        self._ref_memo: Dict[Tuple[str, Polarity], Ref] = {}
        self._gate_fanins: Dict[Tuple[str, Polarity], List[Ref]] = {}
        self._resolve_all()

    # -- resolution ------------------------------------------------------
    def resolve(self, name: str, pol: Polarity) -> Ref:
        return self._ref_memo[(name, pol)]

    def _resolve_all(self) -> None:
        net = self.network
        order = net.topological_order()
        memo = self._ref_memo
        for name in order:
            node = net.nodes[name]
            t = node.gate_type
            for pol in (Polarity.POS, Polarity.NEG):
                if t is GateType.INPUT or t is GateType.LATCH:
                    kind = "latch" if t is GateType.LATCH else "input"
                    memo[(name, pol)] = Ref(kind, name, pol)
                elif t in (GateType.CONST0, GateType.CONST1):
                    base = t is GateType.CONST1
                    val = base if pol is Polarity.POS else not base
                    memo[(name, pol)] = Ref("const", name, pol, value=val)
                elif t is GateType.NOT:
                    memo[(name, pol)] = memo[(node.fanins[0], pol.flipped)]
                elif t is GateType.BUF:
                    memo[(name, pol)] = memo[(node.fanins[0], pol)]
                else:  # AND / OR
                    self._gate_fanins[(name, pol)] = [
                        memo[(fi, pol)] for fi in node.fanins
                    ]
                    memo[(name, pol)] = Ref("gate", name, pol)

    def gate_fanins(self, key: Tuple[str, Polarity]) -> List[Ref]:
        return self._gate_fanins[key]

    def gate_type_of(self, key: Tuple[str, Polarity]) -> GateType:
        base = self.network.nodes[key[0]].gate_type
        return base if key[1] is Polarity.POS else base.dual

    # -- cone masks --------------------------------------------------------
    def cone_masks(self, root_ref: Ref) -> Tuple[np.ndarray, np.ndarray]:
        """(gate mask over the 2N universe, source-inverter mask) for the
        logic reachable from ``root_ref``."""
        gates = np.zeros(self.n_slots, dtype=bool)
        invs = np.zeros(len(self.sources), dtype=bool)
        stack = [root_ref]
        seen: Set[Tuple[str, Polarity]] = set()
        while stack:
            ref = stack.pop()
            if ref.kind == "const":
                continue
            if ref.kind in ("input", "latch"):
                if ref.polarity is Polarity.NEG:
                    invs[self.source_index[ref.name]] = True
                continue
            key = ref.key
            if key in seen:
                continue
            seen.add(key)
            gates[self.gate_index[key]] = True
            stack.extend(self.gate_fanins(key))
        return gates, invs


class PhaseEvaluator:
    """Evaluate power/area of arbitrary phase assignments in O(PO · N/64).

    Parameters
    ----------
    network:
        AOI network (run :func:`repro.network.ops.to_aoi` first).
    input_probs:
        PI (and latch-output) signal probabilities; default 0.5.
    model:
        :class:`DominoPowerModel`.
    method / n_vectors / seed / max_nodes:
        Forwarded to :func:`repro.power.probability.node_probabilities`.
    """

    def __init__(
        self,
        network: LogicNetwork,
        input_probs: Optional[Mapping[str, float]] = None,
        model: Optional[DominoPowerModel] = None,
        method: str = "auto",
        ordering: str = "domino",
        max_nodes: int = 500_000,
        n_vectors: int = 4096,
        seed: int = 0,
    ):
        self.network = network
        self.model = model or DominoPowerModel()
        self.space = PolaritySpace(network)
        prob_result = node_probabilities(
            network,
            input_probs=input_probs,
            method=method,
            ordering=ordering,
            max_nodes=max_nodes,
            n_vectors=n_vectors,
            seed=seed,
        )
        self.probability_result = prob_result
        self.node_probs: Dict[str, float] = prob_result.probabilities
        self.input_probs: Dict[str, float] = {
            s: self.node_probs.get(s, 0.5) for s in self.space.sources
        }

        # Per-slot signal probability and capacitance factor.
        n = self.space.n_slots
        self.slot_probs = np.zeros(n)
        self.slot_caps = np.zeros(n)
        for (name, pol), idx in self.space.gate_index.items():
            p = self.node_probs.get(name)
            if p is None:
                # Node outside every PO cone: probability irrelevant but
                # must exist; compute from a quick local default.
                p = 0.5
            self.slot_probs[idx] = p if pol is Polarity.POS else 1.0 - p
            gt = self.space.gate_type_of((name, pol))
            n_fanins = len(self.network.nodes[name].fanins)
            self.slot_caps[idx] = self.model.gate_factor(gt, n_fanins)

        self.source_inv_cost = np.array(
            [
                boundary_input_inverter_switching(self.input_probs[s])
                * self.model.inverter_cap
                for s in self.space.sources
            ]
        )

        # Per-(output, phase) masks and driver references.
        self.outputs: List[str] = network.output_names()
        self._masks: Dict[Tuple[str, Phase], Tuple[np.ndarray, np.ndarray]] = {}
        self._driver_ref: Dict[Tuple[str, Phase], Ref] = {}
        for po, driver in network.outputs:
            for phase in (Phase.POSITIVE, Phase.NEGATIVE):
                pol = Polarity.POS if phase is Phase.POSITIVE else Polarity.NEG
                ref = self.space.resolve(driver, pol)
                self._driver_ref[(po, phase)] = ref
                self._masks[(po, phase)] = self.space.cone_masks(ref)

    # -- reference probabilities ------------------------------------------
    def ref_probability(self, ref: Ref) -> float:
        if ref.kind == "const":
            return 1.0 if ref.value else 0.0
        if ref.kind in ("input", "latch"):
            p = self.input_probs[ref.name]
            return p if ref.polarity is Polarity.POS else 1.0 - p
        return float(self.slot_probs[self.space.gate_index[ref.key]])

    # -- assignment evaluation ----------------------------------------------
    def _union_masks(
        self, assignment: PhaseAssignment
    ) -> Tuple[np.ndarray, np.ndarray]:
        gates = np.zeros(self.space.n_slots, dtype=bool)
        invs = np.zeros(len(self.space.sources), dtype=bool)
        for po in self.outputs:
            g, i = self._masks[(po, assignment[po])]
            gates |= g
            invs |= i
        return gates, invs

    def breakdown(self, assignment: PhaseAssignment) -> PowerBreakdown:
        """Full power decomposition for one assignment."""
        gates, invs = self._union_masks(assignment)
        domino = float(np.dot(gates, self.slot_probs * self.slot_caps))
        n_gates = int(gates.sum())
        clock = self.model.clock_cap_per_gate * n_gates

        input_inv = 0.0
        output_inv = 0.0
        n_out_inv = 0
        if self.model.include_boundary_inverters:
            input_inv = float(np.dot(invs, self.source_inv_cost))
            for po in self.outputs:
                if assignment[po] is Phase.NEGATIVE:
                    n_out_inv += 1
                    ref = self._driver_ref[(po, Phase.NEGATIVE)]
                    output_inv += (
                        boundary_output_inverter_switching(self.ref_probability(ref))
                        * self.model.inverter_cap
                    )
        else:
            n_out_inv = sum(
                1 for po in self.outputs if assignment[po] is Phase.NEGATIVE
            )
        return PowerBreakdown(
            domino=domino,
            input_inverters=input_inv,
            output_inverters=output_inv,
            clock=clock,
            n_gates=n_gates,
            n_input_inverters=int(invs.sum()),
            n_output_inverters=n_out_inv,
            probability_method=self.probability_result.method,
        )

    def power(self, assignment: PhaseAssignment) -> float:
        """Estimated power (arbitrary units) of an assignment."""
        return self.breakdown(assignment).total

    def area(self, assignment: PhaseAssignment) -> int:
        """Cell-count proxy: domino gates + static boundary inverters."""
        gates, invs = self._union_masks(assignment)
        n_out_inv = sum(1 for po in self.outputs if assignment[po] is Phase.NEGATIVE)
        return int(gates.sum()) + int(invs.sum()) + n_out_inv

    def average_cone_probability(
        self, assignment: PhaseAssignment, po: str
    ) -> float:
        """The paper's A_i: mean realised signal probability over cone D_i."""
        gates, _invs = self._masks[(po, assignment[po])]
        n = int(gates.sum())
        if n == 0:
            return self.ref_probability(self._driver_ref[(po, assignment[po])])
        return float(np.dot(gates, self.slot_probs) / n)

    def cone_size(self, po: str, phase: Optional[Phase] = None) -> int:
        """|D_i|: gates materialised by output ``po`` (either phase has the
        same count, so the phase argument is optional)."""
        gates, _ = self._masks[(po, phase or Phase.POSITIVE)]
        return int(gates.sum())

    def cone_gate_mask(self, po: str, phase: Phase) -> np.ndarray:
        return self._masks[(po, phase)][0]


def estimate_power(
    network: LogicNetwork,
    assignment: PhaseAssignment,
    input_probs: Optional[Mapping[str, float]] = None,
    model: Optional[DominoPowerModel] = None,
    method: str = "auto",
    seed: int = 0,
) -> PowerBreakdown:
    """One-shot power estimate via an explicit phase transform.

    Slower than :class:`PhaseEvaluator` for repeated queries but
    independent of its mask machinery — used as a cross-check in tests.
    """
    model = model or DominoPowerModel()
    impl = phase_transform(network, assignment)
    prob_result = node_probabilities(
        network, input_probs=input_probs, method=method, seed=seed
    )
    probs = prob_result.probabilities
    input_p = {s: probs.get(s, 0.5) for s in network.sources()}

    domino = 0.0
    for gate in impl.gates.values():
        p = probs[gate.name]
        if gate.polarity is Polarity.NEG:
            p = 1.0 - p
        domino += p * model.gate_factor(gate.gate_type, len(gate.fanins))
    clock = model.clock_cap_per_gate * impl.n_gates

    input_inv = 0.0
    output_inv = 0.0
    if model.include_boundary_inverters:
        for src in impl.input_inverters:
            input_inv += (
                boundary_input_inverter_switching(input_p[src]) * model.inverter_cap
            )
        for po in impl.output_inverters:
            ref = impl.output_refs[po]
            if ref.kind == "const":
                p = 1.0 if ref.value else 0.0
            elif ref.kind in ("input", "latch"):
                p = input_p[ref.name]
                if ref.polarity is Polarity.NEG:
                    p = 1.0 - p
            else:
                p = probs[ref.name]
                if ref.polarity is Polarity.NEG:
                    p = 1.0 - p
            output_inv += boundary_output_inverter_switching(p) * model.inverter_cap

    return PowerBreakdown(
        domino=domino,
        input_inverters=input_inv,
        output_inverters=output_inv,
        clock=clock,
        n_gates=impl.n_gates,
        n_input_inverters=len(impl.input_inverters),
        n_output_inverters=len(impl.output_inverters),
        probability_method=prob_result.method,
    )
