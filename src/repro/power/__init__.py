"""Power models, signal probabilities, estimation, and Monte-Carlo measurement."""

from repro.power.activity import (
    boundary_input_inverter_switching,
    boundary_output_inverter_switching,
    domino_switching,
    figure2_series,
    static_switching,
    switching_curve,
)
from repro.power.estimator import (
    DominoPowerModel,
    PhaseEvaluator,
    PolaritySpace,
    PowerBreakdown,
    estimate_power,
)
from repro.power.probability import (
    ProbabilityResult,
    bdd_probabilities,
    monte_carlo_probabilities,
    node_probabilities,
    random_source_batch,
    simulate_batch,
    uniform_input_probabilities,
)
from repro.power.simulator import (
    SequentialPowerSimulator,
    SimulatedPower,
    evaluate_implementation_batch,
    measure_switching_counts,
    simulate_power,
)
from repro.power.compare import StaticVsDominoReport, compare_static_vs_domino
from repro.power.glitch import (
    GlitchReport,
    domino_glitch_check,
    unit_delay_glitch_report,
)

__all__ = [
    "StaticVsDominoReport",
    "compare_static_vs_domino",
    "GlitchReport",
    "domino_glitch_check",
    "unit_delay_glitch_report",
    "boundary_input_inverter_switching",
    "boundary_output_inverter_switching",
    "domino_switching",
    "figure2_series",
    "static_switching",
    "switching_curve",
    "DominoPowerModel",
    "PhaseEvaluator",
    "PolaritySpace",
    "PowerBreakdown",
    "estimate_power",
    "ProbabilityResult",
    "bdd_probabilities",
    "monte_carlo_probabilities",
    "node_probabilities",
    "random_source_batch",
    "simulate_batch",
    "uniform_input_probabilities",
    "SequentialPowerSimulator",
    "SimulatedPower",
    "evaluate_implementation_batch",
    "measure_switching_counts",
    "simulate_power",
]
