"""Monte-Carlo power "measurement" — the EPIC PowerMill substitute.

The paper measures final power with the PowerMill circuit simulator on
statistically generated input vectors.  We cannot run PowerMill, but
Property 2.2 (domino logic never glitches) means a zero-delay switched
capacitance simulation counts exactly the same charge events a circuit
simulator would see in a domino block, up to a calibration constant.

:func:`simulate_power` therefore:

1. draws ``n_vectors`` random input vectors with the requested signal
   probabilities (the paper's "statistically generated input vectors");
2. evaluates the inverter-free block cycle by cycle (vectorised);
3. charges ``C_gate`` whenever a domino gate fires (discharge +
   precharge pair), ``C_inv`` whenever a static boundary inverter
   toggles, and the clock load every cycle;
4. reports a calibrated "mA" figure (``current_scale``).

Per-gate capacitance overrides let the timing engine's transistor
resizing feed back into measured power (Table 2 flow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import PowerError
from repro.network.duplication import DominoImplementation, Polarity, Ref
from repro.network.netlist import LogicNetwork
from repro.phase import Phase
from repro.power.estimator import DominoPowerModel
from repro.power.probability import random_source_batch


@dataclass
class SimulatedPower:
    """Result of a Monte-Carlo power measurement."""

    domino_energy: float  # switched capacitance per cycle, domino gates
    input_inverter_energy: float
    output_inverter_energy: float
    clock_energy: float
    n_vectors: int
    current_scale: float

    @property
    def energy_per_cycle(self) -> float:
        return (
            self.domino_energy
            + self.input_inverter_energy
            + self.output_inverter_energy
            + self.clock_energy
        )

    @property
    def current_ma(self) -> float:
        """Calibrated report, mimicking the paper's mA power columns."""
        return self.energy_per_cycle * self.current_scale


def _ref_values(
    ref: Ref,
    source_arrays: Mapping[str, np.ndarray],
    gate_values: Mapping[Tuple[str, Polarity], np.ndarray],
    n: int,
) -> np.ndarray:
    if ref.kind == "const":
        return np.full(n, ref.value, dtype=bool)
    if ref.kind in ("input", "latch"):
        arr = source_arrays[ref.name]
        return ~arr if ref.polarity is Polarity.NEG else arr
    return gate_values[ref.key]


def evaluate_implementation_batch(
    impl: DominoImplementation,
    source_arrays: Mapping[str, np.ndarray],
) -> Dict[Tuple[str, Polarity], np.ndarray]:
    """Vectorised evaluation of every domino gate over a vector batch."""
    n = None
    for arr in source_arrays.values():
        n = len(arr)
        break
    if n is None:
        raise PowerError("no source arrays supplied")
    from repro.network.netlist import GateType

    gate_values: Dict[Tuple[str, Polarity], np.ndarray] = {}
    for gate in impl.topological_gate_order():
        fanin_arrays = [
            _ref_values(r, source_arrays, gate_values, n) for r in gate.fanins
        ]
        if gate.gate_type is GateType.AND:
            gate_values[gate.key] = np.logical_and.reduce(fanin_arrays)
        else:
            gate_values[gate.key] = np.logical_or.reduce(fanin_arrays)
    return gate_values


def simulate_power(
    impl: DominoImplementation,
    input_probs: Optional[Mapping[str, float]] = None,
    model: Optional[DominoPowerModel] = None,
    n_vectors: int = 4096,
    seed: int = 0,
    gate_cap_overrides: Optional[Mapping[Tuple[str, Polarity], float]] = None,
    inverter_cap_overrides: Optional[Mapping[str, float]] = None,
) -> SimulatedPower:
    """Measure power of a domino implementation by Monte-Carlo simulation.

    ``gate_cap_overrides`` maps (node, polarity) keys to capacitances —
    this is the hook the resizing engine uses.  Inverter overrides are
    keyed by source name (input inverters) or PO name (output
    inverters).
    """
    model = model or DominoPowerModel()
    network = impl.network
    if input_probs is None:
        input_probs = {s: 0.5 for s in network.sources()}
    source_arrays = random_source_batch(network, input_probs, n_vectors, seed)
    gate_values = evaluate_implementation_batch(impl, source_arrays)

    gate_cap_overrides = gate_cap_overrides or {}
    inverter_cap_overrides = inverter_cap_overrides or {}

    domino_energy = 0.0
    for gate in impl.gates.values():
        cap = gate_cap_overrides.get(
            gate.key, model.gate_factor(gate.gate_type, len(gate.fanins))
        )
        fire_rate = float(gate_values[gate.key].mean())
        domino_energy += fire_rate * cap

    clock_energy = model.clock_cap_per_gate * impl.n_gates
    # Clock pins can also be resized; scale clock load with the average
    # override ratio if any overrides exist.
    if gate_cap_overrides and model.clock_cap_per_gate > 0.0:
        base_total = sum(
            model.gate_factor(g.gate_type, len(g.fanins)) for g in impl.gates.values()
        )
        over_total = sum(
            gate_cap_overrides.get(
                g.key, model.gate_factor(g.gate_type, len(g.fanins))
            )
            for g in impl.gates.values()
        )
        if base_total > 0:
            clock_energy *= over_total / base_total

    input_inv_energy = 0.0
    output_inv_energy = 0.0
    if model.include_boundary_inverters:
        for src in impl.input_inverters:
            arr = source_arrays[src]
            # Static inverter: toggles whenever consecutive values differ.
            toggles = float(np.mean(arr[1:] != arr[:-1])) if len(arr) > 1 else 0.0
            cap = inverter_cap_overrides.get(src, model.inverter_cap)
            input_inv_energy += toggles * cap
        for po in impl.output_inverters:
            ref = impl.output_refs[po]
            arr = _ref_values(ref, source_arrays, gate_values, n_vectors)
            # Boundary inverter on a domino output follows the monotonic
            # pulse: it toggles exactly in the cycles the gate fires.
            fire_rate = float(arr.mean())
            cap = inverter_cap_overrides.get(po, model.inverter_cap)
            output_inv_energy += fire_rate * cap

    return SimulatedPower(
        domino_energy=domino_energy,
        input_inverter_energy=input_inv_energy,
        output_inverter_energy=output_inv_energy,
        clock_energy=clock_energy,
        n_vectors=n_vectors,
        current_scale=model.current_scale,
    )


def measure_switching_counts(
    impl: DominoImplementation,
    input_probs: Optional[Mapping[str, float]] = None,
    n_vectors: int = 4096,
    seed: int = 0,
) -> Dict[str, float]:
    """Raw per-category switching totals (unit capacitance).

    Used by the Figure 5 reproduction, which reports switching counts
    rather than calibrated power.
    """
    model = DominoPowerModel(
        gate_cap=1.0, inverter_cap=1.0, clock_cap_per_gate=0.0, current_scale=1.0
    )
    sim = simulate_power(
        impl, input_probs=input_probs, model=model, n_vectors=n_vectors, seed=seed
    )
    return {
        "domino_block": sim.domino_energy,
        "static_inverters_inputs": sim.input_inverter_energy,
        "static_inverters_outputs": sim.output_inverter_energy,
        "total": sim.energy_per_cycle,
    }


class SequentialPowerSimulator:
    """Cycle-accurate Monte-Carlo power for *sequential* domino designs.

    Simulates the full sequential network (latch state included) over
    ``n_cycles`` cycles with fresh random PI vectors each cycle, and
    accounts each combinational node under the domino model (fires =
    output high) — the reference answer the partition-based estimator
    approximates.
    """

    def __init__(
        self,
        network: LogicNetwork,
        model: Optional[DominoPowerModel] = None,
    ):
        self.network = network
        self.model = model or DominoPowerModel()

    def run(
        self,
        input_probs: Optional[Mapping[str, float]] = None,
        n_cycles: int = 1024,
        n_streams: int = 32,
        seed: int = 0,
        warmup: int = 16,
    ) -> Dict[str, float]:
        """Returns per-node average firing rate plus a ``__energy__`` total.

        ``n_streams`` independent trajectories are simulated in a
        vectorised batch to reduce variance; ``warmup`` initial cycles
        are discarded so latch state reaches steady distribution.
        """
        from repro.network.netlist import GateType
        from repro.power.probability import simulate_batch

        net = self.network
        if input_probs is None:
            input_probs = {s: 0.5 for s in net.inputs}
        rng = np.random.default_rng(seed)
        state = {
            latch.name: np.full(n_streams, latch.init_value == 1, dtype=bool)
            for latch in net.latches
        }
        fire_sums: Dict[str, float] = {n.name: 0.0 for n in net.gates}
        counted = 0
        for cycle in range(n_cycles + warmup):
            sources: Dict[str, np.ndarray] = {}
            for name in net.inputs:
                p = input_probs.get(name, 0.5)
                sources[name] = rng.random(n_streams) < p
            sources.update(state)
            values = simulate_batch(net, sources)
            if cycle >= warmup:
                counted += 1
                for gate in net.gates:
                    fire_sums[gate.name] += float(values[gate.name].mean())
            state = {
                latch.name: values[latch.fanins[0]] for latch in net.latches
            }
        rates = {name: s / max(counted, 1) for name, s in fire_sums.items()}
        energy = 0.0
        for gate in net.gates:
            cap = self.model.gate_factor(gate.gate_type, len(gate.fanins))
            energy += rates[gate.name] * cap
        rates["__energy__"] = energy
        return rates
