"""Switching-activity models (paper Section 2, Figure 2).

The paper's key observation (Property 2.1): for a domino gate the
switching probability *equals* the signal probability — every cycle in
which the gate evaluates to 1 costs a discharge plus a precharge.  A
static CMOS gate, by contrast, switches only when its output *changes*,
which under temporal independence happens with probability
``2 p (1 - p)``.

Property 2.2 (domino gates never glitch) is what makes zero-delay
switching counts exact for domino blocks; the Monte-Carlo simulator in
:mod:`repro.power.simulator` relies on it.

Boundary inverters need care (they are the static cells in Figure 5):

* A static inverter on a **block input** sees an ordinary static signal
  and switches ``2 p (1 - p)`` per cycle.
* A static inverter on a **domino output** sees a monotonic pulse: the
  domino gate rises with probability ``p`` and always resets during
  precharge, so the inverter toggles in exactly the cycles the gate
  fires — switching probability ``p`` of the driving gate.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence


def domino_switching(signal_probability: float) -> float:
    """Switching probability of a domino gate (Property 2.1): S = p."""
    _check_probability(signal_probability)
    return signal_probability


def static_switching(signal_probability: float) -> float:
    """Per-cycle transition probability of a static gate output.

    Under temporal independence a static output toggles when two
    consecutive evaluations differ: ``2 p (1 - p)``.
    """
    _check_probability(signal_probability)
    return 2.0 * signal_probability * (1.0 - signal_probability)

def boundary_input_inverter_switching(input_probability: float) -> float:
    """Static inverter at a domino block input (static driver): 2p(1-p)."""
    return static_switching(input_probability)


def boundary_output_inverter_switching(gate_probability: float) -> float:
    """Static inverter driven by a domino gate: toggles iff the gate fires."""
    _check_probability(gate_probability)
    return gate_probability


def switching_curve(
    model: Callable[[float], float], points: int = 101
) -> List[Dict[str, float]]:
    """Sample a switching model over p in [0, 1] (Figure 2 series)."""
    rows = []
    for i in range(points):
        p = i / (points - 1)
        rows.append({"signal_probability": p, "switching_probability": model(p)})
    return rows


def figure2_series(points: int = 101) -> Dict[str, List[Dict[str, float]]]:
    """Both Figure 2 curves: domino (identity) and static (2p(1-p))."""
    return {
        "domino": switching_curve(domino_switching, points),
        "static": switching_curve(static_switching, points),
    }


def _check_probability(p: float) -> None:
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"probability out of range: {p}")
