"""repro — Automated Phase Assignment for Low Power Domino Circuits.

A from-scratch reproduction of Patra & Narayanan, "Automated Phase
Assignment for the Synthesis of Low Power Domino Circuits" (DAC 1999).

Quickstart::

    from repro import FlowConfig, run_flow, run_many
    from repro.bench import spec_by_name

    # one circuit (legacy keyword API, unchanged)
    net = spec_by_name("frg1").build()
    print(run_flow(net).row())

    # the same flow, declaratively configured — FlowConfig captures
    # every knob and round-trips through JSON (synth --config).
    # run_many accepts networks, BenchmarkSpecs, or paths to BLIF files
    config = FlowConfig(n_vectors=8192, timed=True)
    specs = [spec_by_name(n) for n in ("frg1", "apex7")]
    batch = run_many(specs, config, jobs=4)
    for row in batch.rows():
        print(row)

    # stage-level control: skip/override/inspect individual stages
    from repro import Pipeline
    result = Pipeline(config, skip=("resize",)).run(net)
    print(result.stage_names, result.flow.row())

    # persistent caching + sweeps: a disk-backed ArtifactStore makes
    # repeated runs incremental, and sweep() expands parameter grids
    from repro import ArtifactStore, sweep
    store = ArtifactStore(".repro-store")
    warm = Pipeline(config, store=store).run(net)      # cold run fills it
    grid = sweep([net], {"n_vectors": [1024, 4096]}, config, store=store)
    print(grid.manifest())

Package map
-----------
``repro.network``  logic networks, BLIF I/O, the inverter-free phase transform
``repro.bdd``      ROBDD package + the paper's variable-ordering heuristic
``repro.power``    switching models, signal probabilities, estimation, MC power
``repro.core``     the paper's cost function, MA/MP optimisers, full flow
``repro.optimize`` pluggable MP strategy registry (budgets, sweeps)
``repro.domino``   domino cell library, mapper, timing/resizing
``repro.seq``      s-graphs, enhanced MFVS, sequential partitioning
``repro.bench``    benchmark suite and figure example circuits
``repro.store``    persistent artifact cache + run registry
``repro.serve``    async job-queue service + JSON-over-HTTP front-end
``repro.fleet``    distributed serving: coordinator + worker fleet over a
                   typed wire protocol, with supervision and affinity routing
``repro.log``      opt-in logging setup for the long-running entry points
"""

from repro.errors import (
    BatchError,
    BddError,
    BlifError,
    ConfigError,
    FleetError,
    NetworkError,
    PhaseError,
    PowerError,
    ProtocolError,
    QueueFullError,
    ReproError,
    SequentialError,
    ServeError,
    ServiceClosedError,
    TimingError,
    UnknownJobError,
)
from repro.phase import Phase, PhaseAssignment, enumerate_assignments
from repro.network import (
    GateType,
    LogicNetwork,
    DominoImplementation,
    Polarity,
    implementation_network,
    load_blif,
    parse_blif,
    phase_transform,
    save_blif,
    to_aoi,
    write_blif,
)
from repro.power import (
    DominoPowerModel,
    PhaseEvaluator,
    estimate_power,
    node_probabilities,
    simulate_power,
)
from repro.core import (
    BatchItem,
    BatchResult,
    FlowConfig,
    FlowResult,
    Pipeline,
    PipelineCache,
    PipelineResult,
    StageResult,
    SweepPoint,
    SweepResult,
    minimize_area,
    minimize_power,
    run_flow,
    run_many,
    sweep,
)
from repro.optimize import (
    OptimizationResult,
    OptimizerBudget,
    OptimizerStrategy,
    make_strategy,
    register_strategy,
    strategy_names,
)
from repro.store import (
    ArtifactStore,
    RunRecord,
    RunStore,
    default_store_dir,
)
from repro.serve import HttpFrontend, Job, Service, serve_forever
from repro.fleet import Coordinator, FleetBackend, Worker
from repro.log import configure_logging

__version__ = "1.4.0"

__all__ = [
    "BatchError",
    "BddError",
    "BlifError",
    "ConfigError",
    "NetworkError",
    "PhaseError",
    "PowerError",
    "ReproError",
    "SequentialError",
    "TimingError",
    "Phase",
    "PhaseAssignment",
    "enumerate_assignments",
    "GateType",
    "LogicNetwork",
    "DominoImplementation",
    "Polarity",
    "implementation_network",
    "load_blif",
    "parse_blif",
    "phase_transform",
    "save_blif",
    "to_aoi",
    "write_blif",
    "DominoPowerModel",
    "PhaseEvaluator",
    "estimate_power",
    "node_probabilities",
    "simulate_power",
    "BatchItem",
    "BatchResult",
    "FlowConfig",
    "FlowResult",
    "Pipeline",
    "PipelineCache",
    "PipelineResult",
    "StageResult",
    "SweepPoint",
    "SweepResult",
    "minimize_area",
    "minimize_power",
    "run_flow",
    "run_many",
    "sweep",
    "OptimizationResult",
    "OptimizerBudget",
    "OptimizerStrategy",
    "make_strategy",
    "register_strategy",
    "strategy_names",
    "ArtifactStore",
    "RunRecord",
    "RunStore",
    "default_store_dir",
    "QueueFullError",
    "ServeError",
    "ServiceClosedError",
    "UnknownJobError",
    "HttpFrontend",
    "Job",
    "Service",
    "serve_forever",
    "FleetError",
    "ProtocolError",
    "Coordinator",
    "FleetBackend",
    "Worker",
    "configure_logging",
    "__version__",
]
