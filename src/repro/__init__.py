"""repro — Automated Phase Assignment for Low Power Domino Circuits.

A from-scratch reproduction of Patra & Narayanan, "Automated Phase
Assignment for the Synthesis of Low Power Domino Circuits" (DAC 1999).

Quickstart::

    from repro import run_flow
    from repro.bench import spec_by_name

    net = spec_by_name("frg1").build()
    result = run_flow(net)
    print(result.row())

Package map
-----------
``repro.network``  logic networks, BLIF I/O, the inverter-free phase transform
``repro.bdd``      ROBDD package + the paper's variable-ordering heuristic
``repro.power``    switching models, signal probabilities, estimation, MC power
``repro.core``     the paper's cost function, MA/MP optimisers, full flow
``repro.domino``   domino cell library, mapper, timing/resizing
``repro.seq``      s-graphs, enhanced MFVS, sequential partitioning
``repro.bench``    benchmark suite and figure example circuits
"""

from repro.errors import (
    BddError,
    BlifError,
    NetworkError,
    PhaseError,
    PowerError,
    ReproError,
    SequentialError,
    TimingError,
)
from repro.phase import Phase, PhaseAssignment, enumerate_assignments
from repro.network import (
    GateType,
    LogicNetwork,
    DominoImplementation,
    Polarity,
    implementation_network,
    load_blif,
    parse_blif,
    phase_transform,
    save_blif,
    to_aoi,
    write_blif,
)
from repro.power import (
    DominoPowerModel,
    PhaseEvaluator,
    estimate_power,
    node_probabilities,
    simulate_power,
)
from repro.core import (
    FlowResult,
    minimize_area,
    minimize_power,
    run_flow,
)

__version__ = "1.0.0"

__all__ = [
    "BddError",
    "BlifError",
    "NetworkError",
    "PhaseError",
    "PowerError",
    "ReproError",
    "SequentialError",
    "TimingError",
    "Phase",
    "PhaseAssignment",
    "enumerate_assignments",
    "GateType",
    "LogicNetwork",
    "DominoImplementation",
    "Polarity",
    "implementation_network",
    "load_blif",
    "parse_blif",
    "phase_transform",
    "save_blif",
    "to_aoi",
    "write_blif",
    "DominoPowerModel",
    "PhaseEvaluator",
    "estimate_power",
    "node_probabilities",
    "simulate_power",
    "FlowResult",
    "minimize_area",
    "minimize_power",
    "run_flow",
    "__version__",
]
