"""Command-line interface.

``repro-domino`` (or ``python -m repro``) regenerates every table and
figure of the paper and runs the flow on arbitrary BLIF files::

    repro-domino figure2                 # switching curves
    repro-domino figure5                 # phase-assignment switching gap
    repro-domino figure9                 # enhanced MFVS demo
    repro-domino figure10                # BDD ordering comparison
    repro-domino table1 [--circuits ...] # MA vs MP, untimed
    repro-domino table2 [--circuits ...] # MA vs MP, timed (resizing)
    repro-domino synth design.blif       # run the flow on a BLIF file
    repro-domino info design.blif        # network statistics
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_figure2(args: argparse.Namespace) -> int:
    from repro.power.activity import figure2_series

    series = figure2_series(points=args.points)
    print("p\tdomino_S\tstatic_S")
    for dom, sta in zip(series["domino"], series["static"]):
        p = dom["signal_probability"]
        print(f"{p:.2f}\t{dom['switching_probability']:.4f}\t{sta['switching_probability']:.4f}")
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    from repro.experiments.figure5 import run_figure5, format_figure5

    result = run_figure5(n_vectors=args.vectors, seed=args.seed)
    print(format_figure5(result))
    return 0


def _cmd_figure9(args: argparse.Namespace) -> int:
    from repro.experiments.figure9 import run_figure9, format_figure9

    print(format_figure9(run_figure9()))
    return 0


def _cmd_figure10(args: argparse.Namespace) -> int:
    from repro.experiments.figure10 import run_figure10, format_figure10

    print(format_figure10(run_figure10()))
    return 0


def _cmd_table(args: argparse.Namespace, timed: bool) -> int:
    from repro.experiments.tables import run_table, format_table_result

    result = run_table(
        timed=timed,
        circuits=args.circuits,
        n_vectors=args.vectors,
        seed=args.seed,
        quick=args.quick,
    )
    print(format_table_result(result))
    if args.output:
        from repro.report import save_results

        save_results([row.flow for row in result.rows], args.output)
        print(f"\nwrote {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.power.compare import compare_static_vs_domino

    net = _load_network(args.blif)
    report = compare_static_vs_domino(
        net, input_probs={pi: args.input_probability for pi in net.inputs}
    )
    print(f"static implementation power : {report.static_power:.3f}")
    print(
        f"domino implementation power : {report.domino_power:.3f} "
        f"(switching {report.domino_switching:.3f}, clock {report.domino_clock:.3f}, "
        f"boundary {report.domino_boundary:.3f})"
    )
    print(f"domino / static ratio       : {report.ratio:.2f}  (paper: up to ~4x)")
    print(f"duplication factor          : {report.duplication_factor:.2f}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.viz import network_to_dot

    net = _load_network(args.blif)
    probabilities = None
    if args.probabilities:
        from repro.power.probability import node_probabilities

        probabilities = node_probabilities(net).probabilities
    print(network_to_dot(net, probabilities=probabilities))
    return 0


def _load_network(path: str):
    from repro.network.blif import load_blif

    return load_blif(path)


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.core.flow import format_table, run_flow

    net = _load_network(args.blif)
    result = run_flow(
        net,
        input_probability=args.input_probability,
        timed=args.timed,
        n_vectors=args.vectors,
        seed=args.seed,
    )
    print(format_table([result.row()], f"Flow result for {net.name}"))
    print(f"\nMA assignment: {result.ma.assignment}")
    print(f"MP assignment: {result.mp.assignment}")
    print(f"probability engine: {result.probability_method}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    net = _load_network(args.blif)
    stats = net.stats()
    print(f"model {net.name}")
    for key, value in stats.items():
        print(f"  {key:<10} {value}")
    from repro.network.topo import depth

    print(f"  depth      {depth(net)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-domino",
        description="Reproduction of 'Automated Phase Assignment for the "
        "Synthesis of Low Power Domino Circuits' (DAC 1999)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure2", help="switching vs signal probability curves")
    p.add_argument("--points", type=int, default=21)
    p.set_defaults(func=_cmd_figure2)

    p = sub.add_parser("figure5", help="phase assignments vs switching example")
    p.add_argument("--vectors", type=int, default=65536)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_figure5)

    p = sub.add_parser("figure9", help="enhanced MFVS symmetry transformation demo")
    p.set_defaults(func=_cmd_figure9)

    p = sub.add_parser("figure10", help="BDD variable ordering comparison")
    p.set_defaults(func=_cmd_figure10)

    for table_name, timed in (("table1", False), ("table2", True)):
        p = sub.add_parser(table_name, help=f"reproduce {table_name}")
        p.add_argument("--circuits", nargs="*", default=None)
        p.add_argument("--vectors", type=int, default=4096)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--quick", action="store_true", help="small circuits only (fast sanity run)"
        )
        p.add_argument(
            "--output", default=None, help="write results to .json/.csv/.md"
        )
        p.set_defaults(func=lambda a, t=timed: _cmd_table(a, t))

    p = sub.add_parser("compare", help="static-CMOS vs domino power for a BLIF file")
    p.add_argument("blif")
    p.add_argument("--input-probability", type=float, default=0.5)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("dot", help="emit a Graphviz DOT drawing of a BLIF file")
    p.add_argument("blif")
    p.add_argument(
        "--probabilities", action="store_true", help="annotate signal probabilities"
    )
    p.set_defaults(func=_cmd_dot)

    p = sub.add_parser("synth", help="run the MA/MP flow on a BLIF file")
    p.add_argument("blif")
    p.add_argument("--input-probability", type=float, default=0.5)
    p.add_argument("--timed", action="store_true")
    p.add_argument("--vectors", type=int, default=4096)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("info", help="print network statistics for a BLIF file")
    p.add_argument("blif")
    p.set_defaults(func=_cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
