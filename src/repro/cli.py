"""Command-line interface.

``repro-domino`` (or ``python -m repro``) regenerates every table and
figure of the paper and runs the flow on arbitrary BLIF files::

    repro-domino figure2                 # switching curves
    repro-domino figure5                 # phase-assignment switching gap
    repro-domino figure9                 # enhanced MFVS demo
    repro-domino figure10                # BDD ordering comparison
    repro-domino table1 [--jobs N]       # MA vs MP, untimed
    repro-domino table2 [--jobs N]       # MA vs MP, timed (resizing)
    repro-domino synth design.blif       # run the flow on a BLIF file
    repro-domino batch dir/ --jobs 4     # parallel flow over many BLIFs
    repro-domino info design.blif        # network statistics
    repro-domino lint src/               # codebase-invariant linter

``synth`` and ``batch`` accept ``--config config.json``, a JSON dump
of :class:`repro.FlowConfig` (see ``FlowConfig.to_json``); explicit
command-line flags override fields from the file.  ``batch`` fans the
circuits across worker processes (``--jobs``) with per-circuit error
isolation: one bad BLIF is reported and the rest still complete.
``table1``/``table2`` parallelise the same way with ``--jobs``.

``--optimizer NAME`` (synth/batch/table1/table2/sweep/serve) picks the
MP phase-assignment strategy from the :mod:`repro.optimize` registry
(default ``pairwise``, the paper's Section 4.1 heuristic), and
``--optimizer-param KEY=VALUE`` (repeatable) sets strategy parameters
and budget keys (``max_evaluations`` / ``max_seconds`` /
``tolerance``)::

    repro-domino synth design.blif --optimizer anneal \
        --optimizer-param steps=512 --optimizer-param max_seconds=30
    repro-domino sweep designs/ --grid optimizer=pairwise,greedy-flip \
        --grid optimizer_params.max_evaluations=64,256 --store

Unknown strategy names and unknown params exit with a clean config
error (code 2), never a stack trace.

``--stage-jobs N`` (synth/batch/table1/table2/sweep/serve) additionally
threads the independent MA/MP work *inside* each flow (transform, map,
resize, measure, and the MP-search overlap) — useful when a single
large circuit should use more than one core.  Results are bit-identical
at any setting; the default (auto) turns stage threads off inside
``--jobs`` worker processes so the two levels compose without
oversubscription.

Persistent caching: ``synth``, ``batch``, ``table1`` and ``table2``
accept ``--store`` (and ``--store-dir DIR``) to run against a
disk-backed :class:`repro.store.ArtifactStore` — a second identical
invocation is served from disk without executing any synthesis stage::

    repro-domino table1 --quick --store      # cold: fills .repro-store
    repro-domino table1 --quick --store      # warm: store-served
    repro-domino sweep dir/ --grid n_vectors=1024,4096 --store
    repro-domino cache stats                 # inspect the store
    repro-domino cache gc --max-age-days 30  # prune stale entries

Async serving: ``repro-domino serve --port 8080 --store`` runs the
long-lived job-queue service (:mod:`repro.serve`) — submit circuits
with ``POST /jobs`` (``{"blif": ...}`` / ``{"path": ...}`` /
``{"spec": ...}``), poll ``GET /jobs/<id>``, stream
``GET /jobs/<id>/events``, check ``GET /healthz``.  With ``--store``,
repeated submissions are answered instantly from the artifact store.

Invariant linting: ``repro-domino lint [paths...]`` runs the
:mod:`repro.analysis` rule set (monotonic deadlines, tmp_sibling temp
files, seeded RNGs, no blocking calls in async code, …) over the given
files or directories.  Exit code 0 means clean, 1 means findings, 2
means a usage error (unknown rule id, missing path); ``--format json``
emits machine-readable findings and ``--select``/``--ignore`` narrow
the rule set by id.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple


def _cmd_figure2(args: argparse.Namespace) -> int:
    from repro.power.activity import figure2_series

    series = figure2_series(points=args.points)
    print("p\tdomino_S\tstatic_S")
    for dom, sta in zip(series["domino"], series["static"]):
        p = dom["signal_probability"]
        print(f"{p:.2f}\t{dom['switching_probability']:.4f}\t{sta['switching_probability']:.4f}")
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    from repro.experiments.figure5 import run_figure5, format_figure5

    result = run_figure5(n_vectors=args.vectors, seed=args.seed)
    print(format_figure5(result))
    return 0


def _cmd_figure9(args: argparse.Namespace) -> int:
    from repro.experiments.figure9 import run_figure9, format_figure9

    print(format_figure9(run_figure9()))
    return 0


def _cmd_figure10(args: argparse.Namespace) -> int:
    from repro.experiments.figure10 import run_figure10, format_figure10

    print(format_figure10(run_figure10()))
    return 0


def _check_output_format(path: Optional[str]) -> Optional[int]:
    """Fail fast on an unsupported --output extension, *before* hours
    of synthesis compute; returns an exit code or None if fine."""
    from repro.report import REPORT_EXTENSIONS

    if path and not path.endswith(tuple(REPORT_EXTENSIONS)):
        print(
            f"unknown report format for {path!r} "
            f"(use {'/'.join(REPORT_EXTENSIONS)})",
            file=sys.stderr,
        )
        return 2
    return None


def _backend_from_args(args: argparse.Namespace):
    """The configured :class:`repro.store.backends.StoreBackend` the
    backend flags describe (defaults to the local-disk layout)."""
    from repro.store import make_backend

    max_mb = getattr(args, "store_max_mb", None)
    return make_backend(
        getattr(args, "store_backend", None),
        store_dir=getattr(args, "store_dir", None),
        shared_path=getattr(args, "shared_store", None),
        max_bytes=None if max_mb is None else int(max_mb * 1024 * 1024),
    )


def _store_from_args(args: argparse.Namespace):
    """The :class:`ArtifactStore` the flags ask for, or ``None``.

    ``--store-dir``/``--store-backend``/``--shared-store`` each imply
    ``--store``; ``--no-store`` wins over everything (so scripts can
    force a cold run whatever the wrapper passes).
    """
    if getattr(args, "no_store", False):
        return None
    wants_store = (
        getattr(args, "store", False)
        or getattr(args, "store_dir", None)
        or getattr(args, "store_backend", None)
        or getattr(args, "shared_store", None)
    )
    if wants_store:
        from repro.store import ArtifactStore

        return ArtifactStore(backend=_backend_from_args(args))
    return None


def _add_backend_flags(parser: argparse.ArgumentParser) -> None:
    """Backend selection shared by the run commands and ``cache``."""
    parser.add_argument(
        "--store-backend",
        default=None,
        choices=("local", "sqlite", "tiered"),
        metavar="NAME",
        help="storage backend: local (one JSON file per entry, default), "
        "sqlite (single shared WAL-mode DB file), or tiered (local disk "
        "in front of a shared SQLite tier); implies --store",
    )
    parser.add_argument(
        "--shared-store",
        default=None,
        metavar="PATH",
        help="shared SQLite cache tier; alone it selects the tiered "
        "backend (local reads, async write-back), with --store-backend "
        "sqlite it is the DB file itself; implies --store",
    )
    parser.add_argument(
        "--store-max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="size cap: evict least-recently-hit entries beyond this "
        "(applies to the local tier of a tiered store)",
    )


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        action="store_true",
        help="cache artefacts in a persistent store (default dir: "
        "$REPRO_STORE_DIR or .repro-store)",
    )
    parser.add_argument(
        "--no-store", action="store_true", help="force a cold run (overrides --store)"
    )
    parser.add_argument(
        "--store-dir", default=None, help="store directory (implies --store)"
    )
    _add_backend_flags(parser)


def _add_optimizer_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--optimizer",
        default=None,
        metavar="NAME",
        help="MP phase-assignment strategy from the repro.optimize registry "
        "(pairwise/exhaustive/groupwise/greedy-flip/anneal/random; "
        "default: pairwise, the paper's heuristic)",
    )
    parser.add_argument(
        "--optimizer-param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        dest="optimizer_param",
        help="strategy parameter or budget key (repeatable), e.g. "
        "--optimizer-param restarts=8 --optimizer-param max_evaluations=256",
    )


def _parse_optimizer_params(specs):
    """``--optimizer-param KEY=VALUE`` occurrences into a params dict
    (``None`` when the flag was never given)."""
    from repro.errors import ConfigError

    if not specs:
        return None
    params = {}
    for spec in specs:
        key, sep, value = spec.partition("=")
        if not sep or not key or not value:
            raise ConfigError(
                f"bad --optimizer-param {spec!r} (expected KEY=VALUE)"
            )
        params[key] = _parse_grid_value(value)
    return params


def _add_log_level_flag(parser: argparse.ArgumentParser) -> None:
    from repro.log import add_log_level_flag

    add_log_level_flag(parser)


def _add_stage_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--stage-jobs",
        type=int,
        default=None,
        metavar="N",
        help="threads for the MA/MP stage work inside each flow "
        "(0 = auto: threads on a multi-core host, sequential inside pool "
        "workers; results are bit-identical at any setting)",
    )


def _cmd_table(args: argparse.Namespace, timed: bool) -> int:
    from repro.experiments.tables import run_table, format_table_result

    bad_output = _check_output_format(args.output)
    if bad_output is not None:
        return bad_output
    store = _store_from_args(args)
    result = run_table(
        timed=timed,
        circuits=args.circuits,
        n_vectors=args.vectors,
        seed=args.seed,
        quick=args.quick,
        jobs=args.jobs,
        store=store,
        stage_jobs=args.stage_jobs,
        optimizer=args.optimizer,
        optimizer_params=_parse_optimizer_params(args.optimizer_param),
    )
    print(format_table_result(result))
    if store is not None:
        store.flush()  # tiered write-backs land before the process exits
        print(f"\nstore-served {result.n_cached}/{len(result.rows)} circuits "
              f"from {store.root}")
    if args.output:
        from repro.report import save_results

        save_results([row.flow for row in result.rows], args.output)
        print(f"\nwrote {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.power.compare import compare_static_vs_domino

    net = _load_network(args.blif)
    report = compare_static_vs_domino(
        net, input_probs={pi: args.input_probability for pi in net.inputs}
    )
    print(f"static implementation power : {report.static_power:.3f}")
    print(
        f"domino implementation power : {report.domino_power:.3f} "
        f"(switching {report.domino_switching:.3f}, clock {report.domino_clock:.3f}, "
        f"boundary {report.domino_boundary:.3f})"
    )
    print(f"domino / static ratio       : {report.ratio:.2f}  (paper: up to ~4x)")
    print(f"duplication factor          : {report.duplication_factor:.2f}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.viz import network_to_dot

    net = _load_network(args.blif)
    probabilities = None
    if args.probabilities:
        from repro.power.probability import node_probabilities

        probabilities = node_probabilities(net).probabilities
    print(network_to_dot(net, probabilities=probabilities))
    return 0


def _load_network(path: str):
    from repro.network.blif import load_blif

    return load_blif(path)


def _effective_config(args: argparse.Namespace):
    """FlowConfig from ``--config`` (if given) with explicit CLI flags
    layered on top.  Flags use ``None`` defaults so "not given" and
    "given the default value" are distinguishable."""
    from repro.core.config import FlowConfig

    config = FlowConfig.from_file(args.config) if args.config else FlowConfig()
    overrides = {}
    for flag, field in (
        ("input_probability", "input_probability"),
        ("vectors", "n_vectors"),
        ("seed", "seed"),
        ("stage_jobs", "stage_jobs"),
    ):
        value = getattr(args, flag, None)
        if value is not None:
            overrides[field] = value
    if getattr(args, "timed", False):
        overrides["timed"] = True
    cli_optimizer = getattr(args, "optimizer", None)
    cli_params = _parse_optimizer_params(getattr(args, "optimizer_param", None))
    if cli_optimizer is not None:
        overrides["optimizer"] = cli_optimizer
    base_params = config.optimizer_params or {}
    if cli_optimizer is not None and cli_optimizer != config.optimizer:
        # switching strategy: only the shared budget keys carry over
        # from the config file — one strategy's knobs never leak into
        # another (give new ones via --optimizer-param)
        from repro.optimize import budget_only_params

        base_params = budget_only_params(base_params) or {}
        overrides["optimizer_params"] = base_params or None
    if cli_params is not None:
        # merge on top of the config file's params: a flag overrides one
        # key without flattening the rest
        overrides["optimizer_params"] = {**base_params, **cli_params}
    if overrides:
        config = config.replace(**overrides)
    return config


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.core.flow import format_table
    from repro.core.pipeline import Pipeline

    config = _effective_config(args)
    store = _store_from_args(args)
    net = _load_network(args.blif)
    run = Pipeline(config, store=store).run(net)
    result = run.flow
    print(format_table([result.row()], f"Flow result for {net.name}"))
    print(f"\nMA assignment: {result.ma.assignment}")
    print(f"MP assignment: {result.mp.assignment}")
    print(f"probability engine: {result.probability_method}")
    if store is not None:
        store.flush()  # tiered write-backs land before the process exits
        served = all(s.cached or s.skipped for s in run.stages)
        print(f"store: {'served from' if served else 'populated'} {store.root}")
    return 0


def _expand_blifs(paths: List[str]) -> List[str]:
    """Expand directory arguments into their sorted ``*.blif`` members."""
    from pathlib import Path

    blifs: List[str] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            blifs.extend(str(f) for f in sorted(p.glob("*.blif")))
        else:
            blifs.append(raw)
    return blifs


def _batch_progress(done: int, total: int, item) -> None:
    status = "cached" if item.cached else ("ok" if item.ok else "FAILED")
    print(
        f"[{done}/{total}] {item.name:<16} {status:<6} {item.runtime_s:6.1f}s",
        file=sys.stderr,
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.core.batch import format_batch, run_many

    bad_output = _check_output_format(args.output)
    if bad_output is not None:
        return bad_output
    config = _effective_config(args)
    blifs = _expand_blifs(args.paths)
    if not blifs:
        print("no BLIF files found", file=sys.stderr)
        return 1

    store = _store_from_args(args)
    batch = run_many(
        blifs,
        config,
        jobs=args.jobs,
        per_circuit_seeds=args.per_circuit_seeds,
        progress=None if args.no_progress else _batch_progress,
        store=store,
        order=args.order,
        timeout_s=args.timeout_s,
    )
    if store is not None:
        store.flush()  # tiered write-backs land before the process exits
    print(format_batch(batch, title=f"Batch synthesis ({len(blifs)} circuits)"))
    if args.output:
        from repro.report import save_batch

        save_batch(batch, args.output)
        print(f"\nwrote {args.output}")
    return 0 if batch.n_ok > 0 else 1


def _parse_grid_value(text: str):
    """One grid literal: int, float, bool, or bare string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_grid(specs: List[str]):
    """``--grid name=v1,v2,...`` occurrences into a sweep grid dict."""
    from repro.errors import ConfigError

    grid = {}
    for spec in specs:
        name, sep, values = spec.partition("=")
        if not sep or not name or not values:
            raise ConfigError(
                f"bad --grid {spec!r} (expected name=value1,value2,...)"
            )
        grid[name] = [_parse_grid_value(v) for v in values.split(",")]
    return grid


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.batch import format_sweep, sweep

    config = _effective_config(args)
    grid = _parse_grid(args.grid)
    blifs = _expand_blifs(args.paths)
    if not blifs:
        print("no BLIF files found", file=sys.stderr)
        return 1

    store = _store_from_args(args)
    result = sweep(
        blifs,
        grid,
        config,
        jobs=args.jobs,
        per_circuit_seeds=args.per_circuit_seeds,
        progress=None if args.no_progress else _batch_progress,
        store=store,
        order=args.order,
        timeout_s=args.timeout_s,
    )
    if store is not None:
        store.flush()  # tiered write-backs land before the process exits
    print(format_sweep(result))
    if args.record:
        import os

        from repro.store import RunStore

        runs_dir = args.runs_dir
        if runs_dir is None and store is not None:
            runs_dir = os.path.join(store.root, "runs")
        record = RunStore(runs_dir).record_sweep(result)
        print(f"\nrecorded run {record.run_id}")
    if args.output:
        import json

        manifest = result.manifest()
        with open(args.output, "w", encoding="utf-8") as f:
            json.dump(manifest, f, indent=2)
        print(f"\nwrote {args.output}")
    return 0 if result.n_ok > 0 else 1


def _serve_progress(done: int, total: int, item) -> None:
    status = "cached" if item.cached else ("ok" if item.ok else "FAILED")
    print(
        f"[{done} done] {item.name:<16} {status:<6} {item.runtime_s:6.1f}s",
        file=sys.stderr,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.log import configure_logging
    from repro.serve import Service, serve_forever

    configure_logging(args.log_level)
    config = _effective_config(args)
    store = _store_from_args(args)

    async def _run() -> None:
        service = Service(
            config,
            jobs=args.jobs,
            queue_size=args.queue_size,
            store=store,
            timeout_s=args.timeout_s,
            progress=None if args.no_progress else _serve_progress,
        )

        def ready(frontend) -> None:
            print(
                f"repro-domino service on http://{args.host}:{frontend.port} "
                f"({service.workers} worker(s), queue {args.queue_size}"
                + (f", store {store.root}" if store is not None else "")
                + ") — POST /jobs, GET /jobs/<id>[/events], GET /healthz",
                file=sys.stderr,
            )

        await serve_forever(
            service,
            host=args.host,
            port=args.port,
            drain=not args.abort_on_stop,
            ready=ready,
        )
        if store is not None:
            store.flush()  # tiered write-backs land before the process exits
        print("service stopped", file=sys.stderr)

    asyncio.run(_run())
    return 0


def _parse_hostport(spec: str, default_port: int) -> tuple:
    """``HOST[:PORT]`` into ``(host, port)``; bad input is a ConfigError."""
    from repro.errors import ConfigError

    host, sep, port_text = spec.rpartition(":")
    if not sep:
        return (spec, default_port)
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError(
            f"bad address {spec!r} (expected HOST or HOST:PORT)"
        ) from None
    if not host:
        raise ConfigError(f"bad address {spec!r} (empty host)")
    return (host, port)


def _cmd_fleet_coordinator(args: argparse.Namespace) -> int:
    import asyncio

    from repro.fleet import Coordinator, FleetBackend
    from repro.log import configure_logging
    from repro.serve import Service, serve_forever

    configure_logging(args.log_level)
    config = _effective_config(args)
    store = _store_from_args(args)

    async def _run() -> None:
        coordinator = Coordinator(
            host=args.fleet_host,
            port=args.fleet_port,
            heartbeat_interval_s=args.heartbeat_interval,
            miss_limit=args.miss_limit,
            max_requeues=args.max_requeues,
            quarantine_after=args.quarantine_after,
        )
        service = Service(
            config,
            backend=FleetBackend(coordinator, max_inflight=args.max_inflight),
            queue_size=args.queue_size,
            store=store,
            timeout_s=args.timeout_s,
            progress=None if args.no_progress else _serve_progress,
        )

        def ready(frontend) -> None:
            print(
                f"repro-domino fleet coordinator on "
                f"http://{args.host}:{frontend.port} "
                f"(worker bus {coordinator.host}:{coordinator.port}, "
                f"queue {args.queue_size}"
                + (f", store {store.root}" if store is not None else "")
                + ") — start workers with: repro-domino fleet worker "
                f"--coordinator {coordinator.host}:{coordinator.port}",
                file=sys.stderr,
            )

        await serve_forever(
            service,
            host=args.host,
            port=args.port,
            drain=not args.abort_on_stop,
            ready=ready,
        )
        if store is not None:
            store.flush()  # tiered write-backs land before the process exits
        print("fleet coordinator stopped", file=sys.stderr)

    asyncio.run(_run())
    return 0


def _cmd_fleet_worker(args: argparse.Namespace) -> int:
    import asyncio

    from repro.fleet import DEFAULT_FLEET_PORT, Worker, run_worker_forever
    from repro.log import configure_logging

    configure_logging(args.log_level)
    host, port = _parse_hostport(args.coordinator, DEFAULT_FLEET_PORT)
    store = _store_from_args(args)
    worker = Worker(
        host, port, slots=args.slots, worker_id=args.worker_id, store=store
    )
    print(
        f"fleet worker {worker.worker_id} → {host}:{port} "
        f"({worker.slots} slot(s)"
        + (f", store {store.root}" if store is not None else "")
        + "); Ctrl-C drains",
        file=sys.stderr,
    )
    asyncio.run(run_worker_forever(worker))
    if store is not None:
        store.flush()  # tiered write-backs land before the process exits
    print(
        f"fleet worker {worker.worker_id} stopped "
        f"({worker.jobs_done} done, {worker.jobs_failed} failed)",
        file=sys.stderr,
    )
    return 0


def _print_backend_stats(record, indent: str = "  ") -> None:
    """One backend's per-kind entry/byte/hit/miss/eviction block, then
    (for the tiered backend) each tier nested below it."""
    kinds = sorted(
        set(record["entries"])
        | set(record["hits"])
        | set(record["misses"])
        | set(record["evictions"])
    )
    print(f"{indent}[{record['backend']}] {record['root']}")
    if not kinds:
        print(f"{indent}  (empty)")
    for kind in kinds:
        print(
            f"{indent}  {kind:<10}"
            f" {record['entries'].get(kind, 0):>6} entries"
            f" {record['bytes'].get(kind, 0):>10} bytes"
            f" {record['hits'].get(kind, 0):>6} hits"
            f" {record['misses'].get(kind, 0):>6} misses"
            f" {record['evictions'].get(kind, 0):>6} evicted"
        )
    if "write_back_errors" in record:
        print(f"{indent}  write-back errors: {record['write_back_errors']}")
    for tier in ("local", "shared"):
        if tier in record:
            _print_backend_stats(record[tier], indent + "  ")


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.store import ArtifactStore

    store = ArtifactStore(backend=_backend_from_args(args))
    if args.cache_command == "stats":
        stats = store.stats()
        print(f"store {store.root}")
        if not stats.total_entries:
            print("  (empty)")
        for kind in sorted(stats.entries):
            print(
                f"  {kind:<10} {stats.entries[kind]:>6} entr"
                f"{'y' if stats.entries[kind] == 1 else 'ies'} "
                f"{stats.bytes.get(kind, 0):>10} bytes"
            )
        if stats.total_entries:
            print(f"  {'total':<10} {stats.total_entries:>6} entries "
                  f"{stats.total_bytes:>10} bytes")
        print("per backend:")
        _print_backend_stats(stats.backend)
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} from {store.root}")
        return 0
    if args.cache_command == "gc":
        report = store.gc(
            max_age_days=args.max_age_days, dry_run=args.dry_run
        )
        verb = "would remove" if args.dry_run else "removed"
        print(f"gc {verb} {int(report)} entr{'y' if report == 1 else 'ies'} "
              f"from {store.root}")
        if args.dry_run:
            for entry in report.entries:
                print(
                    f"  {entry['kind']}/{entry['fingerprint']}-{entry['digest']}"
                    f" ({entry['bytes']} bytes): {entry['reason']}"
                )
        return 0
    raise AssertionError(f"unknown cache command {args.cache_command!r}")


def _split_rule_flags(values: Optional[List[str]]) -> Optional[List[str]]:
    """Flatten repeatable, comma-separated rule-id flags."""
    if not values:
        return None
    out: List[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out or None


def _parse_explain_spec(spec: str) -> Tuple[str, str, int]:
    from repro.errors import ConfigError

    try:
        rule, rest = spec.split(":", 1)
        path, line_text = rest.rsplit(":", 1)
        line = int(line_text)
    except ValueError:
        raise ConfigError(
            f"--explain expects RULE:PATH:LINE, got {spec!r}"
        ) from None
    if not rule or not path:
        raise ConfigError(f"--explain expects RULE:PATH:LINE, got {spec!r}")
    return rule, path, line


def _explain_findings(findings, spec: str) -> int:
    """Print the inference chain behind the finding named by ``spec``."""
    rule, path, line = _parse_explain_spec(spec)
    matches = [
        f
        for f in findings
        if f.rule == rule
        and f.line == line
        and (f.path == path or f.path.endswith("/" + path))
    ]
    if not matches:
        print(f"no finding matches {spec}")
        candidates = [f for f in findings if f.rule == rule]
        for f in candidates[:5]:
            print(f"  candidate: {f.rule}:{f.path}:{f.line}")
        return 1
    for finding in matches:
        print(finding.format())
        if finding.chain:
            print("inference chain:")
            for step in finding.chain:
                print(f"  {step}")
        else:
            print(
                "no inference chain: this is a direct syntactic finding "
                "at the reported line"
            )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        all_rules,
        format_json,
        format_sarif,
        format_text,
        load_baseline,
        run_lint,
        split_findings,
        write_baseline,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {rule.invariant}")
        return 0
    report = run_lint(
        args.paths or ["src"],
        select=_split_rule_flags(args.select),
        ignore=_split_rule_flags(args.ignore),
        cache=args.cache,
        cache_dir=args.cache_dir,
    )
    if args.cache:
        # stderr, so stdout findings stay byte-identical cold vs warm
        print(report.status_line(), file=sys.stderr)
    findings = report.findings
    if args.explain:
        return _explain_findings(findings, args.explain)
    if args.write_baseline:
        baseline = write_baseline(findings, args.write_baseline)
        print(
            f"wrote {len(baseline.entries)} baseline entr"
            f"{'y' if len(baseline.entries) == 1 else 'ies'} to "
            f"{args.write_baseline}"
        )
        return 0
    baselined = None
    if args.baseline:
        baseline = load_baseline(args.baseline)
        findings, baselined = split_findings(findings, baseline)
    show_baselined = not args.diff
    if args.format == "sarif":
        sys.stdout.write(
            format_sarif(findings, baselined if show_baselined else None)
        )
    elif args.format == "json":
        print(
            format_json(
                findings,
                n_files=report.n_files,
                baselined=baselined,
                show_baselined=show_baselined,
            )
        )
    else:
        print(
            format_text(
                findings,
                n_files=report.n_files,
                baselined=baselined,
                show_baselined=show_baselined,
            )
        )
    return 1 if findings else 0


def _cmd_info(args: argparse.Namespace) -> int:
    net = _load_network(args.blif)
    stats = net.stats()
    print(f"model {net.name}")
    for key, value in stats.items():
        print(f"  {key:<10} {value}")
    from repro.network.topo import depth

    print(f"  depth      {depth(net)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-domino",
        description="Reproduction of 'Automated Phase Assignment for the "
        "Synthesis of Low Power Domino Circuits' (DAC 1999)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure2", help="switching vs signal probability curves")
    p.add_argument("--points", type=int, default=21)
    p.set_defaults(func=_cmd_figure2)

    p = sub.add_parser("figure5", help="phase assignments vs switching example")
    p.add_argument("--vectors", type=int, default=65536)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_figure5)

    p = sub.add_parser("figure9", help="enhanced MFVS symmetry transformation demo")
    p.set_defaults(func=_cmd_figure9)

    p = sub.add_parser("figure10", help="BDD variable ordering comparison")
    p.set_defaults(func=_cmd_figure10)

    for table_name, timed in (("table1", False), ("table2", True)):
        p = sub.add_parser(table_name, help=f"reproduce {table_name}")
        p.add_argument("--circuits", nargs="*", default=None)
        p.add_argument("--vectors", type=int, default=4096)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--quick", action="store_true", help="small circuits only (fast sanity run)"
        )
        p.add_argument(
            "--jobs", type=int, default=1, help="parallel worker processes"
        )
        p.add_argument(
            "--output", default=None, help="write results to .json/.csv/.md"
        )
        _add_optimizer_flags(p)
        _add_stage_jobs_flag(p)
        _add_store_flags(p)
        p.set_defaults(func=lambda a, t=timed: _cmd_table(a, t))

    p = sub.add_parser("compare", help="static-CMOS vs domino power for a BLIF file")
    p.add_argument("blif")
    p.add_argument("--input-probability", type=float, default=0.5)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("dot", help="emit a Graphviz DOT drawing of a BLIF file")
    p.add_argument("blif")
    p.add_argument(
        "--probabilities", action="store_true", help="annotate signal probabilities"
    )
    p.set_defaults(func=_cmd_dot)

    p = sub.add_parser("synth", help="run the MA/MP flow on a BLIF file")
    p.add_argument("blif")
    p.add_argument(
        "--config", default=None, help="JSON FlowConfig file (flags override it)"
    )
    p.add_argument("--input-probability", type=float, default=None)
    p.add_argument("--timed", action="store_true")
    p.add_argument("--vectors", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    _add_optimizer_flags(p)
    _add_stage_jobs_flag(p)
    _add_store_flags(p)
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser(
        "batch",
        help="run the flow on many BLIF files / directories in parallel",
    )
    p.add_argument(
        "paths", nargs="+", help="BLIF files and/or directories of *.blif"
    )
    p.add_argument("--jobs", type=int, default=1, help="parallel worker processes")
    p.add_argument(
        "--config", default=None, help="JSON FlowConfig file (flags override it)"
    )
    p.add_argument("--input-probability", type=float, default=None)
    p.add_argument("--timed", action="store_true")
    p.add_argument("--vectors", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--per-circuit-seeds",
        action="store_true",
        help="derive a deterministic seed per circuit instead of sharing one",
    )
    p.add_argument(
        "--no-progress", action="store_true", help="suppress per-circuit progress lines"
    )
    p.add_argument(
        "--output", default=None, help="write results to .json/.csv/.md"
    )
    p.add_argument(
        "--order",
        choices=("cost", "fifo"),
        default="cost",
        help="dispatch order: predicted-cost descending (default) or input order",
    )
    p.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="per-circuit wall-clock budget; over-budget circuits fail instead "
        "of stalling the batch",
    )
    _add_optimizer_flags(p)
    _add_stage_jobs_flag(p)
    _add_store_flags(p)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "sweep",
        help="expand a FlowConfig parameter grid over BLIF files and run the batch",
    )
    p.add_argument(
        "paths", nargs="+", help="BLIF files and/or directories of *.blif"
    )
    p.add_argument(
        "--grid",
        action="append",
        required=True,
        metavar="NAME=V1,V2,...",
        help="FlowConfig field and values to sweep (repeatable; the grid is "
        "the cartesian product of all --grid flags). Strategies sweep too: "
        "--grid optimizer=pairwise,anneal, and optimizer_params.<param>=... "
        "sweeps one strategy knob or budget key",
    )
    p.add_argument("--jobs", type=int, default=1, help="parallel worker processes")
    p.add_argument(
        "--config", default=None, help="JSON FlowConfig file (the sweep base)"
    )
    p.add_argument("--input-probability", type=float, default=None)
    p.add_argument("--timed", action="store_true")
    p.add_argument("--vectors", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--per-circuit-seeds",
        action="store_true",
        help="derive a deterministic seed per circuit instead of sharing one",
    )
    p.add_argument(
        "--no-progress", action="store_true", help="suppress per-run progress lines"
    )
    p.add_argument(
        "--order", choices=("cost", "fifo"), default="cost",
        help="dispatch order across the whole sweep",
    )
    p.add_argument("--timeout-s", type=float, default=None)
    p.add_argument(
        "--output", default=None, help="write the sweep manifest to a JSON file"
    )
    p.add_argument(
        "--record",
        action="store_true",
        help="archive the sweep (manifest + per-run records) in the run registry",
    )
    p.add_argument(
        "--runs-dir",
        default=None,
        help="run registry directory (default: <store dir>/runs)",
    )
    _add_optimizer_flags(p)
    _add_stage_jobs_flag(p)
    _add_store_flags(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="run the async synthesis service (JSON over HTTP)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8080, help="TCP port (0 picks a free one)"
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: cores - 1)",
    )
    p.add_argument(
        "--queue-size", type=int, default=64,
        help="bound on queued jobs; a full queue answers HTTP 429",
    )
    p.add_argument(
        "--timeout-s", type=float, default=None,
        help="default per-job wall-clock budget (overridable per submission)",
    )
    p.add_argument(
        "--config", default=None,
        help="JSON FlowConfig file used for submissions without one",
    )
    p.add_argument("--input-probability", type=float, default=None)
    p.add_argument("--timed", action="store_true")
    p.add_argument("--vectors", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--no-progress", action="store_true",
        help="suppress per-job progress lines on stderr",
    )
    p.add_argument(
        "--abort-on-stop", action="store_true",
        help="on shutdown, cancel queued jobs instead of draining them",
    )
    _add_optimizer_flags(p)
    _add_stage_jobs_flag(p)
    _add_store_flags(p)
    _add_log_level_flag(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="distributed serving: coordinator + worker fleet (repro.fleet)",
    )
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)

    fc = fleet_sub.add_parser(
        "coordinator",
        help="run the fleet coordinator: the serve HTTP surface backed by "
        "remote workers instead of a local process pool",
    )
    fc.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
    fc.add_argument(
        "--port", type=int, default=8080,
        help="HTTP TCP port (0 picks a free one)",
    )
    fc.add_argument(
        "--fleet-host", default="127.0.0.1",
        help="worker-bus bind address (0.0.0.0 for off-host workers)",
    )
    fc.add_argument(
        "--fleet-port", type=int, default=7070,
        help="worker-bus TCP port (0 picks a free one)",
    )
    fc.add_argument(
        "--max-inflight", type=int, default=32,
        help="bound on jobs in flight toward the fleet at once",
    )
    fc.add_argument(
        "--queue-size", type=int, default=64,
        help="bound on queued jobs; a full queue answers HTTP 429",
    )
    fc.add_argument(
        "--timeout-s", type=float, default=None,
        help="default per-job wall-clock budget (overridable per submission)",
    )
    fc.add_argument(
        "--heartbeat-interval", type=float, default=2.0, metavar="S",
        help="worker heartbeat cadence in seconds",
    )
    fc.add_argument(
        "--miss-limit", type=int, default=3, metavar="N",
        help="consecutive missed heartbeats before a worker is declared "
        "dead and its jobs requeued",
    )
    fc.add_argument(
        "--max-requeues", type=int, default=2, metavar="N",
        help="times one job may be requeued off dead workers before it "
        "surfaces as a failure",
    )
    fc.add_argument(
        "--quarantine-after", type=int, default=3, metavar="N",
        help="consecutive job failures that quarantine a worker",
    )
    fc.add_argument(
        "--config", default=None,
        help="JSON FlowConfig file used for submissions without one",
    )
    fc.add_argument("--input-probability", type=float, default=None)
    fc.add_argument("--timed", action="store_true")
    fc.add_argument("--vectors", type=int, default=None)
    fc.add_argument("--seed", type=int, default=None)
    fc.add_argument(
        "--no-progress", action="store_true",
        help="suppress per-job progress lines on stderr",
    )
    fc.add_argument(
        "--abort-on-stop", action="store_true",
        help="on shutdown, cancel queued jobs instead of draining them",
    )
    _add_optimizer_flags(fc)
    _add_stage_jobs_flag(fc)
    _add_store_flags(fc)
    _add_log_level_flag(fc)
    fc.set_defaults(func=_cmd_fleet_coordinator)

    fw = fleet_sub.add_parser(
        "worker",
        help="run one fleet worker process (pull-based; reconnects until "
        "drained with Ctrl-C/SIGTERM)",
    )
    fw.add_argument(
        "--coordinator", default="127.0.0.1:7070", metavar="HOST[:PORT]",
        help="the coordinator's worker bus (default 127.0.0.1:7070)",
    )
    fw.add_argument(
        "--slots", type=int, default=None,
        help="concurrent jobs this worker runs (default: cores - 1)",
    )
    fw.add_argument(
        "--worker-id", default=None,
        help="stable worker identity across reconnects "
        "(default: <hostname>-<pid>-<hex>)",
    )
    _add_store_flags(fw)
    _add_log_level_flag(fw)
    fw.set_defaults(func=_cmd_fleet_worker)

    p = sub.add_parser("cache", help="inspect or prune the persistent artifact store")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "entry counts and sizes per artefact kind"),
        ("clear", "delete every entry"),
        ("gc", "drop corrupt, stale-format and (optionally) old entries"),
    ):
        cp = cache_sub.add_parser(name, help=help_text)
        cp.add_argument(
            "--store-dir",
            default=None,
            help="store directory (default: $REPRO_STORE_DIR or .repro-store)",
        )
        _add_backend_flags(cp)
        if name == "gc":
            cp.add_argument(
                "--max-age-days",
                type=float,
                default=None,
                help="also remove entries older than this many days",
            )
            cp.add_argument(
                "--dry-run",
                action="store_true",
                help="report what would be removed without deleting anything",
            )
        cp.set_defaults(func=_cmd_cache)

    p = sub.add_parser(
        "lint",
        help="check sources against the codebase invariants (repro.analysis)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; sarif emits SARIF 2.1.0)",
    )
    p.add_argument(
        "--select",
        action="append",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run exclusively (repeatable)",
    )
    p.add_argument(
        "--ignore",
        action="append",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip (repeatable)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules with their invariants and exit",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="accepted-findings file; only findings not in it fail the run",
    )
    p.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="snapshot current findings to FILE and exit 0 (warn-first landing)",
    )
    p.add_argument(
        "--diff",
        action="store_true",
        help="with --baseline: list only new findings, hide baselined ones",
    )
    p.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="reuse content-addressed summaries between runs "
        "(--no-cache forces a full cold run; default off)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="summary-cache directory (default: .repro-lint-cache)",
    )
    p.add_argument(
        "--explain",
        metavar="RULE:PATH:LINE",
        default=None,
        help="print the inference chain behind one finding and exit",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("info", help="print network statistics for a BLIF file")
    p.add_argument("blif")
    p.set_defaults(func=_cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.errors import ConfigError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        print(f"config error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
