"""Command-line interface.

``repro-domino`` (or ``python -m repro``) regenerates every table and
figure of the paper and runs the flow on arbitrary BLIF files::

    repro-domino figure2                 # switching curves
    repro-domino figure5                 # phase-assignment switching gap
    repro-domino figure9                 # enhanced MFVS demo
    repro-domino figure10                # BDD ordering comparison
    repro-domino table1 [--jobs N]       # MA vs MP, untimed
    repro-domino table2 [--jobs N]       # MA vs MP, timed (resizing)
    repro-domino synth design.blif       # run the flow on a BLIF file
    repro-domino batch dir/ --jobs 4     # parallel flow over many BLIFs
    repro-domino info design.blif        # network statistics

``synth`` and ``batch`` accept ``--config config.json``, a JSON dump
of :class:`repro.FlowConfig` (see ``FlowConfig.to_json``); explicit
command-line flags override fields from the file.  ``batch`` fans the
circuits across worker processes (``--jobs``) with per-circuit error
isolation: one bad BLIF is reported and the rest still complete.
``table1``/``table2`` parallelise the same way with ``--jobs``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_figure2(args: argparse.Namespace) -> int:
    from repro.power.activity import figure2_series

    series = figure2_series(points=args.points)
    print("p\tdomino_S\tstatic_S")
    for dom, sta in zip(series["domino"], series["static"]):
        p = dom["signal_probability"]
        print(f"{p:.2f}\t{dom['switching_probability']:.4f}\t{sta['switching_probability']:.4f}")
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    from repro.experiments.figure5 import run_figure5, format_figure5

    result = run_figure5(n_vectors=args.vectors, seed=args.seed)
    print(format_figure5(result))
    return 0


def _cmd_figure9(args: argparse.Namespace) -> int:
    from repro.experiments.figure9 import run_figure9, format_figure9

    print(format_figure9(run_figure9()))
    return 0


def _cmd_figure10(args: argparse.Namespace) -> int:
    from repro.experiments.figure10 import run_figure10, format_figure10

    print(format_figure10(run_figure10()))
    return 0


def _check_output_format(path: Optional[str]) -> Optional[int]:
    """Fail fast on an unsupported --output extension, *before* hours
    of synthesis compute; returns an exit code or None if fine."""
    from repro.report import REPORT_EXTENSIONS

    if path and not path.endswith(tuple(REPORT_EXTENSIONS)):
        print(
            f"unknown report format for {path!r} "
            f"(use {'/'.join(REPORT_EXTENSIONS)})",
            file=sys.stderr,
        )
        return 2
    return None


def _cmd_table(args: argparse.Namespace, timed: bool) -> int:
    from repro.experiments.tables import run_table, format_table_result

    bad_output = _check_output_format(args.output)
    if bad_output is not None:
        return bad_output
    result = run_table(
        timed=timed,
        circuits=args.circuits,
        n_vectors=args.vectors,
        seed=args.seed,
        quick=args.quick,
        jobs=args.jobs,
    )
    print(format_table_result(result))
    if args.output:
        from repro.report import save_results

        save_results([row.flow for row in result.rows], args.output)
        print(f"\nwrote {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.power.compare import compare_static_vs_domino

    net = _load_network(args.blif)
    report = compare_static_vs_domino(
        net, input_probs={pi: args.input_probability for pi in net.inputs}
    )
    print(f"static implementation power : {report.static_power:.3f}")
    print(
        f"domino implementation power : {report.domino_power:.3f} "
        f"(switching {report.domino_switching:.3f}, clock {report.domino_clock:.3f}, "
        f"boundary {report.domino_boundary:.3f})"
    )
    print(f"domino / static ratio       : {report.ratio:.2f}  (paper: up to ~4x)")
    print(f"duplication factor          : {report.duplication_factor:.2f}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.viz import network_to_dot

    net = _load_network(args.blif)
    probabilities = None
    if args.probabilities:
        from repro.power.probability import node_probabilities

        probabilities = node_probabilities(net).probabilities
    print(network_to_dot(net, probabilities=probabilities))
    return 0


def _load_network(path: str):
    from repro.network.blif import load_blif

    return load_blif(path)


def _effective_config(args: argparse.Namespace):
    """FlowConfig from ``--config`` (if given) with explicit CLI flags
    layered on top.  Flags use ``None`` defaults so "not given" and
    "given the default value" are distinguishable."""
    from repro.core.config import FlowConfig

    config = FlowConfig.from_file(args.config) if args.config else FlowConfig()
    overrides = {}
    for flag, field in (
        ("input_probability", "input_probability"),
        ("vectors", "n_vectors"),
        ("seed", "seed"),
    ):
        value = getattr(args, flag, None)
        if value is not None:
            overrides[field] = value
    if getattr(args, "timed", False):
        overrides["timed"] = True
    if overrides:
        config = config.replace(**overrides)
    return config


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.core.flow import format_table
    from repro.core.pipeline import Pipeline

    config = _effective_config(args)
    net = _load_network(args.blif)
    result = Pipeline(config).run(net).flow
    print(format_table([result.row()], f"Flow result for {net.name}"))
    print(f"\nMA assignment: {result.ma.assignment}")
    print(f"MP assignment: {result.mp.assignment}")
    print(f"probability engine: {result.probability_method}")
    return 0


def _expand_blifs(paths: List[str]) -> List[str]:
    """Expand directory arguments into their sorted ``*.blif`` members."""
    from pathlib import Path

    blifs: List[str] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            blifs.extend(str(f) for f in sorted(p.glob("*.blif")))
        else:
            blifs.append(raw)
    return blifs


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.core.batch import format_batch, run_many

    bad_output = _check_output_format(args.output)
    if bad_output is not None:
        return bad_output
    config = _effective_config(args)
    blifs = _expand_blifs(args.paths)
    if not blifs:
        print("no BLIF files found", file=sys.stderr)
        return 1

    def progress(done: int, total: int, item) -> None:
        status = "ok" if item.ok else "FAILED"
        print(
            f"[{done}/{total}] {item.name:<16} {status:<6} {item.runtime_s:6.1f}s",
            file=sys.stderr,
        )

    batch = run_many(
        blifs,
        config,
        jobs=args.jobs,
        per_circuit_seeds=args.per_circuit_seeds,
        progress=progress if not args.no_progress else None,
    )
    print(format_batch(batch, title=f"Batch synthesis ({len(blifs)} circuits)"))
    if args.output:
        from repro.report import save_batch

        save_batch(batch, args.output)
        print(f"\nwrote {args.output}")
    return 0 if batch.n_ok > 0 else 1


def _cmd_info(args: argparse.Namespace) -> int:
    net = _load_network(args.blif)
    stats = net.stats()
    print(f"model {net.name}")
    for key, value in stats.items():
        print(f"  {key:<10} {value}")
    from repro.network.topo import depth

    print(f"  depth      {depth(net)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-domino",
        description="Reproduction of 'Automated Phase Assignment for the "
        "Synthesis of Low Power Domino Circuits' (DAC 1999)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure2", help="switching vs signal probability curves")
    p.add_argument("--points", type=int, default=21)
    p.set_defaults(func=_cmd_figure2)

    p = sub.add_parser("figure5", help="phase assignments vs switching example")
    p.add_argument("--vectors", type=int, default=65536)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_figure5)

    p = sub.add_parser("figure9", help="enhanced MFVS symmetry transformation demo")
    p.set_defaults(func=_cmd_figure9)

    p = sub.add_parser("figure10", help="BDD variable ordering comparison")
    p.set_defaults(func=_cmd_figure10)

    for table_name, timed in (("table1", False), ("table2", True)):
        p = sub.add_parser(table_name, help=f"reproduce {table_name}")
        p.add_argument("--circuits", nargs="*", default=None)
        p.add_argument("--vectors", type=int, default=4096)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--quick", action="store_true", help="small circuits only (fast sanity run)"
        )
        p.add_argument(
            "--jobs", type=int, default=1, help="parallel worker processes"
        )
        p.add_argument(
            "--output", default=None, help="write results to .json/.csv/.md"
        )
        p.set_defaults(func=lambda a, t=timed: _cmd_table(a, t))

    p = sub.add_parser("compare", help="static-CMOS vs domino power for a BLIF file")
    p.add_argument("blif")
    p.add_argument("--input-probability", type=float, default=0.5)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("dot", help="emit a Graphviz DOT drawing of a BLIF file")
    p.add_argument("blif")
    p.add_argument(
        "--probabilities", action="store_true", help="annotate signal probabilities"
    )
    p.set_defaults(func=_cmd_dot)

    p = sub.add_parser("synth", help="run the MA/MP flow on a BLIF file")
    p.add_argument("blif")
    p.add_argument(
        "--config", default=None, help="JSON FlowConfig file (flags override it)"
    )
    p.add_argument("--input-probability", type=float, default=None)
    p.add_argument("--timed", action="store_true")
    p.add_argument("--vectors", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser(
        "batch",
        help="run the flow on many BLIF files / directories in parallel",
    )
    p.add_argument(
        "paths", nargs="+", help="BLIF files and/or directories of *.blif"
    )
    p.add_argument("--jobs", type=int, default=1, help="parallel worker processes")
    p.add_argument(
        "--config", default=None, help="JSON FlowConfig file (flags override it)"
    )
    p.add_argument("--input-probability", type=float, default=None)
    p.add_argument("--timed", action="store_true")
    p.add_argument("--vectors", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--per-circuit-seeds",
        action="store_true",
        help="derive a deterministic seed per circuit instead of sharing one",
    )
    p.add_argument(
        "--no-progress", action="store_true", help="suppress per-circuit progress lines"
    )
    p.add_argument(
        "--output", default=None, help="write results to .json/.csv/.md"
    )
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser("info", help="print network statistics for a BLIF file")
    p.add_argument("blif")
    p.set_defaults(func=_cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.errors import ConfigError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        print(f"config error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
