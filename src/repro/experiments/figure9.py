"""Figure 9 experiment: the symmetry-based MFVS transformation.

On the strongly connected example of Figure 9, none of the classic
reductions applies; the symmetry transformation collapses {A, B, E} and
{C, D} into two weighted supervertices, after which the heuristic finds
the optimal cut.  The experiment reports reduced graph sizes and FVS
quality with and without the enhancement, and validates against the
exact branch-and-bound solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.seq.mfvs import exact_mfvs, greedy_mfvs, verify_feedback_set
from repro.seq.transforms import figure9_graph, reduce_graph


@dataclass
class Figure9Result:
    original_vertices: int
    original_edges: int
    reduced_vertices_plain: int
    reduced_vertices_enhanced: int
    supervertices: Dict[str, int]
    greedy_plain_size: int
    greedy_enhanced_size: int
    exact_size: int
    greedy_plain_valid: bool
    greedy_enhanced_valid: bool


def run_figure9() -> Figure9Result:
    graph = figure9_graph()

    plain = reduce_graph(graph, use_symmetry=False)

    # Show the grouping itself (one symmetry pass), before the other
    # reductions consume the resulting 2-vertex cycle.
    grouped = graph.copy()
    from repro.seq.transforms import apply_symmetry_grouping

    apply_symmetry_grouping(grouped)
    supervertices = {
        name: grouped.weight[name]
        for name in grouped.vertices
        if grouped.weight[name] > 1
    }

    greedy_plain = greedy_mfvs(graph, use_symmetry=False)
    greedy_enhanced = greedy_mfvs(graph, use_symmetry=True)
    exact = exact_mfvs(graph)

    return Figure9Result(
        original_vertices=graph.n_vertices,
        original_edges=graph.n_edges,
        reduced_vertices_plain=plain.graph.n_vertices,
        reduced_vertices_enhanced=grouped.n_vertices,
        supervertices=supervertices,
        greedy_plain_size=greedy_plain.size,
        greedy_enhanced_size=greedy_enhanced.size,
        exact_size=exact.size,
        greedy_plain_valid=verify_feedback_set(graph, greedy_plain.feedback),
        greedy_enhanced_valid=verify_feedback_set(graph, greedy_enhanced.feedback),
    )


def format_figure9(result: Figure9Result) -> str:
    lines = [
        "Figure 9 — symmetry-based MFVS transformation",
        f"original s-graph: {result.original_vertices} vertices, "
        f"{result.original_edges} edges",
        f"after classic reductions only: {result.reduced_vertices_plain} vertices "
        "(no reduction applies)",
        f"after symmetry grouping: {result.reduced_vertices_enhanced} supervertices",
    ]
    for name, weight in sorted(result.supervertices.items()):
        lines.append(f"  supervertex {name} (weight {weight})")
    lines.append(
        f"FVS sizes — greedy: {result.greedy_plain_size}, "
        f"greedy+symmetry: {result.greedy_enhanced_size}, "
        f"exact: {result.exact_size}"
    )
    lines.append(
        f"validity — greedy: {result.greedy_plain_valid}, "
        f"greedy+symmetry: {result.greedy_enhanced_valid}"
    )
    return "\n".join(lines)
