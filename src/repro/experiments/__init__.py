"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments.figure2 import Figure2Point, format_figure2, run_figure2
from repro.experiments.figure5 import Figure5Result, Figure5Row, format_figure5, run_figure5
from repro.experiments.figure9 import Figure9Result, format_figure9, run_figure9
from repro.experiments.figure10 import (
    OrderingComparison,
    format_figure10,
    run_figure10,
)
from repro.experiments.tables import (
    QUICK_CIRCUITS,
    TableResult,
    TableRow,
    format_table_result,
    run_table,
)

__all__ = [
    "Figure2Point",
    "format_figure2",
    "run_figure2",
    "Figure5Result",
    "Figure5Row",
    "format_figure5",
    "run_figure5",
    "Figure9Result",
    "format_figure9",
    "run_figure9",
    "OrderingComparison",
    "format_figure10",
    "run_figure10",
    "QUICK_CIRCUITS",
    "TableResult",
    "TableRow",
    "format_table_result",
    "run_table",
]
