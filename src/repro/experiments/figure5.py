"""Figure 5 experiment: phase assignment changes switching dramatically.

On the f/g example (f = NOT((a+b)+(c·d)), g = (a+b)+(c·d)) with input
signal probabilities 0.9, the paper's second realisation has ~75% fewer
transitions than the minimum-area one, even though it is larger.  This
experiment enumerates all four phase assignments, reports analytic and
Monte-Carlo switching for each (domino block + boundary inverters,
exactly Figure 5's accounting), and compares the best against the
minimum-area choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.bench.figures import FIGURE5_INPUT_PROBABILITY, figure3_network
from repro.network.duplication import phase_transform
from repro.network.ops import cleanup, to_aoi
from repro.phase import Phase, PhaseAssignment, enumerate_assignments
from repro.power.estimator import DominoPowerModel, PhaseEvaluator
from repro.power.simulator import measure_switching_counts


@dataclass
class Figure5Row:
    assignment: PhaseAssignment
    n_gates: int
    domino_switching: float
    input_inverter_switching: float
    output_inverter_switching: float
    total_estimated: float
    total_measured: float
    area_cells: int


@dataclass
class Figure5Result:
    rows: List[Figure5Row]
    input_probability: float
    min_area_row: Figure5Row = field(init=False)
    min_power_row: Figure5Row = field(init=False)

    def __post_init__(self) -> None:
        self.min_area_row = min(self.rows, key=lambda r: (r.area_cells, r.total_estimated))
        self.min_power_row = min(self.rows, key=lambda r: r.total_estimated)

    @property
    def switching_reduction_percent(self) -> float:
        base = self.min_area_row.total_estimated
        if base == 0:
            return 0.0
        return 100.0 * (base - self.min_power_row.total_estimated) / base


def run_figure5(
    input_probability: float = FIGURE5_INPUT_PROBABILITY,
    n_vectors: int = 65536,
    seed: int = 0,
) -> Figure5Result:
    net = cleanup(to_aoi(figure3_network()))
    input_probs = {pi: input_probability for pi in net.inputs}
    model = DominoPowerModel(gate_cap=1.0, inverter_cap=1.0, current_scale=1.0)
    evaluator = PhaseEvaluator(net, input_probs=input_probs, model=model, method="bdd")

    rows: List[Figure5Row] = []
    for assignment in enumerate_assignments(net.output_names()):
        breakdown = evaluator.breakdown(assignment)
        impl = phase_transform(net, assignment)
        measured = measure_switching_counts(
            impl, input_probs=input_probs, n_vectors=n_vectors, seed=seed
        )
        rows.append(
            Figure5Row(
                assignment=assignment,
                n_gates=breakdown.n_gates,
                domino_switching=breakdown.domino,
                input_inverter_switching=breakdown.input_inverters,
                output_inverter_switching=breakdown.output_inverters,
                total_estimated=breakdown.total,
                total_measured=measured["total"],
                area_cells=breakdown.area_cells,
            )
        )
    return Figure5Result(rows=rows, input_probability=input_probability)


def format_figure5(result: Figure5Result) -> str:
    lines = [
        "Figure 5 — switching of all phase assignments "
        f"(input probability {result.input_probability})",
        f"{'assignment':<28} {'cells':>5} {'domino':>8} {'inv_in':>7} "
        f"{'inv_out':>7} {'total':>8} {'MC total':>9}",
    ]
    for row in result.rows:
        tag = ""
        if row is result.min_area_row:
            tag += " <- min area"
        if row is result.min_power_row:
            tag += " <- min power"
        lines.append(
            f"{str(row.assignment):<28} {row.area_cells:>5} "
            f"{row.domino_switching:>8.4f} {row.input_inverter_switching:>7.4f} "
            f"{row.output_inverter_switching:>7.4f} {row.total_estimated:>8.4f} "
            f"{row.total_measured:>9.4f}{tag}"
        )
    lines.append(
        f"switching reduction of min-power vs min-area: "
        f"{result.switching_reduction_percent:.1f}%  (paper: ~75%)"
    )
    return "\n".join(lines)
