"""Figure 10 experiment: BDD variable ordering comparison.

The paper's sketch reports 7 BDD nodes for the reverse-topological
(domino) ordering, 11 for the plain topological ordering and 9 for an
ordering with "disturbed signal grouping".  We measure the same three
orderings on the figure's P/Q/R circuit and on suite circuits; the
expected *shape* is  domino <= disturbed <= topological.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bdd.builder import compare_orderings
from repro.bdd.ordering import order_variables
from repro.bench.figures import figure10_network
from repro.network.netlist import LogicNetwork
from repro.network.ops import cleanup, to_aoi


@dataclass
class OrderingComparison:
    circuit: str
    node_counts: Dict[str, int]
    orders: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def domino_wins(self) -> bool:
        counts = self.node_counts
        return counts["domino"] <= min(counts.values())


def run_figure10(
    extra_circuits: Optional[Dict[str, LogicNetwork]] = None,
    max_nodes: int = 2_000_000,
) -> List[OrderingComparison]:
    """Ordering comparison on the figure circuit (+ optional extras)."""
    circuits: Dict[str, LogicNetwork] = {"figure10": figure10_network()}
    if extra_circuits:
        circuits.update(extra_circuits)
    results: List[OrderingComparison] = []
    for name, net in circuits.items():
        aoi = cleanup(to_aoi(net))
        counts = compare_orderings(
            aoi, strategies=("domino", "topological", "disturbed"), max_nodes=max_nodes
        )
        orders = {
            strategy: order_variables(aoi, strategy)
            for strategy in ("domino", "topological", "disturbed")
        }
        results.append(
            OrderingComparison(circuit=name, node_counts=counts, orders=orders)
        )
    return results


def format_figure10(results: List[OrderingComparison]) -> str:
    lines = [
        "Figure 10 — shared BDD node counts per variable ordering",
        "(paper example: domino 7, topological 11, disturbed 9)",
        f"{'circuit':<14} {'domino':>8} {'topological':>12} {'disturbed':>10}",
    ]
    for r in results:
        c = r.node_counts
        lines.append(
            f"{r.circuit:<14} {c['domino']:>8} {c['topological']:>12} "
            f"{c['disturbed']:>10}"
        )
        if r.circuit == "figure10":
            lines.append(
                f"  domino order (top..bottom): {', '.join(r.orders['domino'])}"
            )
    return "\n".join(lines)
