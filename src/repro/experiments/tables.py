"""Table 1 / Table 2 experiments: the MA-vs-MP suite runs.

Runs the full Figure 6 flow (min-area baseline vs min-power phase
assignment, technology mapping, optional timing repair, Monte-Carlo
power measurement) over the calibrated benchmark suite and prints the
rows in the paper's layout next to the paper's own numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.bench.mcnc import (
    TABLE1_PAPER_AVERAGES,
    TABLE1_SUITE,
    TABLE2_PAPER_AVERAGES,
    TABLE2_SUITE,
    BenchmarkSpec,
    PaperRow,
)
from repro.core.batch import ProgressCallback, run_many
from repro.core.config import FlowConfig
from repro.core.flow import FlowResult
from repro.errors import BatchError

#: Circuits small enough for quick CI-style runs.
QUICK_CIRCUITS = ("frg1", "apex7", "x1")


@dataclass
class TableRow:
    spec: BenchmarkSpec
    flow: FlowResult
    paper: Optional[PaperRow]
    runtime_s: float
    cached: bool = False  # served whole from the persistent store


@dataclass
class TableResult:
    timed: bool
    rows: List[TableRow]

    @property
    def n_cached(self) -> int:
        return sum(1 for row in self.rows if row.cached)

    @property
    def measured_averages(self) -> Dict[str, float]:
        if not self.rows:
            return {"area_penalty_pct": 0.0, "power_savings_pct": 0.0}
        return {
            "area_penalty_pct": sum(r.flow.area_penalty_percent for r in self.rows)
            / len(self.rows),
            "power_savings_pct": sum(r.flow.power_savings_percent for r in self.rows)
            / len(self.rows),
        }

    @property
    def paper_averages(self) -> Dict[str, float]:
        return TABLE2_PAPER_AVERAGES if self.timed else TABLE1_PAPER_AVERAGES


def run_table(
    timed: bool = False,
    circuits: Optional[List[str]] = None,
    n_vectors: int = 4096,
    seed: int = 0,
    quick: bool = False,
    input_probability: float = 0.5,
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
    store: Optional["ArtifactStore"] = None,  # noqa: F821
    stage_jobs: Optional[int] = None,
    optimizer: Optional[str] = None,
    optimizer_params: Optional[Dict[str, Any]] = None,
) -> TableResult:
    """Run (a subset of) Table 1 (untimed) or Table 2 (timed).

    The suite goes through :func:`repro.core.batch.run_many`, so
    ``jobs > 1`` runs circuits in parallel with identical results (the
    whole flow is seeded per circuit, not per process); ``stage_jobs``
    additionally threads the MA/MP work *inside* each flow (see
    :mod:`repro.core.pipeline`), again with bit-identical numbers.
    With a ``store``, circuits already archived for this exact config
    are served from disk without executing any synthesis stage
    (``TableRow.cached``) and produce bit-identical table numbers.
    ``optimizer`` / ``optimizer_params`` pick the MP search strategy
    from the :mod:`repro.optimize` registry (default: the paper's
    ``pairwise`` heuristic) — how the optimizer-smoke CI job reruns the
    tables once per registered strategy.
    """
    suite = TABLE2_SUITE if timed else TABLE1_SUITE
    selected: List[BenchmarkSpec] = []
    for spec in suite:
        if circuits is not None and spec.name not in circuits:
            continue
        if quick and spec.name not in QUICK_CIRCUITS:
            continue
        selected.append(spec)

    config = FlowConfig(
        input_probability=input_probability,
        timed=timed,
        n_vectors=n_vectors,
        seed=seed,
    )
    if optimizer is not None:
        config = config.replace(optimizer=optimizer)
    if optimizer_params is not None:
        config = config.replace(optimizer_params=dict(optimizer_params))
    batch = run_many(
        selected,
        config,
        jobs=jobs,
        progress=progress,
        store=store,
        stage_jobs=stage_jobs,
    )
    if batch.failures:
        details = "; ".join(
            f"{item.name}: {(item.error or '?').splitlines()[0]}"
            for item in batch.failures
        )
        first = batch.failures[0]
        raise BatchError(
            f"table suite failed for {batch.n_failed} circuit(s): {details}\n\n"
            f"{first.name} traceback:\n{first.error}",
            failures=batch.failures,
        )

    rows: List[TableRow] = []
    for spec, item in zip(selected, batch.items):
        paper = spec.table2 if timed else spec.table1
        rows.append(
            TableRow(
                spec=spec,
                flow=item.result,
                paper=paper,
                runtime_s=item.runtime_s,
                cached=item.cached,
            )
        )
    return TableResult(timed=timed, rows=rows)


def format_table_result(result: TableResult) -> str:
    title = (
        "Table 2 — timed synthesis (transistor resizing), PI probability 0.5"
        if result.timed
        else "Table 1 — synthesis, PI probability 0.5"
    )
    header = (
        f"{'Ckt':<11} {'#PI':>4} {'#PO':>4} "
        f"{'MA Size':>8} {'MA Pwr':>7} {'MP Size':>8} {'MP Pwr':>7} "
        f"{'%Area':>6} {'%Pwr':>6}  {'paper %A':>8} {'paper %P':>8} {'sec':>6}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row in result.rows:
        f = row.flow
        paper_a = f"{row.paper.area_penalty_pct:>8.1f}" if row.paper else "     n/a"
        paper_p = f"{row.paper.power_savings_pct:>8.1f}" if row.paper else "     n/a"
        lines.append(
            f"{f.name:<11} {f.n_inputs:>4} {f.n_outputs:>4} "
            f"{f.ma.size:>8} {f.ma.power_ma:>7.2f} {f.mp.size:>8} "
            f"{f.mp.power_ma:>7.2f} {f.area_penalty_percent:>6.1f} "
            f"{f.power_savings_percent:>6.1f}  {paper_a} {paper_p} "
            f"{row.runtime_s:>6.1f}"
        )
    lines.append("-" * len(header))
    m = result.measured_averages
    p = result.paper_averages
    lines.append(
        f"{'Average':<11} {'':>4} {'':>4} {'':>8} {'':>7} {'':>8} {'':>7} "
        f"{m['area_penalty_pct']:>6.1f} {m['power_savings_pct']:>6.1f}  "
        f"{p['area_penalty_pct']:>8.1f} {p['power_savings_pct']:>8.1f}"
    )
    return "\n".join(lines)
