"""Figure 2 experiment: switching vs signal probability, analytic + MC.

Validates the two analytic curves (domino: S = p; static: S = 2p(1-p))
against Monte-Carlo measurements on a single AND gate whose input
probability is swept so its output probability covers [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.power.activity import domino_switching, static_switching


@dataclass
class Figure2Point:
    signal_probability: float
    domino_analytic: float
    static_analytic: float
    domino_measured: float
    static_measured: float


def run_figure2(
    probabilities: List[float] = None, n_vectors: int = 65536, seed: int = 0
) -> List[Figure2Point]:
    """Sweep signal probability; measure both switching models by MC."""
    if probabilities is None:
        probabilities = [i / 20 for i in range(21)]
    rng = np.random.default_rng(seed)
    points: List[Figure2Point] = []
    for p in probabilities:
        stream = rng.random(n_vectors) < p
        # Domino: one discharge/precharge pair whenever the output is 1.
        domino_measured = float(stream.mean())
        # Static: transitions between consecutive evaluations.
        if n_vectors > 1:
            static_measured = float(np.mean(stream[1:] != stream[:-1]))
        else:
            static_measured = 0.0
        points.append(
            Figure2Point(
                signal_probability=p,
                domino_analytic=domino_switching(p),
                static_analytic=static_switching(p),
                domino_measured=domino_measured,
                static_measured=static_measured,
            )
        )
    return points


def format_figure2(points: List[Figure2Point]) -> str:
    lines = [
        "Figure 2 — switching probability vs signal probability",
        f"{'p':>5} {'domino':>8} {'dom(MC)':>8} {'static':>8} {'sta(MC)':>8}",
    ]
    for pt in points:
        lines.append(
            f"{pt.signal_probability:>5.2f} {pt.domino_analytic:>8.4f} "
            f"{pt.domino_measured:>8.4f} {pt.static_analytic:>8.4f} "
            f"{pt.static_measured:>8.4f}"
        )
    return "\n".join(lines)
