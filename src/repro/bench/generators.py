"""Deterministic synthetic circuit generators.

The paper evaluates on MCNC benchmarks (apex7, frg1, x1, x3) and three
proprietary Intel control blocks.  Neither the BLIF files nor the Intel
circuits ship with this reproduction (no network access, proprietary
data), so we generate *control-logic-like* multi-level networks with
the paper's exact PI/PO counts and calibrated gate counts:

* shallow, convergent cones (the structure Section 4.2.2 describes);
* windowed PI supports so per-output BDDs stay small while adjacent
  cones still share logic (non-zero O(i,j) overlap, the quantity the
  cost function keys on);
* inverters sprinkled through the network, as technology-independent
  synthesis leaves them (Step 1 of the Puri flow);
* fully seeded, so every bench run sees the identical circuit.

Real MCNC BLIF files can be dropped in via :func:`repro.network.blif.load_blif`
and run through the same flow.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.network.netlist import GateType, LogicNetwork


@dataclass
class GeneratorConfig:
    """Knobs of :func:`random_control_network`.

    Inverter placement mirrors what SOP-based technology-independent
    synthesis actually produces: mostly negated *input literals*
    (``pi_literal_negation_probability``), some complemented output
    functions (``output_inverter_probability``, which phase assignment
    can absorb), and only occasional inverters trapped deep inside the
    network (``inverter_probability``, whose duplication no phase
    choice can avoid).
    """

    n_inputs: int
    n_outputs: int
    n_gates: int
    seed: int = 0
    support_size: int = 12
    outputs_per_window: int = 3
    max_fanin: int = 5
    inverter_probability: float = 0.05
    pi_literal_negation_probability: float = 0.25
    output_inverter_probability: float = 0.4
    #: Probability that a window is OR-dominant (vs AND-dominant).
    or_probability: float = 0.6
    #: How strongly a window's gates follow its dominant type.  High
    #: dominance gives coherently skewed cone probabilities — the wide
    #: decoders / wide selects of real control logic.
    window_dominance: float = 0.8

    def validate(self) -> None:
        if self.n_inputs < 2:
            raise ReproError("need at least 2 primary inputs")
        if self.n_outputs < 1:
            raise ReproError("need at least 1 primary output")
        if self.n_gates < self.n_outputs:
            raise ReproError("need at least one gate per output")
        if self.max_fanin < 2:
            raise ReproError("max fanin must be at least 2")
        for prob_name in (
            "inverter_probability",
            "pi_literal_negation_probability",
            "output_inverter_probability",
            "or_probability",
            "window_dominance",
        ):
            value = getattr(self, prob_name)
            if not (0.0 <= value <= 1.0):
                raise ReproError(f"{prob_name} out of range: {value}")


def random_control_network(
    name: str,
    config: GeneratorConfig,
) -> LogicNetwork:
    """Generate a combinational control-logic-like network.

    Primary outputs are grouped into *windows*; each window owns a
    contiguous (wrapping) slice of the primary inputs and a private
    gate DAG, so outputs inside a window share logic heavily while
    different windows are disjoint.  Window supports overlap on PIs,
    mimicking the convergent fan-in structure of real control blocks.
    """
    config.validate()
    rng = random.Random(config.seed)
    net = LogicNetwork(name)
    pis = [f"x{i}" for i in range(config.n_inputs)]
    for pi in pis:
        net.add_input(pi)

    n_windows = max(1, (config.n_outputs + config.outputs_per_window - 1) // config.outputs_per_window)
    gates_per_window = max(2, config.n_gates // n_windows)
    support = min(config.support_size, config.n_inputs)
    stride = max(1, (config.n_inputs - support // 2) // max(n_windows, 1))

    po_index = 0
    for w in range(n_windows):
        start = (w * stride) % config.n_inputs
        window_pis = [pis[(start + k) % config.n_inputs] for k in range(support)]
        pool: List[str] = list(window_pis)
        created: List[str] = []
        # ``unused`` tracks signals not yet read by any gate, so the
        # final collector gates can pull the whole window DAG into the
        # primary-output cones (no dead logic).
        unused: List[str] = []
        inverter_cache: Dict[str, str] = {}

        def negated(signal: str) -> str:
            """Shared NOT node over ``signal`` (one inverter per signal)."""
            if signal not in inverter_cache:
                iname = net.fresh_name(f"{signal}_not")
                net.add_gate(iname, GateType.NOT, [signal])
                inverter_cache[signal] = iname
            return inverter_cache[signal]

        dominant = GateType.OR if rng.random() < config.or_probability else GateType.AND
        minority = GateType.AND if dominant is GateType.OR else GateType.OR
        for g in range(gates_per_window):
            gate_type = dominant if rng.random() < config.window_dominance else minority
            k = rng.randint(2, config.max_fanin)
            k = min(k, len(pool))
            # Bias selection toward recently created signals: deeper,
            # more convergent cones.
            fanins: List[str] = []
            while len(fanins) < k:
                if unused and rng.random() < 0.45:
                    cand = unused[rng.randrange(len(unused))]
                elif created and rng.random() < 0.6:
                    cand = created[int(rng.triangular(0, len(created), len(created) - 1))]
                else:
                    cand = rng.choice(window_pis)
                    # Negated input literals, as SOP covers produce.
                    if rng.random() < config.pi_literal_negation_probability:
                        cand = negated(cand)
                if cand not in fanins:
                    fanins.append(cand)
            for fi in fanins:
                if fi in unused:
                    unused.remove(fi)
            gname = f"w{w}_g{g}"
            net.add_gate(gname, gate_type, fanins)
            out_signal = gname
            # Rare trapped inverters, restricted to first-level gates:
            # a deep trapped inverter would demand the negative polarity
            # of its whole (heavily shared) fanin cone and duplicate the
            # entire window regardless of phase choice, which is not how
            # optimised technology-independent networks look.
            shallow = all(fi in window_pis or fi in inverter_cache.values() for fi in fanins)
            if shallow and rng.random() < config.inverter_probability:
                out_signal = negated(gname)
            created.append(out_signal)
            pool.append(out_signal)
            unused.append(out_signal)

        # Roots: collector gates over the yet-unused signals so every
        # created gate lies inside some primary-output cone.
        n_here = min(config.outputs_per_window, config.n_outputs - po_index)
        rng.shuffle(unused)
        shares = [unused[r::n_here] for r in range(n_here)] if unused else []
        for r in range(n_here):
            leftovers = shares[r] if r < len(shares) else []
            # Each root also taps a couple of random created gates so
            # the window's output cones overlap (non-zero O(i,j)).
            taps = rng.sample(created, min(len(created), 2)) if created else []
            fanins = list(dict.fromkeys(leftovers + taps))
            if len(fanins) >= 2:
                root = f"w{w}_root{r}"
                gate_type = GateType.OR if rng.random() < 0.5 else GateType.AND
                net.add_gate(root, gate_type, fanins)
                driver = root
            elif fanins:
                driver = fanins[0]
            else:
                driver = rng.choice(created) if created else rng.choice(window_pis)
            # Complemented output functions: the inverters Step 2 of the
            # Puri flow exists to remove.
            if rng.random() < config.output_inverter_probability:
                driver = negated(driver)
            net.add_output(f"out{po_index}", driver)
            po_index += 1
        if po_index >= config.n_outputs:
            break

    # Degenerate configs can finish windows early; round-robin any
    # remaining outputs onto existing drivers.
    all_gates = [n.name for n in net.gates]
    while po_index < config.n_outputs:
        net.add_output(f"out{po_index}", rng.choice(all_gates))
        po_index += 1

    net.validate()
    return net


def random_sequential_network(
    name: str,
    n_inputs: int,
    n_latches: int,
    n_gates: int,
    seed: int = 0,
    max_fanin: int = 3,
    feedback_probability: float = 0.6,
    twin_groups: int = 0,
) -> LogicNetwork:
    """Generate a sequential network with latch feedback.

    ``twin_groups`` > 0 inserts groups of latches with *identical*
    fanins and fanouts — the duplication twins the paper's symmetry
    transformation (Fig. 9) is designed to exploit.
    """
    if n_latches < 1:
        raise ReproError("need at least one latch")
    rng = random.Random(seed)
    net = LogicNetwork(name)
    pis = [f"x{i}" for i in range(n_inputs)]
    for pi in pis:
        net.add_input(pi)

    latch_names = [f"l{i}" for i in range(n_latches)]
    # Latch outputs participate in the combinational pool immediately;
    # data inputs are connected after the logic exists.
    pool: List[str] = list(pis) + latch_names
    placeholder_nodes: Dict[str, None] = {}
    for lname in latch_names:
        # Temporarily add latches fed by a PI; rewired below.
        net.add_latch(lname, pis[0], init_value=0)

    created: List[str] = []
    for g in range(n_gates):
        gate_type = rng.choice((GateType.AND, GateType.OR))
        k = min(rng.randint(2, max_fanin), len(pool))
        fanins: List[str] = []
        while len(fanins) < k:
            cand = rng.choice(pool if rng.random() < 0.7 else pis)
            if cand not in fanins:
                fanins.append(cand)
        gname = f"g{g}"
        net.add_gate(gname, gate_type, fanins)
        sig = gname
        if rng.random() < 0.25:
            iname = f"g{g}_inv"
            net.add_gate(iname, GateType.NOT, [gname])
            sig = iname
        created.append(sig)
        pool.append(sig)

    # Rewire latch data inputs: mostly from gates (creating feedback
    # when those gates read latch outputs).
    for lname in latch_names:
        if created and rng.random() < feedback_probability:
            net.nodes[lname].fanins = [rng.choice(created)]
        else:
            net.nodes[lname].fanins = [rng.choice(pis)]

    # Twin groups: cluster latches behind one driver and one reader so
    # their s-graph fanin/fanout signatures coincide.
    if twin_groups > 0 and created:
        per_group = max(2, n_latches // (twin_groups * 2))
        li = 0
        for tg in range(twin_groups):
            driver = rng.choice(created)
            members = latch_names[li : li + per_group]
            li += per_group
            if len(members) < 2:
                break
            for m in members:
                net.nodes[m].fanins = [driver]
            reader = net.fresh_name(f"twin_read{tg}")
            net.add_gate(reader, GateType.AND, list(members))
            # Feed the reader back into a later latch to keep cycles.
            target = latch_names[(li + tg) % n_latches]
            if target not in members:
                net.nodes[target].fanins = [reader]
            created.append(reader)

    # Primary outputs: a handful of deep gates.
    n_outputs = max(1, min(8, n_gates // 8))
    for i in range(n_outputs):
        net.add_output(f"out{i}", created[-(i % len(created)) - 1])

    net.validate()
    return net


def ladder_network(name: str, n_stages: int, invert_every: int = 2) -> LogicNetwork:
    """A deterministic AND/OR ladder used by unit tests.

    Stage k computes ``s_k = op(s_{k-1}, x_k)`` with alternating
    AND/OR, inserting an inverter every ``invert_every`` stages.
    """
    if n_stages < 1:
        raise ReproError("ladder needs at least one stage")
    net = LogicNetwork(name)
    prev = "x0"
    net.add_input(prev)
    for k in range(1, n_stages + 1):
        xk = f"x{k}"
        net.add_input(xk)
        op = GateType.AND if k % 2 else GateType.OR
        gname = f"s{k}"
        net.add_gate(gname, op, [prev, xk])
        if invert_every and k % invert_every == 0:
            iname = f"s{k}_inv"
            net.add_gate(iname, GateType.NOT, [gname])
            prev = iname
        else:
            prev = gname
    net.add_output("out", prev)
    net.validate()
    return net
