"""Benchmark circuits: synthetic suite, figure examples, generators."""

from repro.bench.generators import (
    GeneratorConfig,
    ladder_network,
    random_control_network,
    random_sequential_network,
)
from repro.bench.figures import (
    FIGURE5_INPUT_PROBABILITY,
    figure3_network,
    figure7_network,
    figure10_network,
)
from repro.bench.mcnc import (
    TABLE1_PAPER_AVERAGES,
    TABLE1_SUITE,
    TABLE2_PAPER_AVERAGES,
    TABLE2_SUITE,
    BenchmarkSpec,
    PaperRow,
    build_suite,
    spec_by_name,
)

__all__ = [
    "GeneratorConfig",
    "ladder_network",
    "random_control_network",
    "random_sequential_network",
    "FIGURE5_INPUT_PROBABILITY",
    "figure3_network",
    "figure7_network",
    "figure10_network",
    "TABLE1_PAPER_AVERAGES",
    "TABLE1_SUITE",
    "TABLE2_PAPER_AVERAGES",
    "TABLE2_SUITE",
    "BenchmarkSpec",
    "PaperRow",
    "build_suite",
    "spec_by_name",
]
