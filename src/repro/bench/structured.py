"""Structured benchmark circuits.

Classic datapath/control structures with known shapes, complementing
the random control-logic generators.  Each returns a technology-
independent network (inverters included where natural), so the full
flow can run on them.  They also make the phase-assignment physics
legible:

* a **decoder** is AND-dominant — output probabilities are tiny, so
  positive phases are already near-optimal;
* an **or-tree / priority encoder** is OR-dominant — probabilities
  saturate toward 1 and negative phases win big;
* a **parity tree** is XOR logic — probabilities pin to 0.5 and phase
  choice is nearly power-neutral;
* a **comparator** mixes both regimes.
"""

from __future__ import annotations

from typing import List

from repro.errors import ReproError
from repro.network.netlist import GateType, LogicNetwork


def decoder(n_select: int, name: str = "decoder") -> LogicNetwork:
    """n-to-2^n line decoder: out_k = AND of select literals."""
    if n_select < 1 or n_select > 8:
        raise ReproError("decoder supports 1..8 select lines")
    net = LogicNetwork(name)
    selects = [f"s{i}" for i in range(n_select)]
    for s in selects:
        net.add_input(s)
    inverted: List[str] = []
    for s in selects:
        inv = f"{s}_n"
        net.add_gate(inv, GateType.NOT, [s])
        inverted.append(inv)
    for k in range(1 << n_select):
        literals = [
            selects[i] if (k >> i) & 1 else inverted[i] for i in range(n_select)
        ]
        if len(literals) == 1:
            net.add_output(f"out{k}", literals[0])
            continue
        net.add_gate(f"out{k}", GateType.AND, literals)
        net.add_output(f"out{k}")
    net.validate()
    return net


def parity_tree(n_inputs: int, name: str = "parity") -> LogicNetwork:
    """Balanced XOR tree computing odd parity of the inputs."""
    if n_inputs < 2:
        raise ReproError("parity tree needs at least 2 inputs")
    net = LogicNetwork(name)
    level = [f"x{i}" for i in range(n_inputs)]
    for x in level:
        net.add_input(x)
    stage = 0
    while len(level) > 1:
        nxt: List[str] = []
        for i in range(0, len(level) - 1, 2):
            g = f"p{stage}_{i // 2}"
            net.add_gate(g, GateType.XOR, [level[i], level[i + 1]])
            nxt.append(g)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        stage += 1
    net.add_output("parity", level[0])
    net.validate()
    return net


def or_tree(n_inputs: int, fanin: int = 4, name: str = "ortree") -> LogicNetwork:
    """Wide-OR reduction tree (interrupt/flag aggregation logic)."""
    if n_inputs < 2:
        raise ReproError("or tree needs at least 2 inputs")
    if fanin < 2:
        raise ReproError("or tree fanin must be at least 2")
    net = LogicNetwork(name)
    level = [f"x{i}" for i in range(n_inputs)]
    for x in level:
        net.add_input(x)
    stage = 0
    while len(level) > 1:
        nxt: List[str] = []
        for i in range(0, len(level), fanin):
            group = level[i : i + fanin]
            if len(group) == 1:
                nxt.append(group[0])
                continue
            g = f"o{stage}_{i // fanin}"
            net.add_gate(g, GateType.OR, group)
            nxt.append(g)
        level = nxt
        stage += 1
    net.add_output("any", level[0])
    net.validate()
    return net


def priority_encoder(n_inputs: int, name: str = "prienc") -> LogicNetwork:
    """Priority grant logic: grant_k = req_k AND none of req_0..req_{k-1}."""
    if n_inputs < 2:
        raise ReproError("priority encoder needs at least 2 requests")
    net = LogicNetwork(name)
    reqs = [f"req{i}" for i in range(n_inputs)]
    for r in reqs:
        net.add_input(r)
    higher_none = None
    for k, r in enumerate(reqs):
        if k == 0:
            net.add_output("grant0", r)
        else:
            if k == 1:
                inv = "req0_n"
                if inv not in net.nodes:
                    net.add_gate(inv, GateType.NOT, [reqs[0]])
                higher_none = inv
            else:
                prev_inv = f"req{k - 1}_n"
                if prev_inv not in net.nodes:
                    net.add_gate(prev_inv, GateType.NOT, [reqs[k - 1]])
                combined = f"none{k}"
                net.add_gate(combined, GateType.AND, [higher_none, prev_inv])
                higher_none = combined
            g = f"grant{k}"
            net.add_gate(g, GateType.AND, [higher_none, r])
            net.add_output(g)
    net.validate()
    return net


def equality_comparator(width: int, name: str = "eqcmp") -> LogicNetwork:
    """a == b over ``width`` bits: AND of per-bit XNORs."""
    if width < 1:
        raise ReproError("comparator width must be positive")
    net = LogicNetwork(name)
    bits: List[str] = []
    for i in range(width):
        net.add_input(f"a{i}")
        net.add_input(f"b{i}")
        x = f"eq{i}"
        net.add_gate(x, GateType.XNOR, [f"a{i}", f"b{i}"])
        bits.append(x)
    if width == 1:
        net.add_output("eq", bits[0])
    else:
        net.add_gate("eq", GateType.AND, bits)
        net.add_output("eq")
    net.validate()
    return net


def mux_tree(n_data: int, name: str = "muxtree") -> LogicNetwork:
    """2^k-to-1 multiplexer built from 2:1 MUX primitives."""
    k = (n_data - 1).bit_length()
    if (1 << k) != n_data or n_data < 2:
        raise ReproError("mux tree needs a power-of-two data count >= 2")
    net = LogicNetwork(name)
    data = [f"d{i}" for i in range(n_data)]
    for d in data:
        net.add_input(d)
    selects = [f"s{j}" for j in range(k)]
    for s in selects:
        net.add_input(s)
    level = data
    for j, s in enumerate(selects):
        nxt: List[str] = []
        for i in range(0, len(level), 2):
            g = f"m{j}_{i // 2}"
            net.add_gate(g, GateType.MUX, [s, level[i], level[i + 1]])
            nxt.append(g)
        level = nxt
    net.add_output("y", level[0])
    net.validate()
    return net


#: Named constructors for sweep-style experiments.
STRUCTURED_FAMILIES = {
    "decoder": lambda: decoder(4),
    "parity": lambda: parity_tree(16),
    "or_tree": lambda: or_tree(24),
    "priority_encoder": lambda: priority_encoder(12),
    "comparator": lambda: equality_comparator(8),
    "mux_tree": lambda: mux_tree(8),
}
