"""The benchmark suite of the paper's Tables 1 and 2.

Each entry pairs the paper's reported numbers (for EXPERIMENTS.md
comparison) with a seeded generator configuration whose PI/PO counts
match the paper exactly and whose gate count is calibrated so the
minimum-area mapped size lands near the paper's "MA Size" column.

The real MCNC circuits and Intel control blocks are substituted by
synthetic control-logic networks — see DESIGN.md for the substitution
rationale.  Dropping genuine BLIF files into the same flow is a
one-liner with :func:`repro.network.blif.load_blif`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.network.netlist import LogicNetwork
from repro.bench.generators import GeneratorConfig, random_control_network


@dataclass(frozen=True)
class PaperRow:
    """Numbers the paper reports for one circuit in one table."""

    ma_size: int
    ma_power: float
    mp_size: int
    mp_power: float
    area_penalty_pct: float
    power_savings_pct: float


@dataclass(frozen=True)
class BenchmarkSpec:
    """One suite circuit: generator recipe + paper reference data."""

    name: str
    description: str
    n_inputs: int
    n_outputs: int
    n_gates: int
    seed: int
    support_size: int = 12
    outputs_per_window: int = 3
    inverter_probability: float = 0.05
    or_probability: float = 0.6
    window_dominance: float = 0.8
    table1: Optional[PaperRow] = None
    table2: Optional[PaperRow] = None

    def build(self) -> LogicNetwork:
        config = GeneratorConfig(
            n_inputs=self.n_inputs,
            n_outputs=self.n_outputs,
            n_gates=self.n_gates,
            seed=self.seed,
            support_size=self.support_size,
            outputs_per_window=self.outputs_per_window,
            inverter_probability=self.inverter_probability,
            or_probability=self.or_probability,
            window_dominance=self.window_dominance,
        )
        return random_control_network(self.name, config)


#: Table 1 rows as printed in the paper (PI prob 0.5, untimed flow).
TABLE1_SUITE: Tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        name="industry1",
        description="Control Logic",
        n_inputs=127,
        n_outputs=122,
        n_gates=1250,
        seed=1101,
        support_size=12,
        outputs_per_window=3,
        or_probability=0.45,
        table1=PaperRow(1849, 12.47, 1970, 9.65, 6.5, 22.6),
    ),
    BenchmarkSpec(
        name="industry2",
        description="Control Logic",
        n_inputs=97,
        n_outputs=86,
        n_gates=1680,
        seed=1202,
        support_size=13,
        outputs_per_window=3,
        or_probability=0.5,
        window_dominance=0.5,
        table1=PaperRow(2272, 13.74, 2348, 14.13, 3.3, -2.8),
    ),
    BenchmarkSpec(
        name="industry3",
        description="Control Logic",
        n_inputs=117,
        n_outputs=199,
        n_gates=1020,
        seed=1303,
        support_size=11,
        outputs_per_window=4,
        or_probability=0.75,
        table1=PaperRow(1589, 11.77, 1699, 8.56, 6.9, 27.3),
    ),
    BenchmarkSpec(
        name="apex7",
        description="Public Domain",
        n_inputs=79,
        n_outputs=36,
        n_gates=230,
        seed=2101,
        support_size=11,
        outputs_per_window=3,
        table1=PaperRow(394, 3.71, 443, 2.98, 12.4, 19.5),
        table2=PaperRow(452, 3.72, 485, 3.04, 7.3, 18.3),
    ),
    BenchmarkSpec(
        name="frg1",
        description="Public Domain",
        n_inputs=31,
        n_outputs=3,
        n_gates=78,
        seed=2225,
        support_size=14,
        outputs_per_window=3,
        table1=PaperRow(98, 1.30, 145, 0.86, 48.0, 34.1),
        table2=PaperRow(98, 3.20, 147, 1.91, 50.0, 40.3),
    ),
    BenchmarkSpec(
        name="x1",
        description="Public Domain",
        n_inputs=87,
        n_outputs=28,
        n_gates=255,
        seed=2303,
        support_size=12,
        outputs_per_window=3,
        or_probability=0.3,
        table1=PaperRow(404, 2.57, 421, 2.34, 4.2, 8.9),
        table2=PaperRow(406, 7.67, 433, 6.10, 6.7, 20.5),
    ),
    BenchmarkSpec(
        name="x3",
        description="Public Domain",
        n_inputs=235,
        n_outputs=99,
        n_gates=830,
        seed=2404,
        support_size=12,
        outputs_per_window=3,
        or_probability=0.4,
        table1=PaperRow(1372, 7.49, 1390, 6.25, 1.3, 16.6),
        table2=PaperRow(2005, 70.13, 1601, 26.61, -20.0, 62.0),
    ),
)

#: Table 2 re-runs the four public circuits through the timed flow.
TABLE2_SUITE: Tuple[BenchmarkSpec, ...] = tuple(
    spec for spec in TABLE1_SUITE if spec.table2 is not None
)

#: Paper-reported averages for the two tables.
TABLE1_PAPER_AVERAGES = {"area_penalty_pct": 11.8, "power_savings_pct": 18.0}
TABLE2_PAPER_AVERAGES = {"area_penalty_pct": 8.6, "power_savings_pct": 35.3}


def spec_by_name(name: str) -> BenchmarkSpec:
    for spec in TABLE1_SUITE:
        if spec.name == name:
            return spec
    raise ReproError(f"unknown benchmark {name!r}")


def build_suite(names: Optional[List[str]] = None) -> Dict[str, LogicNetwork]:
    """Build (a subset of) the suite; keyed by circuit name."""
    specs = TABLE1_SUITE if names is None else [spec_by_name(n) for n in names]
    return {spec.name: spec.build() for spec in specs}
