"""The worked example circuits from the paper's figures.

* Figures 3/4/5 use the two-output circuit  f = NOT((a+b)+(c·d)),
  g = (a+b)+(c·d): the inverter on f is what phase assignment must
  remove, and the four possible phase assignments span the paper's
  duplication (Fig. 4) and switching (Fig. 5) discussions.
* Figure 10 uses a three-gate circuit with nodes P, Q, R whose BDD
  sizes differ under the three variable orderings.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.network.netlist import GateType, LogicNetwork


def figure3_network() -> LogicNetwork:
    """The f/g example:  f = NOT((a+b) + (c·d)),  g = (a+b) + (c·d)."""
    net = LogicNetwork("figure3")
    for pi in ("a", "b", "c", "d"):
        net.add_input(pi)
    net.add_gate("n_ab", GateType.OR, ["a", "b"])
    net.add_gate("n_cd", GateType.AND, ["c", "d"])
    net.add_gate("n_x", GateType.OR, ["n_ab", "n_cd"])
    net.add_gate("f_inv", GateType.NOT, ["n_x"])
    net.add_output("f", "f_inv")
    net.add_output("g", "n_x")
    net.validate()
    return net


#: Signal probability the Figure 5 experiment assigns to every input.
FIGURE5_INPUT_PROBABILITY = 0.9


def figure10_network() -> LogicNetwork:
    """Circuit with nodes P, Q, R for the ordering comparison.

    P reads x1..x3, Q reads x3..x4, R reads Q and x5 — the convergent,
    shared-support shape of the paper's sketch.
    """
    net = LogicNetwork("figure10")
    for pi in ("x1", "x2", "x3", "x4", "x5"):
        net.add_input(pi)
    net.add_gate("P", GateType.AND, ["x1", "x2", "x3"])
    net.add_gate("Q", GateType.OR, ["x3", "x4"])
    net.add_gate("R", GateType.AND, ["Q", "x5"])
    for po in ("P", "Q", "R"):
        net.add_output(po)
    net.validate()
    return net


def figure7_network() -> LogicNetwork:
    """A small sequential circuit with a feedback loop (Figure 7 sketch).

    Two latches in a ring with combinational logic between them; cutting
    one latch yields the "ideal partitioning" with fewer block inputs.
    """
    net = LogicNetwork("figure7")
    for pi in ("a", "b", "c"):
        net.add_input(pi)
    net.add_latch("l0", "d0", init_value=0)
    net.add_latch("l1", "d1", init_value=0)
    net.add_gate("g0", GateType.AND, ["a", "l1"])
    net.add_gate("g1", GateType.OR, ["g0", "b"])
    net.add_gate("d0", GateType.AND, ["g1", "c"])
    net.add_gate("g2", GateType.OR, ["l0", "a"])
    net.add_gate("d1", GateType.AND, ["g2", "b"])
    net.add_output("out", "g1")
    net.validate()
    return net
