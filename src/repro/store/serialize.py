"""Lossless plain-data codecs for the artefacts the store persists.

Every codec here round-trips exactly: ``network_from_dict(network_to_dict(n))``
reproduces the node types, fanin order, covers, latch init values and
PI/PO order of ``n`` (and therefore its :meth:`LogicNetwork.fingerprint`),
which is what lets a warm run resume from a cached prepared network and
still produce bit-identical downstream numbers.

BLIF text is *not* used for this: the BLIF writer lowers every gate to a
``.names`` cover, so a round trip would turn AND/OR/NOT nodes into SOP
nodes and change how the phase transform sees the network.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Mapping

from repro.errors import NetworkError, ReproError
from repro.network.netlist import GateType, LogicNetwork, SopCover
from repro.phase import Phase, PhaseAssignment


class StoreError(ReproError):
    """A store entry could not be encoded or decoded."""


def key_digest(key: Any) -> str:
    """Short stable digest of a hashable config key tuple.

    ``repr`` of the key tuples used by the pipeline (nested tuples of
    str/int/float/bool/None) is stable across processes and Python
    runs — floats repr as their shortest round-trip form — so the
    digest can name on-disk cache entries.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:20]


# ----------------------------------------------------------------------
# LogicNetwork <-> dict


def network_to_dict(network: LogicNetwork) -> Dict[str, Any]:
    """Exact plain-data record of a network (JSON-compatible)."""
    nodes: List[Dict[str, Any]] = []
    for node in network.nodes.values():
        record: Dict[str, Any] = {
            "name": node.name,
            "type": node.gate_type.value,
            "fanins": list(node.fanins),
        }
        if node.cover is not None:
            record["cover"] = {
                "cubes": list(node.cover.cubes),
                "output_value": node.cover.output_value,
            }
        if node.gate_type is GateType.LATCH:
            record["init_value"] = node.init_value
        nodes.append(record)
    return {
        "name": network.name,
        "inputs": list(network.inputs),
        "outputs": [[po, driver] for po, driver in network.outputs],
        "nodes": nodes,
    }


def network_from_dict(data: Mapping[str, Any]) -> LogicNetwork:
    """Rebuild a network from :func:`network_to_dict` output."""
    try:
        network = LogicNetwork(data["name"])
        for record in data["nodes"]:
            gate_type = GateType(record["type"])
            cover = None
            if record.get("cover") is not None:
                cover = SopCover(
                    cubes=list(record["cover"]["cubes"]),
                    output_value=record["cover"]["output_value"],
                )
            node = network._add_node(
                record["name"], gate_type, list(record["fanins"])
            )
            node.cover = cover
            node.init_value = int(record.get("init_value", 2))
        network.inputs = list(data["inputs"])
        network.outputs = [(po, driver) for po, driver in data["outputs"]]
        network.validate()
    except (KeyError, TypeError, ValueError, NetworkError) as exc:
        raise StoreError(f"malformed network record: {exc}") from exc
    return network


# ----------------------------------------------------------------------
# PhaseAssignment <-> dict


def assignment_to_dict(assignment: PhaseAssignment) -> Dict[str, str]:
    return {po: phase.value for po, phase in assignment.items()}


def assignment_from_dict(data: Mapping[str, str]) -> PhaseAssignment:
    try:
        return PhaseAssignment({po: Phase(value) for po, value in data.items()})
    except (TypeError, ValueError) as exc:
        raise StoreError(f"malformed assignment record: {exc}") from exc
