"""Content-addressed artefact cache, a façade over a storage backend.

An :class:`ArtifactStore` persists the expensive intermediate products
of the synthesis flow, keyed by

* the **structural fingerprint** of the source network
  (:meth:`repro.network.netlist.LogicNetwork.fingerprint` — stable
  across processes and object identity), and
* a **config key** — the tuple of :class:`repro.core.config.FlowConfig`
  knobs that shape that particular artefact (hashed via
  :func:`repro.store.serialize.key_digest`).

*Where* entries physically live is the backend's business
(:mod:`repro.store.backends`): the default
:class:`~repro.store.backends.LocalDiskBackend` keeps the historical
one-JSON-file-per-entry layout under
``root/<kind>/<fp[:2]>/<fp>-<keydigest>.json``; the SQLite and tiered
backends put a shared cache tier behind the same five calls.  Every
backend honours the same two contracts — atomic writes (a reader never
observes a half-written entry) and corrupt-entries-degrade-to-misses
(a bad entry is deleted and recomputed, never crashes the run).

The store is deliberately dumb about payloads — it moves JSON dicts.
What goes *into* those dicts (networks, probability vectors, optimizer
assignments, :class:`FlowResult` records) is decided by the pipeline
(:mod:`repro.core.pipeline`) using the codecs in
:mod:`repro.store.serialize`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.store.backends import (
    GCReport,
    LocalDiskBackend,
    STORE_VERSION,
    StoreBackend,
    default_store_dir,
    tmp_sibling,
)
from repro.store.serialize import key_digest

__all__ = [
    "ARTIFACT_KINDS",
    "ArtifactStore",
    "GCReport",
    "STORE_VERSION",
    "StoreStats",
    "default_store_dir",
    "tmp_sibling",
]

#: Artefact kinds the pipeline persists, in flow order.
ARTIFACT_KINDS: Tuple[str, ...] = (
    "prepare",      # prepared AOI network (network_to_dict)
    "probs",        # per-input signal probabilities after the latch fixed point
    "assign_ma",    # minimum-area assignment (AreaResult record)
    "assign_mp",    # minimum-power assignment (OptimizationResult record)
    "flow",         # full FlowResult record (flow_result_to_dict)
)


@dataclass
class StoreStats:
    """Usage summary plus this process's hit/miss counters.

    ``entries``/``bytes``/``hits``/``misses``/``evictions`` are keyed
    by artefact kind; ``backend`` carries the per-backend breakdown
    (nested per-tier for the tiered backend) for ``cache stats`` and
    the ``/healthz`` payloads.
    """

    entries: Dict[str, int] = field(default_factory=dict)
    bytes: Dict[str, int] = field(default_factory=dict)
    hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    evictions: Dict[str, int] = field(default_factory=dict)
    backend: Optional[Dict[str, Any]] = None

    @property
    def total_entries(self) -> int:
        return sum(self.entries.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())


class ArtifactStore:
    """Persistent cache of flow artefacts, keyed by (fingerprint, config key)."""

    def __init__(
        self,
        root: Optional[str] = None,
        backend: Optional[StoreBackend] = None,
        *,
        max_bytes: Optional[int] = None,
    ) -> None:
        if backend is None:
            backend = LocalDiskBackend(root, max_bytes=max_bytes)
        self.backend = backend
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        # guards the hit/miss counters: a Service serves many threads
        # from one store object, and unlocked dict read-modify-write
        # would drop counts under contention
        self._stats_lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r})"

    # Stores cross process-pool boundaries as plain state; the backend
    # carries its own configuration, and the counters are per-process
    # diagnostics that restart at zero in each worker.
    def __reduce__(self):
        return (ArtifactStore, (None, self.backend))

    @property
    def root(self) -> Path:
        """The filesystem location identifying the (primary) backend."""
        return Path(self.backend.root)

    # ------------------------------------------------------------------
    # paths

    def entry_path(self, kind: str, fingerprint: str, key: Any) -> Path:
        """The path backing one entry (it may not exist) — the entry
        file for the disk layout, the DB file for row backends."""
        digest = key_digest(key)
        blob_path = getattr(self.backend, "blob_path", None)
        if blob_path is not None:
            return blob_path(kind, fingerprint, digest)
        return Path(self.backend.root)

    # ------------------------------------------------------------------
    # get / put

    def get(self, kind: str, fingerprint: str, key: Any) -> Optional[Dict[str, Any]]:
        """The stored payload, or ``None`` on a miss.

        A corrupted or truncated entry (interrupted write, stale format
        version, hand-edited file) is deleted by the backend and
        reported as a miss — the flow recomputes and overwrites it.
        """
        entry = self.backend.get(kind, fingerprint, key_digest(key))
        if entry is None:
            self._count(self.misses, kind)
            return None
        self._count(self.hits, kind)
        return entry["payload"]

    def _count(self, counters: Dict[str, int], kind: str) -> None:
        with self._stats_lock:
            counters[kind] = counters.get(kind, 0) + 1

    def put(self, kind: str, fingerprint: str, key: Any, payload: Dict[str, Any]) -> Path:
        """Atomically persist one payload; last writer wins."""
        entry = {
            "version": STORE_VERSION,
            "kind": kind,
            "fingerprint": fingerprint,
            "key": repr(key),
            "created_at": time.time(),
            "payload": payload,
        }
        return self.backend.put(kind, fingerprint, key_digest(key), entry)

    def has(self, kind: str, fingerprint: str, key: Any) -> bool:
        return self.backend.stat(kind, fingerprint, key_digest(key)) is not None

    def fingerprints(self, kind: str = "flow") -> Tuple[str, ...]:
        """Distinct network fingerprints with at least one ``kind``
        entry, sorted.  This is what a fleet worker announces as *warm*
        at registration (:mod:`repro.fleet`): any config keyed under a
        listed fingerprint can at minimum reuse the expensive
        per-network artefacts already in this store — for the tiered
        backend that includes everything the shared tier holds."""
        found = {blob.fingerprint for blob in self.backend.iter_keys(kind)}
        return tuple(sorted(found))

    # ------------------------------------------------------------------
    # maintenance (the CLI's `cache stats/clear/gc`)

    def stats(self) -> StoreStats:
        with self._stats_lock:
            stats = StoreStats(hits=dict(self.hits), misses=dict(self.misses))
        entries, sizes = self.backend.usage()
        stats.entries = entries
        stats.bytes = sizes
        stats.evictions = self.backend.counters()["evictions"]
        stats.backend = self.backend.stats()
        return stats

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        return self.backend.clear()

    def gc(
        self, max_age_days: Optional[float] = None, *, dry_run: bool = False
    ) -> GCReport:
        """Drop unreadable entries, stray temp files, and (optionally)
        entries older than ``max_age_days``.  The result compares equal
        to the number of entries removed — or, under ``dry_run``, the
        number that *would* be removed, with nothing deleted."""
        return self.backend.gc(max_age_days, dry_run=dry_run)

    def flush(self) -> None:
        """Block until queued asynchronous writes (tiered write-back)
        have landed in the shared tier."""
        self.backend.flush()

    def close(self) -> None:
        self.backend.close()
