"""Disk-backed, content-addressed artefact cache.

An :class:`ArtifactStore` persists the expensive intermediate products
of the synthesis flow, keyed by

* the **structural fingerprint** of the source network
  (:meth:`repro.network.netlist.LogicNetwork.fingerprint` — stable
  across processes and object identity), and
* a **config key** — the tuple of :class:`repro.core.config.FlowConfig`
  knobs that shape that particular artefact (hashed via
  :func:`repro.store.serialize.key_digest`).

Entries live under ``root/<kind>/<fp[:2]>/<fp>-<keydigest>.json`` so a
store can be inspected with ordinary shell tools, cached by CI
(``actions/cache`` on the directory), and shared by concurrent worker
processes: writes go through a temp file + :func:`os.replace`, so a
reader never observes a half-written entry, and any entry that fails to
parse is treated as a miss and deleted rather than crashing the run.

The store is deliberately dumb about payloads — it moves JSON dicts.
What goes *into* those dicts (networks, probability vectors, optimizer
assignments, :class:`FlowResult` records) is decided by the pipeline
(:mod:`repro.core.pipeline`) using the codecs in
:mod:`repro.store.serialize`.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.store.serialize import key_digest

#: Process-wide monotonic counter for temp-file names: two threads of
#: one process writing the same entry must never share a temp path
#: (``next()`` on a ``count`` is atomic under the GIL).
_TMP_COUNTER = itertools.count()


def tmp_sibling(path: Path) -> Path:
    """A write-then-``os.replace`` temp path next to ``path``, unique
    across processes (pid), threads (tid) and repeated writes
    (counter).  Shared by every atomic writer in :mod:`repro.store`."""
    return path.with_name(
        path.name
        + f".tmp.{os.getpid()}.{threading.get_ident()}.{next(_TMP_COUNTER)}"
    )

#: Artefact kinds the pipeline persists, in flow order.
ARTIFACT_KINDS: Tuple[str, ...] = (
    "prepare",      # prepared AOI network (network_to_dict)
    "probs",        # per-input signal probabilities after the latch fixed point
    "assign_ma",    # minimum-area assignment (AreaResult record)
    "assign_mp",    # minimum-power assignment (OptimizationResult record)
    "flow",         # full FlowResult record (flow_result_to_dict)
)

#: Store format version; bump on incompatible payload changes so stale
#: caches read as misses instead of decoding garbage.
STORE_VERSION = 1


def default_store_dir() -> str:
    """The store root: ``$REPRO_STORE_DIR`` or ``.repro-store``.

    A repo-local default keeps the store next to the runs that filled
    it, which is also what CI caches between workflow runs.
    """
    return os.environ.get("REPRO_STORE_DIR", ".repro-store")


@dataclass
class StoreStats:
    """Disk usage summary plus this process's hit/miss counters."""

    entries: Dict[str, int] = field(default_factory=dict)
    bytes: Dict[str, int] = field(default_factory=dict)
    hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)

    @property
    def total_entries(self) -> int:
        return sum(self.entries.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())


class ArtifactStore:
    """Persistent cache of flow artefacts, keyed by (fingerprint, config key)."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = Path(root if root is not None else default_store_dir())
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        # guards the hit/miss counters: a Service serves many threads
        # from one store object, and unlocked dict read-modify-write
        # would drop counts under contention
        self._stats_lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r})"

    # Stores cross process-pool boundaries as plain state; the counters
    # are per-process diagnostics and restart at zero in each worker.
    def __reduce__(self):
        return (ArtifactStore, (str(self.root),))

    # ------------------------------------------------------------------
    # paths

    def entry_path(self, kind: str, fingerprint: str, key: Any) -> Path:
        """On-disk location of one entry (it may not exist)."""
        digest = key_digest(key)
        return self.root / kind / fingerprint[:2] / f"{fingerprint}-{digest}.json"

    def _iter_entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for kind_dir in sorted(self.root.iterdir()):
            if not kind_dir.is_dir():
                continue
            yield from sorted(kind_dir.glob("*/*.json"))

    # ------------------------------------------------------------------
    # get / put

    def get(self, kind: str, fingerprint: str, key: Any) -> Optional[Dict[str, Any]]:
        """The stored payload, or ``None`` on a miss.

        A corrupted or truncated entry (interrupted write, stale format
        version, hand-edited file) is deleted and reported as a miss —
        the flow recomputes and overwrites it.
        """
        path = self.entry_path(kind, fingerprint, key)
        try:
            with open(path, "r", encoding="utf-8") as f:
                entry = json.load(f)
            if entry["version"] != STORE_VERSION or entry["kind"] != kind:
                raise ValueError("store entry version/kind mismatch")
            payload = entry["payload"]
            if not isinstance(payload, dict):
                raise ValueError("store entry payload is not a mapping")
        except FileNotFoundError:
            self._count(self.misses, kind)
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._discard(path)
            self._count(self.misses, kind)
            return None
        self._count(self.hits, kind)
        return payload

    def _count(self, counters: Dict[str, int], kind: str) -> None:
        with self._stats_lock:
            counters[kind] = counters.get(kind, 0) + 1

    def put(self, kind: str, fingerprint: str, key: Any, payload: Dict[str, Any]) -> Path:
        """Atomically persist one payload; last writer wins."""
        path = self.entry_path(kind, fingerprint, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": STORE_VERSION,
            "kind": kind,
            "fingerprint": fingerprint,
            "key": repr(key),
            "created_at": time.time(),
            "payload": payload,
        }
        # pid alone is not unique enough: two threads of one process
        # (the serve path) writing the same entry would race on a shared
        # temp path — the helper adds thread id + monotonic counter
        tmp = tmp_sibling(path)
        try:
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(entry, f)
            os.replace(tmp, path)
        except BaseException:
            self._discard(tmp)
            raise
        return path

    def has(self, kind: str, fingerprint: str, key: Any) -> bool:
        return self.entry_path(kind, fingerprint, key).is_file()

    def fingerprints(self, kind: str = "flow") -> Tuple[str, ...]:
        """Distinct network fingerprints with at least one ``kind``
        entry, sorted.  This is what a fleet worker announces as *warm*
        at registration (:mod:`repro.fleet`): any config keyed under a
        listed fingerprint can at minimum reuse the expensive
        per-network artefacts already on this disk."""
        kind_dir = self.root / kind
        if not kind_dir.is_dir():
            return ()
        found = {
            path.name.rsplit("-", 1)[0]
            for path in kind_dir.glob("*/*.json")
        }
        return tuple(sorted(found))

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # maintenance (the CLI's `cache stats/clear/gc`)

    def stats(self) -> StoreStats:
        with self._stats_lock:
            stats = StoreStats(hits=dict(self.hits), misses=dict(self.misses))
        for path in self._iter_entries():
            kind = path.parent.parent.name
            stats.entries[kind] = stats.entries.get(kind, 0) + 1
            try:
                stats.bytes[kind] = stats.bytes.get(kind, 0) + path.stat().st_size
            except OSError:
                pass
        return stats

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self._iter_entries()):
            self._discard(path)
            removed += 1
        return removed

    def gc(self, max_age_days: Optional[float] = None) -> int:
        """Drop unreadable entries, stray temp files, and (optionally)
        entries older than ``max_age_days``; returns the number removed."""
        removed = 0
        # repro: allow[monotonic-deadline] gc age-compares persisted wall-clock created_at stamps, not an in-process deadline
        cutoff = None if max_age_days is None else time.time() - max_age_days * 86400.0
        if self.root.is_dir():
            for tmp in self.root.glob("*/*/*.json.tmp.*"):
                self._discard(tmp)
                removed += 1
        for path in list(self._iter_entries()):
            try:
                with open(path, "r", encoding="utf-8") as f:
                    entry = json.load(f)
                if entry["version"] != STORE_VERSION or "payload" not in entry:
                    raise ValueError("stale store entry")
                created = float(entry.get("created_at", 0.0))
            except (OSError, ValueError, KeyError, TypeError):
                self._discard(path)
                removed += 1
                continue
            if cutoff is not None and created < cutoff:
                self._discard(path)
                removed += 1
        return removed
