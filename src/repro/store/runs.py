"""Run registry: round-trippable records of flow/batch/sweep runs.

The old :mod:`repro.report` helpers were asymmetric — ``save_results``
took :class:`FlowResult` objects but ``load_results_json`` handed back
bare dicts.  The registry closes the loop: a :class:`RunRecord` stores
the full per-circuit flow records *plus* config provenance, and loads
back to real :class:`FlowResult` objects via
:func:`repro.report.flow_result_from_dict`.

Records are one JSON file per run under the registry root (default
``<store root>/runs``), named by ``run_id``, so a registry survives
anything that can hold files and diffs cleanly in git or CI artefacts.
:meth:`RunStore.query` filters by circuit name, run kind, and creation
date without deserialising the flow payloads.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import ReproError
from repro.store.artifacts import STORE_VERSION, default_store_dir
from repro.store.backends import StoreBackend

#: Run kinds the registry understands (free-form strings are allowed;
#: these are what the built-in recorders emit).
RUN_KINDS = ("flow", "batch", "table", "sweep")


class RunStoreError(ReproError):
    """A run record could not be stored, loaded, or parsed."""


def _utc_now_iso() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%S.%fZ")


def _parse_when(value: Union[str, datetime, None]) -> Optional[datetime]:
    if value is None:
        return None
    if isinstance(value, datetime):
        return value if value.tzinfo else value.replace(tzinfo=timezone.utc)
    text = str(value)
    for fmt in ("%Y-%m-%dT%H:%M:%S.%fZ", "%Y-%m-%dT%H:%M:%S", "%Y-%m-%d"):
        try:
            return datetime.strptime(text, fmt).replace(tzinfo=timezone.utc)
        except ValueError:
            continue
    raise RunStoreError(f"cannot parse date {value!r} (use ISO format)")


@dataclass
class RunRecord:
    """One archived run: config provenance + per-circuit flow records."""

    run_id: str
    kind: str
    created_at: str
    circuits: List[str]
    config: Dict[str, Any]
    records: List[Dict[str, Any]]
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def n_ok(self) -> int:
        return sum(1 for r in self.records if "error" not in r)

    @property
    def n_failed(self) -> int:
        return len(self.records) - self.n_ok

    def flow_results(self) -> List["FlowResult"]:  # noqa: F821
        """The successful per-circuit results as real :class:`FlowResult`
        objects (implementation/design handles are not archived and come
        back as ``None``)."""
        from repro.report import flow_result_from_dict

        return [flow_result_from_dict(r) for r in self.records if "error" not in r]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "created_at": self.created_at,
            "circuits": list(self.circuits),
            "config": dict(self.config),
            "records": list(self.records),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        try:
            return cls(
                run_id=str(data["run_id"]),
                kind=str(data["kind"]),
                created_at=str(data["created_at"]),
                circuits=list(data["circuits"]),
                config=dict(data["config"]),
                records=list(data["records"]),
                meta=dict(data.get("meta", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RunStoreError(f"malformed run record: {exc}") from exc


class RunStore:
    """Directory of :class:`RunRecord` JSON files.

    With a :class:`~repro.store.backends.StoreBackend` the registry
    routes through it instead (records live under kind ``runs``, keyed
    by run id) — pointing a fleet's run registry at the same shared
    SQLite file as its artefact cache gives every worker one history.
    Without one, the historical one-file-per-run layout is unchanged.
    """

    #: Blob-key digest slot for run records (runs are keyed by id alone).
    _DIGEST = "run"

    def __init__(
        self,
        root: Optional[str] = None,
        backend: Optional[StoreBackend] = None,
    ) -> None:
        if root is None:
            root = os.path.join(default_store_dir(), "runs")
        self.root = Path(root)
        self.backend = backend

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunStore({str(self.root)!r})"

    # ------------------------------------------------------------------
    # recording

    def new_run_id(self, kind: str) -> str:
        stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%S")
        return f"{kind}-{stamp}-{os.urandom(3).hex()}"

    def save(self, record: RunRecord) -> Path:
        if self.backend is not None:
            entry = {
                "version": STORE_VERSION,
                "kind": "runs",
                "fingerprint": record.run_id,
                "key": record.run_id,
                # numeric stamp: backend gc age-compares this envelope
                # field, and the record keeps its own ISO created_at
                "created_at": _parse_when(record.created_at).timestamp(),
                "payload": record.to_dict(),
            }
            return self.backend.put("runs", record.run_id, self._DIGEST, entry)
        path = self.root / f"{record.run_id}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        # same thread-unique suffix rule as ArtifactStore.put: run ids
        # are usually unique, but concurrent re-saves of one record must
        # not share a temp path
        from repro.store.artifacts import tmp_sibling

        tmp = tmp_sibling(path)
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(record.to_dict(), f, indent=2)
        os.replace(tmp, path)
        return path

    def record_flow(
        self,
        result: "FlowResult",  # noqa: F821
        config: "FlowConfig",  # noqa: F821
        meta: Optional[Dict[str, Any]] = None,
    ) -> RunRecord:
        """Archive one :class:`FlowResult` as a single-circuit run."""
        from repro.report import flow_result_to_dict

        record = RunRecord(
            run_id=self.new_run_id("flow"),
            kind="flow",
            created_at=_utc_now_iso(),
            circuits=[result.name],
            config=config.to_dict(),
            records=[flow_result_to_dict(result)],
            meta=dict(meta or {}),
        )
        self.save(record)
        return record

    def record_batch(
        self,
        batch: "BatchResult",  # noqa: F821
        config: Optional["FlowConfig"] = None,  # noqa: F821
        kind: str = "batch",
        meta: Optional[Dict[str, Any]] = None,
    ) -> RunRecord:
        """Archive a :class:`BatchResult` (successes and failures both)."""
        from repro.report import batch_to_records

        if config is None and batch.items:
            config = batch.items[0].config
        merged_meta = {"jobs": batch.jobs, "runtime_s": batch.runtime_s}
        merged_meta.update(meta or {})
        record = RunRecord(
            run_id=self.new_run_id(kind),
            kind=kind,
            created_at=_utc_now_iso(),
            circuits=[item.name for item in batch.items],
            config=config.to_dict() if config is not None else {},
            records=batch_to_records(batch),
            meta=merged_meta,
        )
        self.save(record)
        return record

    def record_sweep(self, sweep_result: "SweepResult") -> RunRecord:  # noqa: F821
        """Archive a :func:`repro.core.batch.sweep` run with its grid
        manifest (base config, parameter grid, per-point outcomes)."""
        from repro.report import batch_to_records

        records: List[Dict[str, Any]] = []
        for point in sweep_result.points:
            for item_record, item in zip(
                batch_to_records(point.as_batch()), point.items
            ):
                item_record["sweep_params"] = dict(point.params)
                records.append(item_record)
        record = RunRecord(
            run_id=self.new_run_id("sweep"),
            kind="sweep",
            created_at=_utc_now_iso(),
            circuits=list(sweep_result.circuits),
            config=sweep_result.base_config.to_dict(),
            records=records,
            meta=sweep_result.manifest(),
        )
        self.save(record)
        return record

    # ------------------------------------------------------------------
    # loading / querying

    def load(self, run_id: str) -> RunRecord:
        if self.backend is not None:
            entry = self.backend.get("runs", run_id, self._DIGEST)
            if entry is None:
                raise RunStoreError(f"no run {run_id!r} in {self.backend!r}")
            return RunRecord.from_dict(entry["payload"])
        path = self.root / f"{run_id}.json"
        try:
            with open(path, "r", encoding="utf-8") as f:
                return RunRecord.from_dict(json.load(f))
        except FileNotFoundError:
            raise RunStoreError(f"no run {run_id!r} in {self.root}") from None
        except (OSError, ValueError) as exc:
            raise RunStoreError(f"cannot read run {run_id!r}: {exc}") from exc

    def list_ids(self) -> List[str]:
        if self.backend is not None:
            return sorted({k.fingerprint for k in self.backend.iter_keys("runs")})
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def query(
        self,
        circuit: Optional[str] = None,
        kind: Optional[str] = None,
        since: Union[str, datetime, None] = None,
        until: Union[str, datetime, None] = None,
        config_match: Optional[Mapping[str, Any]] = None,
    ) -> List[RunRecord]:
        """Archived runs filtered by circuit name, kind, date window and
        config fields; unreadable files are skipped, newest first."""
        since_dt = _parse_when(since)
        until_dt = _parse_when(until)
        matches: List[RunRecord] = []
        for run_id in self.list_ids():
            try:
                record = self.load(run_id)
            except RunStoreError:
                continue
            if kind is not None and record.kind != kind:
                continue
            if circuit is not None and circuit not in record.circuits:
                continue
            if since_dt is not None or until_dt is not None:
                try:
                    created = _parse_when(record.created_at)
                except RunStoreError:
                    continue
                if since_dt is not None and created < since_dt:
                    continue
                if until_dt is not None and created > until_dt:
                    continue
            if config_match is not None and any(
                record.config.get(field_name) != expected
                for field_name, expected in config_match.items()
            ):
                continue
            matches.append(record)
        matches.sort(key=lambda r: r.created_at, reverse=True)
        return matches
