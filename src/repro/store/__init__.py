"""Persistent storage for the synthesis flow.

Two coordinated APIs:

* :class:`ArtifactStore` — a disk-backed, content-addressed cache of
  expensive stage artefacts (prepared AOI network, probability vectors,
  optimizer assignments, full flow records), keyed by the network's
  structural :meth:`~repro.network.netlist.LogicNetwork.fingerprint`
  plus the relevant :class:`~repro.core.config.FlowConfig` knobs.  The
  pipeline (``Pipeline(store=...)``) and the batch front-end
  (``run_many(store=...)``) consult it so repeated suite runs, table
  regenerations and CI recompute only what changed.
* :class:`RunStore` / :class:`RunRecord` — a run registry of archived
  flow/batch/sweep results with config provenance, loading back to real
  :class:`~repro.core.flow.FlowResult` objects and queryable by
  circuit, kind and date.
"""

from repro.store.artifacts import (
    ARTIFACT_KINDS,
    ArtifactStore,
    StoreStats,
    default_store_dir,
)
from repro.store.runs import RunRecord, RunStore, RunStoreError
from repro.store.serialize import (
    StoreError,
    assignment_from_dict,
    assignment_to_dict,
    key_digest,
    network_from_dict,
    network_to_dict,
)

__all__ = [
    "ARTIFACT_KINDS",
    "ArtifactStore",
    "StoreStats",
    "default_store_dir",
    "RunRecord",
    "RunStore",
    "RunStoreError",
    "StoreError",
    "assignment_from_dict",
    "assignment_to_dict",
    "key_digest",
    "network_from_dict",
    "network_to_dict",
]
