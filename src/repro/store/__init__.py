"""Persistent storage for the synthesis flow.

Two coordinated APIs:

* :class:`ArtifactStore` — a content-addressed cache of expensive stage
  artefacts (prepared AOI network, probability vectors, optimizer
  assignments, full flow records), keyed by the network's structural
  :meth:`~repro.network.netlist.LogicNetwork.fingerprint` plus the
  relevant :class:`~repro.core.config.FlowConfig` knobs.  The pipeline
  (``Pipeline(store=...)``) and the batch front-end
  (``run_many(store=...)``) consult it so repeated suite runs, table
  regenerations and CI recompute only what changed.
* :class:`RunStore` / :class:`RunRecord` — a run registry of archived
  flow/batch/sweep results with config provenance, loading back to real
  :class:`~repro.core.flow.FlowResult` objects and queryable by
  circuit, kind and date.

Both are façades over a pluggable storage backend
(:mod:`repro.store.backends`); pick one with ``--store-backend`` /
``--shared-store`` on the CLI or :func:`make_backend` in code:

========== ================================ ===================================
backend    storage                          use it when
========== ================================ ===================================
``local``  one JSON file per entry under    the default — single machine, CI
           ``root/<kind>/<fp[:2]>/…``       directory caches, shell-greppable
``sqlite`` one WAL-mode SQLite file         a shared tier: fleet workers or CI
                                            jobs warming from one file
``tiered`` local tier in front of a shared  local-speed reads plus a common
           tier (read-through, async        warm cache that fills as the fleet
           write-back)                      works
========== ================================ ===================================

Every backend honours the same contracts — atomic writes and
corrupt-entries-degrade-to-misses — and keeps per-kind
hit/miss/eviction counters surfaced by ``repro cache stats`` and the
serve/fleet ``/healthz`` payloads.  Size caps (``--store-max-mb``)
evict least-recently-hit entries first.
"""

from repro.store.artifacts import (
    ARTIFACT_KINDS,
    ArtifactStore,
    StoreStats,
    default_store_dir,
)
from repro.store.backends import (
    BACKEND_NAMES,
    GCReport,
    LocalDiskBackend,
    SQLiteBackend,
    StoreBackend,
    TieredBackend,
    make_backend,
)
from repro.store.runs import RunRecord, RunStore, RunStoreError
from repro.store.serialize import (
    StoreError,
    assignment_from_dict,
    assignment_to_dict,
    key_digest,
    network_from_dict,
    network_to_dict,
)

__all__ = [
    "ARTIFACT_KINDS",
    "ArtifactStore",
    "BACKEND_NAMES",
    "GCReport",
    "LocalDiskBackend",
    "SQLiteBackend",
    "StoreBackend",
    "StoreStats",
    "TieredBackend",
    "default_store_dir",
    "make_backend",
    "RunRecord",
    "RunStore",
    "RunStoreError",
    "StoreError",
    "assignment_from_dict",
    "assignment_to_dict",
    "key_digest",
    "network_from_dict",
    "network_to_dict",
]
