"""The :class:`StoreBackend` interface: content-addressed blob storage.

A backend stores *entries* — the JSON-safe envelope dicts
:class:`repro.store.ArtifactStore` builds (``version``/``kind``/
``fingerprint``/``key``/``created_at``/``payload``) — addressed by the
triple ``(kind, fingerprint, digest)``:

* ``kind`` — one of :data:`repro.store.ARTIFACT_KINDS` (plus ``runs``
  for the run registry),
* ``fingerprint`` — the network's structural fingerprint (or a run id),
* ``digest`` — :func:`repro.store.serialize.key_digest` of the config
  key tuple.

Every implementation owes its callers two contracts:

**Atomic writes.**  :meth:`StoreBackend.put` either lands the complete
entry or changes nothing — a reader racing a writer (across threads
*and* processes) must only ever observe the previous complete entry, a
miss, or the new complete entry, never a torn one.  The disk backend
stages through the ``tmp_sibling`` temp-path helper + ``os.replace``;
the SQLite backend rides a single-statement upsert inside WAL
journaling.

**Corrupt entries degrade to misses.**  :meth:`StoreBackend.get` of an
entry that cannot be decoded (interrupted write on a dying host,
hand-edited file, mangled row) deletes it and returns ``None`` — the
flow recomputes and overwrites; nothing ever crashes on a bad cache.

Backends additionally keep per-kind hit/miss/eviction counters
(process-local, lock-guarded — see :meth:`StoreBackend.counters`) and
support LRU-by-last-hit eviction under a byte cap (``max_bytes``):
every hit refreshes the entry's last-hit stamp and
:meth:`StoreBackend.put` evicts the least-recently-hit entries until
the store fits.  Backends must also pickle across process-pool
boundaries (``run_many`` workers, the serve pool, fleet workers), so
implementations carry only their configuration through ``__reduce__``
and re-open handles lazily on the far side.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

#: Entry envelope schema version; bump to invalidate every old entry.
STORE_VERSION = 1


def validate_entry(entry: Any, kind: str) -> Dict[str, Any]:
    """The entry, if it is a well-formed envelope of ``kind``.

    Raises ``ValueError`` otherwise — backends translate that into the
    delete-and-miss path the corruption contract requires.
    """
    if not isinstance(entry, dict):
        raise ValueError("store entry is not a mapping")
    if entry.get("version") != STORE_VERSION or entry.get("kind") != kind:
        raise ValueError("store entry version/kind mismatch")
    if not isinstance(entry.get("payload"), dict):
        raise ValueError("store entry payload is not a mapping")
    return entry


@dataclass(frozen=True)
class BlobKey:
    """Address of one stored entry."""

    kind: str
    fingerprint: str
    digest: str


@dataclass(frozen=True)
class BlobStat:
    """Metadata of one stored entry (:meth:`StoreBackend.stat`)."""

    size: int           #: stored size in bytes
    created_at: float   #: wall-clock stamp from the entry envelope
    last_hit: float     #: wall-clock stamp of the most recent get() hit


class GCReport(int):
    """Result of :meth:`StoreBackend.gc`: an ``int`` (the number of
    entries removed — or, under ``dry_run``, that *would* be removed)
    carrying the per-entry detail.

    Subclassing ``int`` keeps every historical ``store.gc() == n``
    call site working while ``cache gc --dry-run`` gets the receipts.
    """

    entries: Tuple[Dict[str, Any], ...]
    dry_run: bool

    def __new__(cls, entries=(), dry_run: bool = False) -> "GCReport":
        report = super().__new__(cls, len(entries))
        report.entries = tuple(entries)
        report.dry_run = dry_run
        return report

    def __reduce__(self):
        return (GCReport, (self.entries, self.dry_run))


def gc_entry(
    key: BlobKey, reason: str, size: int = 0
) -> Dict[str, Any]:
    """One JSON-safe line of a :class:`GCReport`."""
    return {
        "kind": key.kind,
        "fingerprint": key.fingerprint,
        "digest": key.digest,
        "reason": reason,
        "bytes": int(size),
    }


class StoreBackend(ABC):
    """Where content-addressed store entries physically live.

    Subclasses implement :meth:`get` / :meth:`put` / :meth:`stat` /
    :meth:`delete` / :meth:`iter_keys` / :meth:`gc` under the atomicity
    and corruption contracts in the module docstring, and call
    :meth:`_count_hit` / :meth:`_count_miss` / :meth:`_count_eviction`
    so the façade can break statistics down per backend.
    """

    #: Short display name (``local-disk`` / ``sqlite`` / ``tiered``).
    name: str = "backend"

    def __init__(self) -> None:
        self._counter_lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        self._evictions: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # the blob contract

    @abstractmethod
    def get(self, kind: str, fingerprint: str, digest: str) -> Optional[Dict[str, Any]]:
        """The decoded entry envelope, or ``None`` on a miss.  An entry
        that fails to decode is deleted and reported as a miss."""

    @abstractmethod
    def put(self, kind: str, fingerprint: str, digest: str, entry: Dict[str, Any]) -> Path:
        """Atomically persist one entry (last writer wins); returns the
        path that backs it (the DB file for row-oriented backends)."""

    @abstractmethod
    def stat(self, kind: str, fingerprint: str, digest: str) -> Optional[BlobStat]:
        """Size and timestamps of one entry without decoding it, or
        ``None`` when absent."""

    @abstractmethod
    def delete(self, kind: str, fingerprint: str, digest: str) -> bool:
        """Remove one entry; ``True`` iff something was removed."""

    @abstractmethod
    def iter_keys(self, kind: Optional[str] = None) -> Iterator[BlobKey]:
        """Every stored key (optionally one kind), in sorted order so
        concurrent observers and tests see a deterministic listing."""

    @abstractmethod
    def gc(
        self, max_age_days: Optional[float] = None, *, dry_run: bool = False
    ) -> GCReport:
        """Drop undecodable entries, stray write debris, and entries
        older than ``max_age_days``; with ``dry_run`` report what would
        go without deleting anything."""

    # ------------------------------------------------------------------
    # shared conveniences

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for key in list(self.iter_keys()):
            if self.delete(key.kind, key.fingerprint, key.digest):
                removed += 1
        return removed

    def flush(self) -> None:
        """Block until queued asynchronous writes have landed (only the
        tiered backend queues any; everyone else is already durable)."""

    def close(self) -> None:
        """Release handles; the backend may be reused (handles reopen)."""

    @property
    @abstractmethod
    def root(self) -> Path:
        """The filesystem location that identifies this backend — the
        store directory, the DB file, or the local tier's root."""

    # ------------------------------------------------------------------
    # statistics

    def _count_hit(self, kind: str) -> None:
        with self._counter_lock:
            self._hits[kind] = self._hits.get(kind, 0) + 1

    def _count_miss(self, kind: str) -> None:
        with self._counter_lock:
            self._misses[kind] = self._misses.get(kind, 0) + 1

    def _count_eviction(self, kind: str) -> None:
        with self._counter_lock:
            self._evictions[kind] = self._evictions.get(kind, 0) + 1

    def counters(self) -> Dict[str, Dict[str, int]]:
        """This process's per-kind hit/miss/eviction counters."""
        with self._counter_lock:
            return {
                "hits": dict(self._hits),
                "misses": dict(self._misses),
                "evictions": dict(self._evictions),
            }

    def usage(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """``(entries per kind, bytes per kind)`` from a live scan."""
        entries: Dict[str, int] = {}
        sizes: Dict[str, int] = {}
        for key in self.iter_keys():
            entries[key.kind] = entries.get(key.kind, 0) + 1
            stat = self.stat(key.kind, key.fingerprint, key.digest)
            if stat is not None:
                sizes[key.kind] = sizes.get(key.kind, 0) + stat.size
        return entries, sizes

    def stats(self) -> Dict[str, Any]:
        """JSON-safe health record (surfaced in ``cache stats`` and the
        serve/fleet ``/healthz`` payloads)."""
        entries, sizes = self.usage()
        record: Dict[str, Any] = {
            "backend": self.name,
            "root": str(self.root),
            "entries": entries,
            "bytes": sizes,
        }
        record.update(self.counters())
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({str(self.root)!r})"
