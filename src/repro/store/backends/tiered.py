"""Tiered backend: local-first read-through with async shared write-back.

The read path costs what the local tier costs: a local hit never
touches the shared tier, a local miss falls through to the shared tier
and — on a hit there — *promotes* the entry into the local tier so the
next read is local too.  The write path is local-synchronous (the
caller's durability story is unchanged from a plain local store) with
the shared copy landing asynchronously from a single daemon writer
thread, so fleet workers and CI runners feed a common warm cache
without paying shared-filesystem latency inside the flow.

The write-back queue is bounded; when it backs up (a slow shared tier)
the put degrades to a synchronous shared write rather than dropping
the entry — the shared tier is only useful if it actually fills.
``flush()`` blocks until queued write-backs have landed; callers that
are about to exit (benchmarks, the CLI) should flush, and the backend
also registers an ``atexit`` flush when the writer thread first spins
up.  Write-back failures are swallowed (the local tier already has the
entry; the shared tier is an optimisation) but counted, and surface in
:meth:`TieredBackend.stats` as ``write_back_errors``.
"""

from __future__ import annotations

import atexit
import queue
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.store.backends.base import (
    BlobKey,
    BlobStat,
    GCReport,
    StoreBackend,
    gc_entry,
)

#: Queue slots before a put degrades to a synchronous shared write.
_WRITE_BACK_QUEUE_SLOTS = 256


class TieredBackend(StoreBackend):
    """Local tier in front of a shared tier (read-through/write-back)."""

    name = "tiered"

    def __init__(self, local: StoreBackend, shared: StoreBackend) -> None:
        super().__init__()
        self.local = local
        self.shared = shared
        self._queue: Optional["queue.Queue"] = None
        self._writer: Optional[threading.Thread] = None
        self._writer_lock = threading.Lock()
        self._write_back_errors = 0

    # the tiers carry their own configuration; queue and writer thread
    # are rebuilt lazily on the far side of a process-pool boundary
    def __reduce__(self):
        return (TieredBackend, (self.local, self.shared))

    @property
    def root(self) -> Path:
        return self.local.root

    # ------------------------------------------------------------------
    # the write-back machinery

    def _writer_queue(self) -> "queue.Queue":
        with self._writer_lock:
            if self._queue is None:
                self._queue = queue.Queue(maxsize=_WRITE_BACK_QUEUE_SLOTS)
                self._writer = threading.Thread(
                    target=self._drain,
                    args=(self._queue,),
                    name="repro-store-writeback",
                    daemon=True,
                )
                self._writer.start()
                atexit.register(self.flush)
            return self._queue

    def _drain(self, q: "queue.Queue") -> None:
        while True:
            item = q.get()
            if item is None:
                q.task_done()
                return
            try:
                self.shared.put(*item)
            except Exception:
                with self._counter_lock:
                    self._write_back_errors += 1
            finally:
                q.task_done()

    def flush(self) -> None:
        q = self._queue  # close() may clear the attribute concurrently
        if q is not None:
            q.join()
        self.local.flush()
        self.shared.flush()

    def close(self) -> None:
        with self._writer_lock:
            writer, q = self._writer, self._queue
            self._writer, self._queue = None, None
        if q is not None:
            q.join()
            q.put(None)
        if writer is not None:
            writer.join(timeout=10.0)
        self.local.close()
        self.shared.close()

    # ------------------------------------------------------------------
    # the blob contract

    def get(self, kind: str, fingerprint: str, digest: str) -> Optional[Dict[str, Any]]:
        entry = self.local.get(kind, fingerprint, digest)
        if entry is not None:
            self._count_hit(kind)
            return entry
        entry = self.shared.get(kind, fingerprint, digest)
        if entry is not None:
            # promote: the next read of this entry should be local
            self.local.put(kind, fingerprint, digest, entry)
            self._count_hit(kind)
            return entry
        self._count_miss(kind)
        return None

    def put(self, kind: str, fingerprint: str, digest: str, entry: Dict[str, Any]) -> Path:
        path = self.local.put(kind, fingerprint, digest, entry)
        try:
            self._writer_queue().put_nowait((kind, fingerprint, digest, entry))
        except queue.Full:
            # a backed-up shared tier slows us down rather than losing
            # the shared copy — workers rely on the common cache filling
            try:
                self.shared.put(kind, fingerprint, digest, entry)
            except Exception:
                with self._counter_lock:
                    self._write_back_errors += 1
        return path

    def stat(self, kind: str, fingerprint: str, digest: str) -> Optional[BlobStat]:
        return self.local.stat(kind, fingerprint, digest) or self.shared.stat(
            kind, fingerprint, digest
        )

    def delete(self, kind: str, fingerprint: str, digest: str) -> bool:
        removed_local = self.local.delete(kind, fingerprint, digest)
        removed_shared = self.shared.delete(kind, fingerprint, digest)
        return removed_local or removed_shared

    def iter_keys(self, kind: Optional[str] = None) -> Iterator[BlobKey]:
        seen = set(self.local.iter_keys(kind))
        seen.update(self.shared.iter_keys(kind))
        for key in sorted(seen, key=lambda k: (k.kind, k.fingerprint, k.digest)):
            yield key

    def gc(
        self, max_age_days: Optional[float] = None, *, dry_run: bool = False
    ) -> GCReport:
        self.flush()  # don't gc the shared tier out from under queued writes
        local_report = self.local.gc(max_age_days, dry_run=dry_run)
        shared_report = self.shared.gc(max_age_days, dry_run=dry_run)
        return GCReport(
            tuple(local_report.entries) + tuple(shared_report.entries),
            dry_run=dry_run,
        )

    # ------------------------------------------------------------------
    # statistics

    def stats(self) -> Dict[str, Any]:
        record = super().stats()
        with self._counter_lock:
            record["write_back_errors"] = self._write_back_errors
        record["local"] = self.local.stats()
        record["shared"] = self.shared.stats()
        return record
