"""SQLite backend: a single-file shared cache tier, zero dependencies.

One WAL-mode database file holds every entry as a row keyed by
``(kind, fingerprint, digest)``.  Because SQLite serialises writers and
WAL lets readers proceed during a write, a DB file on a shared
filesystem gives a fleet of workers (or successive CI jobs) a common
warm cache without running a cache server: process A's put is process
B's hit.

Atomicity comes for free from SQLite's journaling — ``put`` is one
upsert statement, so a concurrent reader sees the old row, no row, or
the new row, never a torn one.  Undecodable rows (mangled by a dying
writer or a hand edit) are deleted on read and degrade to misses, per
the :class:`~repro.store.backends.base.StoreBackend` contract.

Unlike the disk backend, every hit refreshes the row's ``last_hit``
stamp unconditionally — the column is there anyway, and it makes
LRU eviction exact for shared tiers even when the cap is only enabled
later.  Connections are per-thread (SQLite connections are not
thread-safe to share) and are *not* pickled: crossing a process-pool
boundary carries only the DB path and cap, and the worker reconnects
lazily on first use.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.store.backends.base import (
    BlobKey,
    BlobStat,
    GCReport,
    STORE_VERSION,
    StoreBackend,
    gc_entry,
    validate_entry,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS blobs (
    kind        TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    digest      TEXT NOT NULL,
    entry       TEXT NOT NULL,
    size        INTEGER NOT NULL,
    created_at  REAL NOT NULL,
    last_hit    REAL NOT NULL,
    PRIMARY KEY (kind, fingerprint, digest)
)
"""

_UPSERT = """
INSERT INTO blobs (kind, fingerprint, digest, entry, size, created_at, last_hit)
VALUES (?, ?, ?, ?, ?, ?, ?)
ON CONFLICT (kind, fingerprint, digest) DO UPDATE SET
    entry = excluded.entry,
    size = excluded.size,
    created_at = excluded.created_at,
    last_hit = excluded.last_hit
"""


class SQLiteBackend(StoreBackend):
    """Every entry is a row in one WAL-mode SQLite file."""

    name = "sqlite"

    def __init__(
        self, path: str, max_bytes: Optional[int] = None
    ) -> None:
        super().__init__()
        self._path = Path(path)
        self.max_bytes = max_bytes
        self._local = threading.local()
        self._conns_lock = threading.Lock()
        self._conns: List[sqlite3.Connection] = []

    # connections never cross pickle boundaries; the far side reconnects
    def __reduce__(self):
        return (SQLiteBackend, (str(self._path), self.max_bytes))

    @property
    def root(self) -> Path:
        return self._path

    # ------------------------------------------------------------------
    # connections

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            if self._path.parent != Path("."):
                self._path.parent.mkdir(parents=True, exist_ok=True)
            # autocommit mode: every statement is its own transaction
            # unless we open one explicitly (eviction does)
            conn = sqlite3.connect(
                str(self._path),
                timeout=30.0,
                isolation_level=None,
                check_same_thread=False,
            )
            try:
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
            except sqlite3.OperationalError:
                pass  # filesystem without WAL support: rollback journal still works
            conn.execute(_SCHEMA)
            self._local.conn = conn
            with self._conns_lock:
                self._conns.append(conn)
        return conn

    def close(self) -> None:
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:
                pass
        self._local = threading.local()

    # ------------------------------------------------------------------
    # the blob contract

    def get(self, kind: str, fingerprint: str, digest: str) -> Optional[Dict[str, Any]]:
        conn = self._conn()
        row = conn.execute(
            "SELECT entry FROM blobs WHERE kind = ? AND fingerprint = ? AND digest = ?",
            (kind, fingerprint, digest),
        ).fetchone()
        if row is None:
            self._count_miss(kind)
            return None
        try:
            entry = validate_entry(json.loads(row[0]), kind)
        except (ValueError, KeyError, TypeError):
            self.delete(kind, fingerprint, digest)
            self._count_miss(kind)
            return None
        conn.execute(
            "UPDATE blobs SET last_hit = ? WHERE kind = ? AND fingerprint = ? AND digest = ?",
            (time.time(), kind, fingerprint, digest),
        )
        self._count_hit(kind)
        return entry

    def put(self, kind: str, fingerprint: str, digest: str, entry: Dict[str, Any]) -> Path:
        text = json.dumps(entry)
        created = float(entry.get("created_at") or time.time())
        self._conn().execute(
            _UPSERT,
            (kind, fingerprint, digest, text, len(text.encode("utf-8")), created, created),
        )
        if self.max_bytes is not None:
            self._evict_to_cap(keep=(kind, fingerprint, digest))
        return self._path

    def stat(self, kind: str, fingerprint: str, digest: str) -> Optional[BlobStat]:
        row = self._conn().execute(
            "SELECT size, created_at, last_hit FROM blobs"
            " WHERE kind = ? AND fingerprint = ? AND digest = ?",
            (kind, fingerprint, digest),
        ).fetchone()
        if row is None:
            return None
        return BlobStat(size=int(row[0]), created_at=float(row[1]), last_hit=float(row[2]))

    def delete(self, kind: str, fingerprint: str, digest: str) -> bool:
        cursor = self._conn().execute(
            "DELETE FROM blobs WHERE kind = ? AND fingerprint = ? AND digest = ?",
            (kind, fingerprint, digest),
        )
        return cursor.rowcount > 0

    def iter_keys(self, kind: Optional[str] = None) -> Iterator[BlobKey]:
        if kind is None:
            rows = self._conn().execute(
                "SELECT kind, fingerprint, digest FROM blobs"
                " ORDER BY kind, fingerprint, digest"
            ).fetchall()
        else:
            rows = self._conn().execute(
                "SELECT kind, fingerprint, digest FROM blobs WHERE kind = ?"
                " ORDER BY fingerprint, digest",
                (kind,),
            ).fetchall()
        for row in rows:
            yield BlobKey(kind=row[0], fingerprint=row[1], digest=row[2])

    # ------------------------------------------------------------------
    # eviction / gc

    def _evict_to_cap(self, keep) -> None:
        """LRU-evict inside one immediate transaction so two capped
        writers racing on the same DB both see consistent totals."""
        conn = self._conn()
        try:
            conn.execute("BEGIN IMMEDIATE")
            rows = conn.execute(
                "SELECT kind, fingerprint, digest, size FROM blobs"
                " ORDER BY last_hit, kind, fingerprint, digest"
            ).fetchall()
            total = sum(int(row[3]) for row in rows)
            for row in rows:
                if total <= self.max_bytes:
                    break
                if (row[0], row[1], row[2]) == keep:
                    continue  # a put never evicts its own entry
                conn.execute(
                    "DELETE FROM blobs WHERE kind = ? AND fingerprint = ? AND digest = ?",
                    (row[0], row[1], row[2]),
                )
                total -= int(row[3])
                self._count_eviction(row[0])
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def gc(
        self, max_age_days: Optional[float] = None, *, dry_run: bool = False
    ) -> GCReport:
        entries: List[Dict[str, Any]] = []
        # repro: allow[monotonic-deadline] gc age-compares persisted wall-clock created_at stamps, not an in-process deadline
        cutoff = None if max_age_days is None else time.time() - max_age_days * 86400.0
        rows = self._conn().execute(
            "SELECT kind, fingerprint, digest, entry, size, created_at FROM blobs"
            " ORDER BY kind, fingerprint, digest"
        ).fetchall()
        for kind, fingerprint, digest, text, size, created in rows:
            key = BlobKey(kind=kind, fingerprint=fingerprint, digest=digest)
            try:
                entry = json.loads(text)
                if entry["version"] != STORE_VERSION or "payload" not in entry:
                    raise ValueError("stale store entry")
            except (ValueError, KeyError, TypeError):
                entries.append(gc_entry(key, "unreadable entry", size))
                if not dry_run:
                    self.delete(kind, fingerprint, digest)
                continue
            if cutoff is not None and float(created) < cutoff:
                entries.append(
                    gc_entry(key, f"older than {max_age_days:g} day(s)", size)
                )
                if not dry_run:
                    self.delete(kind, fingerprint, digest)
        return GCReport(entries, dry_run=dry_run)
