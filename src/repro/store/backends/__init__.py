"""Pluggable storage backends for the content-addressed store.

========== =============================== ====================================
backend    storage                         use it when
========== =============================== ====================================
``local``  one JSON file per entry under   the default — single machine, CI
           ``root/<kind>/<fp[:2]>/…``      directory caches, shell-greppable
``sqlite`` one WAL-mode SQLite file        a shared tier: fleet workers or CI
                                           jobs warming from one file
``tiered`` local tier in front of a shared local-speed reads plus a common
           tier (read-through/write-back)  warm cache that fills as you work
========== =============================== ====================================

:func:`make_backend` maps the CLI surface (``--store-backend``,
``--shared-store``, ``--store-max-mb``) onto a configured backend;
:class:`repro.store.ArtifactStore` wraps whatever comes back.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ConfigError
from repro.store.backends.base import (
    BlobKey,
    BlobStat,
    GCReport,
    STORE_VERSION,
    StoreBackend,
    gc_entry,
    validate_entry,
)
from repro.store.backends.disk import LocalDiskBackend, default_store_dir, tmp_sibling
from repro.store.backends.sqlite import SQLiteBackend
from repro.store.backends.tiered import TieredBackend

#: Accepted ``--store-backend`` values.
BACKEND_NAMES = ("local", "sqlite", "tiered")


def make_backend(
    backend: Optional[str] = None,
    *,
    store_dir: Optional[str] = None,
    shared_path: Optional[str] = None,
    max_bytes: Optional[int] = None,
) -> StoreBackend:
    """A configured :class:`StoreBackend` from CLI-shaped options.

    ``backend=None`` picks for you: ``tiered`` when a shared path is
    given (the only reason to give one), else the default ``local``.
    ``sqlite`` without an explicit ``shared_path`` keeps its DB file
    inside the store directory as ``store.sqlite``.
    """
    if backend is None:
        backend = "tiered" if shared_path else "local"
    if backend == "local":
        if shared_path:
            raise ConfigError(
                "--shared-store requires --store-backend sqlite or tiered"
            )
        return LocalDiskBackend(store_dir, max_bytes=max_bytes)
    if backend == "sqlite":
        path = shared_path or os.path.join(
            store_dir if store_dir is not None else default_store_dir(),
            "store.sqlite",
        )
        return SQLiteBackend(path, max_bytes=max_bytes)
    if backend == "tiered":
        if not shared_path:
            raise ConfigError(
                "--store-backend tiered requires --shared-store PATH"
            )
        # the cap protects the machine-local tier; the shared tier is
        # a deliberately-shared resource and is gc'd explicitly
        return TieredBackend(
            LocalDiskBackend(store_dir, max_bytes=max_bytes),
            SQLiteBackend(shared_path),
        )
    raise ConfigError(
        f"unknown store backend {backend!r} (choose from {', '.join(BACKEND_NAMES)})"
    )


__all__ = [
    "BACKEND_NAMES",
    "BlobKey",
    "BlobStat",
    "GCReport",
    "LocalDiskBackend",
    "SQLiteBackend",
    "STORE_VERSION",
    "StoreBackend",
    "TieredBackend",
    "default_store_dir",
    "gc_entry",
    "make_backend",
    "tmp_sibling",
    "validate_entry",
]
