"""Local-disk backend: the historical ``ArtifactStore`` layout, extracted.

Entries live under ``root/<kind>/<fp[:2]>/<fp>-<digest>.json`` — one
JSON file per entry, inspectable with ordinary shell tools, cacheable
by CI (``actions/cache`` on the directory) and shareable by concurrent
worker processes.  With the default settings this backend is
byte-identical to the pre-backend ``ArtifactStore``: same paths, same
file contents, same atomic temp-sibling writes, same corrupt-entry
handling.

The write protocol is the one PR 3/4 hardened: stage the entry into a
sibling path unique per (pid, thread, monotonic counter) via
:func:`tmp_sibling`, then ``os.replace`` it into place, so a reader
never observes a half-written entry and two writers never share a temp
path.  Eviction (``max_bytes``) is LRU by last hit, where "last hit"
is the entry file's mtime — refreshed on every warm ``get`` only while
a cap is set, so the uncapped default never touches files it reads.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.store.backends.base import (
    BlobKey,
    BlobStat,
    GCReport,
    STORE_VERSION,
    StoreBackend,
    gc_entry,
    validate_entry,
)

#: Process-wide monotonic counter for temp-file names: two threads of
#: one process writing the same entry must never share a temp path
#: (``next()`` on a ``count`` is atomic under the GIL).
_TMP_COUNTER = itertools.count()


def tmp_sibling(path: Path) -> Path:
    """A write-then-``os.replace`` temp path next to ``path``, unique
    across processes (pid), threads (tid) and repeated writes
    (counter).  Shared by every atomic writer in :mod:`repro.store`."""
    return path.with_name(
        path.name
        + f".tmp.{os.getpid()}.{threading.get_ident()}.{next(_TMP_COUNTER)}"
    )


def default_store_dir() -> str:
    """The store root: ``$REPRO_STORE_DIR`` or ``.repro-store``.

    A repo-local default keeps the store next to the runs that filled
    it, which is also what CI caches between workflow runs.
    """
    return os.environ.get("REPRO_STORE_DIR", ".repro-store")


class LocalDiskBackend(StoreBackend):
    """One JSON file per entry under a local directory tree."""

    name = "local-disk"

    def __init__(
        self, root: Optional[str] = None, max_bytes: Optional[int] = None
    ) -> None:
        super().__init__()
        self._root = Path(root if root is not None else default_store_dir())
        self.max_bytes = max_bytes

    # disk backends cross process-pool boundaries as plain config; the
    # counters are per-process diagnostics and restart at zero
    def __reduce__(self):
        return (LocalDiskBackend, (str(self._root), self.max_bytes))

    @property
    def root(self) -> Path:
        return self._root

    # ------------------------------------------------------------------
    # paths

    def blob_path(self, kind: str, fingerprint: str, digest: str) -> Path:
        """On-disk location of one entry (it may not exist)."""
        return self._root / kind / fingerprint[:2] / f"{fingerprint}-{digest}.json"

    def _iter_paths(self, kind: Optional[str] = None) -> Iterator[Path]:
        if not self._root.is_dir():
            return
        if kind is not None:
            kind_dir = self._root / kind
            if kind_dir.is_dir():
                yield from sorted(kind_dir.glob("*/*.json"))
            return
        for kind_dir in sorted(self._root.iterdir()):
            if not kind_dir.is_dir():
                continue
            yield from sorted(kind_dir.glob("*/*.json"))

    @staticmethod
    def _key_of(path: Path) -> BlobKey:
        fingerprint, _, digest = path.stem.rpartition("-")
        return BlobKey(kind=path.parent.parent.name, fingerprint=fingerprint, digest=digest)

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # the blob contract

    def get(self, kind: str, fingerprint: str, digest: str) -> Optional[Dict[str, Any]]:
        path = self.blob_path(kind, fingerprint, digest)
        try:
            with open(path, "r", encoding="utf-8") as f:
                entry = validate_entry(json.load(f), kind)
        except FileNotFoundError:
            self._count_miss(kind)
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._discard(path)
            self._count_miss(kind)
            return None
        if self.max_bytes is not None:
            # refresh the LRU stamp (mtime) — only under a cap, so the
            # default uncapped backend never modifies what it reads
            try:
                os.utime(path, None)
            except OSError:
                pass
        self._count_hit(kind)
        return entry

    def put(self, kind: str, fingerprint: str, digest: str, entry: Dict[str, Any]) -> Path:
        path = self.blob_path(kind, fingerprint, digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        # pid alone is not unique enough: two threads of one process
        # (the serve path) writing the same entry would race on a shared
        # temp path — the helper adds thread id + monotonic counter
        tmp = tmp_sibling(path)
        try:
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(entry, f)
            os.replace(tmp, path)
        except BaseException:
            self._discard(tmp)
            raise
        if self.max_bytes is not None:
            self._evict_to_cap(keep=path)
        return path

    def stat(self, kind: str, fingerprint: str, digest: str) -> Optional[BlobStat]:
        path = self.blob_path(kind, fingerprint, digest)
        try:
            st = path.stat()
        except OSError:
            return None
        return BlobStat(size=st.st_size, created_at=st.st_mtime, last_hit=st.st_mtime)

    def delete(self, kind: str, fingerprint: str, digest: str) -> bool:
        path = self.blob_path(kind, fingerprint, digest)
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def iter_keys(self, kind: Optional[str] = None) -> Iterator[BlobKey]:
        for path in self._iter_paths(kind):
            yield self._key_of(path)

    # ------------------------------------------------------------------
    # eviction / gc

    def _evict_to_cap(self, keep: Optional[Path] = None) -> None:
        """Drop least-recently-hit entries until the tree fits the cap.

        The entry just written (``keep``) is never evicted by its own
        put — a cap smaller than one entry must not turn every put into
        an immediate self-eviction."""
        sized: List[Tuple[float, int, Path]] = []
        total = 0
        for path in self._iter_paths():
            try:
                st = path.stat()
            except OSError:
                continue
            sized.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        sized.sort(key=lambda item: (item[0], str(item[2])))
        for mtime, size, path in sized:
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            self._discard(path)
            total -= size
            self._count_eviction(path.parent.parent.name)

    def gc(
        self, max_age_days: Optional[float] = None, *, dry_run: bool = False
    ) -> GCReport:
        import time

        entries: List[Dict[str, Any]] = []
        # repro: allow[monotonic-deadline] gc age-compares persisted wall-clock created_at stamps, not an in-process deadline
        cutoff = None if max_age_days is None else time.time() - max_age_days * 86400.0
        if self._root.is_dir():
            for tmp in sorted(self._root.glob("*/*/*.json.tmp.*")):
                size = 0
                try:
                    size = tmp.stat().st_size
                except OSError:
                    pass
                entries.append(
                    gc_entry(self._key_of(tmp), "stray temp file", size)
                )
                if not dry_run:
                    self._discard(tmp)
        for path in list(self._iter_paths()):
            key = self._key_of(path)
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
            try:
                with open(path, "r", encoding="utf-8") as f:
                    entry = json.load(f)
                if entry["version"] != STORE_VERSION or "payload" not in entry:
                    raise ValueError("stale store entry")
                created = float(entry.get("created_at", 0.0))
            except (OSError, ValueError, KeyError, TypeError):
                entries.append(gc_entry(key, "unreadable entry", size))
                if not dry_run:
                    self._discard(path)
                continue
            if cutoff is not None and created < cutoff:
                entries.append(
                    gc_entry(key, f"older than {max_age_days:g} day(s)", size)
                )
                if not dry_run:
                    self._discard(path)
        return GCReport(entries, dry_run=dry_run)
