"""Technology mapping of domino implementations onto the cell library.

Takes the inverter-free block produced by the phase transform,
materialises it as a plain network, decomposes gates wider than the
library fanin limits into balanced cell trees, and annotates every node
with its cell.  The mapped design is what the "Size" columns of the
paper's tables count, and what the timing engine resizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.network.duplication import DominoImplementation, implementation_network
from repro.network.netlist import GateType, LogicNetwork
from repro.domino.gates import DEFAULT_LIBRARY, DominoCell, DominoCellLibrary


def decompose_to_cells(
    network: LogicNetwork, library: DominoCellLibrary
) -> LogicNetwork:
    """Split AND/OR gates wider than the library limit into cell trees.

    Returns a new network; NOT/BUF nodes pass through unchanged.
    """
    net = network.copy(f"{network.name}_mapped")
    for node in list(net.nodes.values()):
        if node.gate_type not in (GateType.AND, GateType.OR):
            continue
        limit = library.max_fanin(node.gate_type)
        operands = list(node.fanins)
        layer = 0
        while len(operands) > limit:
            plan = library.tree_arity_plan(node.gate_type, len(operands))
            next_operands: List[str] = []
            pos = 0
            for gi, size in enumerate(plan):
                group = operands[pos : pos + size]
                pos += size
                if len(group) == 1:
                    next_operands.append(group[0])
                    continue
                sub = net.fresh_name(f"{node.name}#t{layer}_{gi}")
                net.add_gate(sub, node.gate_type, group)
                next_operands.append(sub)
            operands = next_operands
            layer += 1
        node.fanins = operands
    net.validate()
    return net


@dataclass
class MappedDesign:
    """A cell-mapped domino design.

    Attributes
    ----------
    network:
        Decomposed network: every AND/OR node fits one domino cell,
        every NOT node is one static inverter.
    cells:
        Mapping node name -> :class:`DominoCell`.
    size_factors:
        Per-node transistor upsizing (timing engine writes these;
        1.0 = minimum size).
    """

    network: LogicNetwork
    library: DominoCellLibrary
    cells: Dict[str, DominoCell]
    size_factors: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in self.cells:
            self.size_factors.setdefault(name, 1.0)

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def cell_area(self) -> float:
        """Area in equivalent minimum-size cells (resizing inflates it)."""
        return float(sum(self.size_factors[name] for name in self.cells))

    def standard_cell_count(self) -> int:
        """The tables' integer "Size" column: equivalent standard cells."""
        return int(round(self.cell_area()))

    def node_capacitance(self, name: str) -> float:
        """Switched output capacitance of a cell, including sizing."""
        cell = self.cells[name]
        return cell.output_cap * self.size_factors[name]

    def node_clock_cap(self, name: str) -> float:
        cell = self.cells[name]
        return cell.clock_cap * self.size_factors[name]

    def fanout_load(self, name: str, fanouts: Mapping[str, List[str]]) -> float:
        """Capacitive load a node drives: sum of sized sink input caps."""
        load = 0.0
        for sink in fanouts.get(name, []):
            cell = self.cells.get(sink)
            if cell is None:
                continue
            load += cell.input_cap * self.size_factors[sink]
        return load

    def counts_by_cell(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for cell in self.cells.values():
            hist[cell.name] = hist.get(cell.name, 0) + 1
        return hist


def map_implementation(
    impl: DominoImplementation, library: Optional[DominoCellLibrary] = None
) -> MappedDesign:
    """Map a phase-transformed implementation to library cells."""
    library = library or DEFAULT_LIBRARY
    block = implementation_network(impl)
    return map_network(block, library)


def map_network(
    block: LogicNetwork, library: Optional[DominoCellLibrary] = None
) -> MappedDesign:
    """Map an already inverter-free block network (AND/OR/NOT only)."""
    library = library or DEFAULT_LIBRARY
    net = decompose_to_cells(block, library)
    cells: Dict[str, DominoCell] = {}
    for node in net.gates:
        t = node.gate_type
        if t in (GateType.AND, GateType.OR):
            cells[node.name] = library.cell(t, len(node.fanins))
        elif t is GateType.NOT:
            cells[node.name] = library.inverter
        elif t is GateType.BUF:
            # Buffers do not survive the phase transform, but tolerate
            # them as zero-cost feedthroughs if present.
            continue
        else:
            raise ReproError(
                f"mapped block contains non-domino gate {node.name} ({t.value})"
            )
    return MappedDesign(network=net, library=library, cells=cells)


def simulate_mapped_power(
    design: MappedDesign,
    input_probs: Optional[Mapping[str, float]] = None,
    n_vectors: int = 4096,
    seed: int = 0,
    current_scale: float = 1.0,
) -> Dict[str, float]:
    """Monte-Carlo power of a mapped design (the tables' "Pwr" columns).

    Energy accounting per cycle:

    * domino cells charge their (sized) output cap whenever they fire,
      plus their clock cap every cycle;
    * static inverters driven by PIs/latches toggle on input change;
    * static inverters driven by domino cells toggle when the driver
      fires.

    Returns a dict with ``domino``, ``clock``, ``static``, ``total`` and
    ``current_ma`` entries.
    """
    from repro.power.probability import random_source_batch, simulate_batch

    net = design.network
    if input_probs is None:
        input_probs = {s: 0.5 for s in net.sources()}
    batch = random_source_batch(net, input_probs, n_vectors, seed)
    values = simulate_batch(net, batch)

    domino_energy = 0.0
    clock_energy = 0.0
    static_energy = 0.0
    for node in net.gates:
        cell = design.cells.get(node.name)
        if cell is None:
            continue
        arr = values[node.name]
        cap = design.node_capacitance(node.name)
        if cell.is_domino:
            domino_energy += float(arr.mean()) * cap
            clock_energy += design.node_clock_cap(node.name)
        else:
            driver = net.nodes[node.fanins[0]]
            if driver.gate_type in (GateType.INPUT, GateType.LATCH):
                toggles = float(np.mean(arr[1:] != arr[:-1])) if len(arr) > 1 else 0.0
                static_energy += toggles * cap
            else:
                # Driven by a domino cell: follows the monotonic pulse.
                drv = values[node.fanins[0]]
                static_energy += float(drv.mean()) * cap
    total = domino_energy + clock_energy + static_energy
    return {
        "domino": domino_energy,
        "clock": clock_energy,
        "static": static_energy,
        "total": total,
        "current_ma": total * current_scale,
    }
