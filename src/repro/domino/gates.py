"""Parametric domino cell library.

The paper maps to a proprietary Intel cell library; we substitute a
parametric one.  A domino AND keeps its N-transistor pulldown in
series, so wide ANDs are slow (the paper's P_i penalty exists for this
reason) and the library caps AND fanin harder than OR fanin.  Every
domino cell also presents a clock load (precharge + evaluate devices)
that switches every single cycle — the main reason domino logic costs
up to 4x static power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.network.netlist import GateType


@dataclass(frozen=True)
class DominoCell:
    """One library cell."""

    name: str
    gate_type: GateType  # AND, OR for domino cells; NOT for the static inverter
    n_inputs: int
    output_cap: float  # dynamic-node + buffer output capacitance
    clock_cap: float  # per-cycle clock pin load (0 for static cells)
    intrinsic_delay: float
    series_delay: float  # extra delay per series transistor beyond the first
    load_delay: float  # delay per unit of fanout capacitance
    input_cap: float  # load presented to each driver

    @property
    def is_domino(self) -> bool:
        return self.clock_cap > 0.0

    def delay(self, fanout_cap: float, size_factor: float = 1.0) -> float:
        """Cell delay under a fanout load, with optional upsizing.

        Upsizing by ``size_factor`` strengthens drive: the external-load
        term divides by the size, and the intrinsic/stack term shrinks
        partially (parasitic self-load scales with the devices, so only
        ~60% of it is irreducible).
        """
        if size_factor <= 0:
            raise ReproError(f"size factor must be positive, got {size_factor}")
        stack = self.series_delay * max(self.n_inputs - 1, 0) if (
            self.gate_type is GateType.AND
        ) else 0.0
        self_delay = (self.intrinsic_delay + stack) * (0.6 + 0.4 / size_factor)
        return self_delay + self.load_delay * fanout_cap / size_factor


@dataclass
class DominoCellLibrary:
    """A generated family of domino AND/OR cells plus a static inverter.

    Parameters mirror a simplified transistor-level view:

    * ``max_and_fanin`` — series-stack limit for domino AND pulldowns;
    * ``max_or_fanin`` — parallel-stack limit for domino OR pulldowns;
    * capacitances and delays are per-unit numbers the mapper and timing
      engine consume.
    """

    max_and_fanin: int = 4
    max_or_fanin: int = 8
    gate_output_cap: float = 1.0
    cap_per_input: float = 0.15
    clock_cap: float = 0.25
    inverter_cap: float = 0.6
    intrinsic_delay: float = 1.0
    series_delay: float = 0.45
    load_delay: float = 0.35
    input_cap: float = 0.3
    inverter_delay: float = 0.55

    def __post_init__(self) -> None:
        if self.max_and_fanin < 2 or self.max_or_fanin < 2:
            raise ReproError("cell fanin limits must be at least 2")
        self._cache: Dict[Tuple[GateType, int], DominoCell] = {}

    def max_fanin(self, gate_type: GateType) -> int:
        if gate_type is GateType.AND:
            return self.max_and_fanin
        if gate_type is GateType.OR:
            return self.max_or_fanin
        raise ReproError(f"no domino cell family for gate type {gate_type.value}")

    def cell(self, gate_type: GateType, n_inputs: int) -> DominoCell:
        """Domino cell for a gate of the given type and fanin.

        ``n_inputs`` must not exceed the family limit; the mapper
        decomposes wider gates into trees first.
        """
        if gate_type not in (GateType.AND, GateType.OR):
            raise ReproError(f"no domino cell for gate type {gate_type.value}")
        if n_inputs < 1:
            raise ReproError("cell needs at least one input")
        if n_inputs > self.max_fanin(gate_type):
            raise ReproError(
                f"{gate_type.value}{n_inputs} exceeds library limit "
                f"{self.max_fanin(gate_type)}"
            )
        key = (gate_type, n_inputs)
        cell = self._cache.get(key)
        if cell is None:
            prefix = "DAND" if gate_type is GateType.AND else "DOR"
            # setdefault keeps the insert atomic (first writer wins), so
            # concurrent stage threads mapping both variants always see
            # one identity per cell (the library cannot carry a lock:
            # it is pickled into pool workers with its config)
            cell = self._cache.setdefault(
                key,
                DominoCell(
                    name=f"{prefix}{n_inputs}",
                    gate_type=gate_type,
                    n_inputs=n_inputs,
                    output_cap=self.gate_output_cap + self.cap_per_input * n_inputs,
                    clock_cap=self.clock_cap,
                    intrinsic_delay=self.intrinsic_delay,
                    series_delay=self.series_delay,
                    load_delay=self.load_delay,
                    input_cap=self.input_cap,
                ),
            )
        return cell

    @property
    def inverter(self) -> DominoCell:
        """The static boundary inverter cell."""
        key = (GateType.NOT, 1)
        cell = self._cache.get(key)
        if cell is None:
            cell = self._cache.setdefault(
                key,
                DominoCell(
                    name="SINV",
                    gate_type=GateType.NOT,
                    n_inputs=1,
                    output_cap=self.inverter_cap,
                    clock_cap=0.0,
                    intrinsic_delay=self.inverter_delay,
                    series_delay=0.0,
                    load_delay=self.load_delay,
                    input_cap=self.input_cap,
                ),
            )
        return cell

    def tree_arity_plan(self, gate_type: GateType, n_inputs: int) -> List[int]:
        """Fanin sizes of a balanced cell tree realising a wide gate.

        Returns the list of leaf-level group sizes for one reduction
        step; the mapper applies this recursively.
        """
        limit = self.max_fanin(gate_type)
        if n_inputs <= limit:
            return [n_inputs]
        groups: List[int] = []
        remaining = n_inputs
        while remaining > 0:
            take = min(limit, remaining)
            # Avoid a trailing 1-input group: rebalance the final pair.
            if remaining - take == 1 and take > 2:
                take -= 1
            groups.append(take)
            remaining -= take
        return groups


DEFAULT_LIBRARY = DominoCellLibrary()
