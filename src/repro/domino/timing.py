"""Static timing analysis and transistor-resizing emulation.

The Table 2 experiment reruns the synthesis flow "with an additional
step of transistor resizing (after technology mapping) in order to meet
realistic timing constraints", asking whether timing repair undoes the
power-oriented phase assignment.  We reproduce that with:

* a stack-and-load delay model per cell (series transistors in domino
  ANDs cost extra delay — the physical basis of the paper's P_i
  penalty);
* topological arrival-time analysis;
* an iterative upsizing loop: while the critical delay misses the
  target, upsize the cells on the critical path (drive strength up,
  input/clock/output capacitance up), which feeds directly back into
  the Monte-Carlo power measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import TimingError
from repro.network.netlist import GateType, LogicNetwork
from repro.domino.mapper import MappedDesign


@dataclass
class TimingReport:
    """Arrival-time analysis of a mapped design."""

    arrival: Dict[str, float]
    critical_delay: float
    critical_path: List[str]

    def slack(self, target: float) -> float:
        return target - self.critical_delay


def analyze_timing(design: MappedDesign) -> TimingReport:
    """Topological arrival-time computation over the mapped network."""
    net = design.network
    fanouts = net.fanout_map()
    arrival: Dict[str, float] = {}
    best_pred: Dict[str, Optional[str]] = {}
    for name in net.topological_order():
        node = net.nodes[name]
        t = node.gate_type
        if t.is_source or t is GateType.LATCH:
            arrival[name] = 0.0
            best_pred[name] = None
            continue
        cell = design.cells.get(name)
        if cell is None:  # BUF feedthrough
            arrival[name] = max((arrival[fi] for fi in node.fanins), default=0.0)
            best_pred[name] = max(
                node.fanins, key=lambda fi: arrival[fi], default=None
            )
            continue
        load = design.fanout_load(name, fanouts)
        delay = cell.delay(load, design.size_factors[name])
        worst_in = 0.0
        worst_fi: Optional[str] = None
        for fi in node.fanins:
            if arrival[fi] >= worst_in:
                worst_in = arrival[fi]
                worst_fi = fi
        arrival[name] = worst_in + delay
        best_pred[name] = worst_fi

    endpoints = [driver for _, driver in net.outputs]
    endpoints.extend(latch.fanins[0] for latch in net.latches)
    if not endpoints:
        return TimingReport(arrival=arrival, critical_delay=0.0, critical_path=[])
    end = max(endpoints, key=lambda e: arrival[e])
    path: List[str] = []
    cur: Optional[str] = end
    while cur is not None:
        path.append(cur)
        cur = best_pred.get(cur)
    path.reverse()
    return TimingReport(
        arrival=arrival, critical_delay=arrival[end], critical_path=path
    )


@dataclass
class ResizeResult:
    """Outcome of the timing-repair loop."""

    met_timing: bool
    target: float
    initial_delay: float
    final_delay: float
    iterations: int
    upsized_cells: int

    @property
    def improvement(self) -> float:
        return self.initial_delay - self.final_delay


def resize_to_meet_timing(
    design: MappedDesign,
    target_delay: float,
    step: float = 1.2,
    max_size: float = 4.0,
    max_iterations: int = 200,
) -> ResizeResult:
    """Upsize critical-path cells until the design meets ``target_delay``.

    Mutates ``design.size_factors`` in place.  Each iteration multiplies
    the size of every not-yet-maxed cell on the current critical path by
    ``step``; the loop stops when timing is met, every critical cell is
    at ``max_size``, or ``max_iterations`` is hit.
    """
    if target_delay <= 0:
        raise TimingError(f"target delay must be positive, got {target_delay}")
    if step <= 1.0:
        raise TimingError(f"resize step must exceed 1.0, got {step}")

    report = analyze_timing(design)
    initial = report.critical_delay
    iterations = 0
    touched: set = set()
    while report.critical_delay > target_delay and iterations < max_iterations:
        iterations += 1
        progressed = False
        for name in report.critical_path:
            if name not in design.cells:
                continue
            current = design.size_factors[name]
            if current >= max_size:
                continue
            design.size_factors[name] = min(current * step, max_size)
            touched.add(name)
            progressed = True
        if not progressed:
            break
        report = analyze_timing(design)
    return ResizeResult(
        met_timing=report.critical_delay <= target_delay,
        target=target_delay,
        initial_delay=initial,
        final_delay=report.critical_delay,
        iterations=iterations,
        upsized_cells=len(touched),
    )


def default_timing_target(design: MappedDesign, slack_fraction: float = 0.85) -> float:
    """A "realistic timing constraint": a fraction of the unsized critical
    delay, forcing the resizer to actually work (as in Table 2)."""
    report = analyze_timing(design)
    if report.critical_delay == 0.0:
        return 1.0
    return report.critical_delay * slack_fraction
