"""Domino cell library, technology mapping and timing/resizing."""

from repro.domino.gates import DEFAULT_LIBRARY, DominoCell, DominoCellLibrary
from repro.domino.mapper import (
    MappedDesign,
    decompose_to_cells,
    map_implementation,
    map_network,
    simulate_mapped_power,
)
from repro.domino.timing import (
    ResizeResult,
    TimingReport,
    analyze_timing,
    default_timing_target,
    resize_to_meet_timing,
)

__all__ = [
    "DEFAULT_LIBRARY",
    "DominoCell",
    "DominoCellLibrary",
    "MappedDesign",
    "decompose_to_cells",
    "map_implementation",
    "map_network",
    "simulate_mapped_power",
    "ResizeResult",
    "TimingReport",
    "analyze_timing",
    "default_timing_target",
    "resize_to_meet_timing",
]
