"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NetworkError(ReproError):
    """Structural problem in a logic network (bad fanin, cycle, duplicate)."""


class BlifError(ReproError):
    """Malformed BLIF input."""

    def __init__(self, message: str, line_no: int | None = None):
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class PhaseError(ReproError):
    """Invalid phase assignment (unknown output, bad polarity value)."""


class BddError(ReproError):
    """BDD construction failure (node budget exceeded, bad ordering)."""


class PowerError(ReproError):
    """Power estimation failure (missing probabilities, bad model)."""


class TimingError(ReproError):
    """Timing analysis or resizing failure."""


class SequentialError(ReproError):
    """Errors from s-graph extraction, MFVS, or partitioning."""


class ConfigError(ReproError):
    """Invalid flow configuration (bad value, unknown field, bad JSON)."""


class ServeError(ReproError):
    """Base class for async-serving failures (:mod:`repro.serve`)."""


class QueueFullError(ServeError):
    """The service's bounded job queue rejected a submission
    (backpressure): retry later or raise ``queue_size``."""


class UnknownJobError(ServeError):
    """No job with the given id exists in this service."""


class ServiceClosedError(ServeError):
    """The service is shutting down (or closed) and no longer accepts
    submissions."""


class FleetError(ServeError):
    """Base class for distributed-serving failures (:mod:`repro.fleet`)."""


class ProtocolError(FleetError):
    """Malformed, unknown, or version-mismatched fleet wire message."""


class BatchError(ReproError):
    """Batch-level failure in :func:`repro.core.batch.run_many`
    (per-circuit failures are isolated and do *not* raise this).

    When raised because isolated failures were promoted to an error
    (e.g. a table suite run), ``failures`` carries the failed
    :class:`repro.core.batch.BatchItem` records with full tracebacks.
    """

    def __init__(self, message: str, failures=None):
        self.failures = list(failures) if failures else []
        super().__init__(message)
