"""repro.analysis — AST invariant linter for the codebase contract.

PRs 3–6 each fixed recurring violations of the same concurrency and
determinism invariants by hand; this package machine-checks them.  Run
it as ``repro-domino lint [paths...]`` (exit 0 clean, 1 findings, 2
usage error) or call :func:`lint_paths` directly.  The design mirrors
``repro.optimize``: a :class:`Rule` ABC, a string-keyed
``@register_rule`` registry, and one shared parse per file.

Rules (id — invariant — origin PR — suppress with):

====================== ================================================= ====== =
monotonic-deadline     time.time() never in arithmetic/comparisons;      PR 4   #1
                       deadlines use time.monotonic()/perf_counter()
tmp-sibling            store temp files come from tmp_sibling(), never   PR 2/4 #1
                       raw '.tmp' suffixes or tempfile APIs
seeded-rng             no module-level random.*/np.random.* draws; all   PR 1   #1
                       randomness flows from Random(seed)/default_rng
no-blocking-in-async   async def never calls time.sleep, sync socket     PR 3   #1
                       setup, or un-awaited .result()
no-swallowed-transition no broad `except: pass` around job-state         PR 4   #1
                       transitions in serve/ or fleet/
cpu-affinity           auto-parallelism uses os.sched_getaffinity(0);    PR 4   #1
                       os.cpu_count() only as its except-fallback
protocol-exhaustive    every fleet Message is frozen=True, codec-        PR 6   #1
                       registered, and isinstance-dispatched
key-purity             cache_key()/result_key() reference only real      PR 4/5 #1
                       fields; stage_jobs never shapes a store key
documented-suppression every allow-comment names known rules and has a   PR 7   —
                       reason (reason-less allows suppress nothing)
transitive-blocking-in-async  no blocking primitive reachable from an    PR 8   #1
                       async def through the call graph
lock-order             lock-acquisition graph acyclic; no await under a  PR 8   #1
                       held threading.Lock; no non-reentrant re-entry
pickle-boundary        process-pool arguments never transitively hold    PR 8   #1
                       locks/sockets/loops (custom __reduce__ excepted)
protocol-liveness      every sent fleet message has a peer handler;      PR 8   #1
                       every declared state entered and (unless
                       terminal) exited
nondeterministic-keyed-output  functions feeding store payloads under a  PR 9   #1
                       cache_key/result_key infer deterministic (no
                       wall clock, unseeded RNG, set-order, ambient
                       reads) — full call chain as witness
unordered-iteration-leak  set iteration order never flows into lists,   PR 9   #1
                       NDJSON events, wire frames, or store payloads
                       without an intervening sorted()
resource-exception-safety  locks/executors/sockets/files acquired       PR 9   #1
                       outside `with` are released on every exception
                       path (finally, through helper splits) or escape
====================== ================================================= ====== =

The PR 8 rules and the PR 9 effect rules are *cross-module*: they run
over the whole linted file set at once, on a conservative call graph
(:mod:`repro.analysis.callgraph`) and bottom-up effect summaries
(:mod:`repro.analysis.effects`).  ``lint --explain RULE:PATH:LINE``
prints the inference chain behind any finding.  New cross-module rules
land warn-first via a baseline file — ``lint --write-baseline FILE``
snapshots today's findings, ``lint --baseline FILE`` fails only on new
ones, ``--diff`` hides the accepted ones from the listing
(:mod:`repro.analysis.baseline`).  ``lint --cache`` reuses
content-addressed per-file summaries between runs
(:mod:`repro.analysis.summary_cache`): a fully warm run parses zero
files and returns byte-identical findings; editing any rule source
invalidates the whole cache via the rule-set fingerprint.

#1 — suppress a single true-but-intended site with an inline comment on
(or directly above) the line::

    cutoff = time.time() - age  # repro: allow[monotonic-deadline] compares persisted wall-clock stamps

The reason text after the bracket is mandatory; an allow-comment without
one suppresses nothing and is itself flagged by
``documented-suppression``.
"""

from repro.analysis.base import (
    Finding,
    Project,
    Rule,
    SourceFile,
    all_rules,
    get_rule_class,
    register_rule,
    rule_names,
)
from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    load_baseline,
    split_findings,
    write_baseline,
)
from repro.analysis.callgraph import CallGraph, callgraph
from repro.analysis.effects import EffectEngine, EffectSite, effect_engine
from repro.analysis.engine import (
    LintReport,
    collect_files,
    format_json,
    format_text,
    lint_files,
    lint_paths,
    lint_sources,
    run_lint,
)
from repro.analysis.protocol_model import (
    ProtocolModel,
    check_protocol,
    extract_protocol,
)
from repro.analysis.sarif import format_sarif
from repro.analysis.summary_cache import SummaryCache, ruleset_fingerprint

__all__ = [
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "get_rule_class",
    "register_rule",
    "rule_names",
    "collect_files",
    "format_json",
    "format_text",
    "format_sarif",
    "lint_files",
    "lint_paths",
    "lint_sources",
    "run_lint",
    "LintReport",
    "Baseline",
    "BaselineEntry",
    "load_baseline",
    "split_findings",
    "write_baseline",
    "CallGraph",
    "callgraph",
    "EffectEngine",
    "EffectSite",
    "effect_engine",
    "SummaryCache",
    "ruleset_fingerprint",
    "ProtocolModel",
    "check_protocol",
    "extract_protocol",
]
