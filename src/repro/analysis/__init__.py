"""repro.analysis — AST invariant linter for the codebase contract.

PRs 3–6 each fixed recurring violations of the same concurrency and
determinism invariants by hand; this package machine-checks them.  Run
it as ``repro-domino lint [paths...]`` (exit 0 clean, 1 findings, 2
usage error) or call :func:`lint_paths` directly.  The design mirrors
``repro.optimize``: a :class:`Rule` ABC, a string-keyed
``@register_rule`` registry, and one shared parse per file.

Rules (id — invariant — origin PR — suppress with):

====================== ================================================= ====== =
monotonic-deadline     time.time() never in arithmetic/comparisons;      PR 4   #1
                       deadlines use time.monotonic()/perf_counter()
tmp-sibling            store temp files come from tmp_sibling(), never   PR 2/4 #1
                       raw '.tmp' suffixes or tempfile APIs
seeded-rng             no module-level random.*/np.random.* draws; all   PR 1   #1
                       randomness flows from Random(seed)/default_rng
no-blocking-in-async   async def never calls time.sleep, sync socket     PR 3   #1
                       setup, or un-awaited .result()
no-swallowed-transition no broad `except: pass` around job-state         PR 4   #1
                       transitions in serve/ or fleet/
cpu-affinity           auto-parallelism uses os.sched_getaffinity(0);    PR 4   #1
                       os.cpu_count() only as its except-fallback
protocol-exhaustive    every fleet Message is frozen=True, codec-        PR 6   #1
                       registered, and isinstance-dispatched
key-purity             cache_key()/result_key() reference only real      PR 4/5 #1
                       fields; stage_jobs never shapes a store key
documented-suppression every allow-comment names known rules and has a   PR 7   —
                       reason (reason-less allows suppress nothing)
transitive-blocking-in-async  no blocking primitive reachable from an    PR 8   #1
                       async def through the call graph
lock-order             lock-acquisition graph acyclic; no await under a  PR 8   #1
                       held threading.Lock; no non-reentrant re-entry
pickle-boundary        process-pool arguments never transitively hold    PR 8   #1
                       locks/sockets/loops (custom __reduce__ excepted)
protocol-liveness      every sent fleet message has a peer handler;      PR 8   #1
                       every declared state entered and (unless
                       terminal) exited
====================== ================================================= ====== =

The last four are *cross-module* rules: they run over the whole linted
file set at once, on a conservative call graph
(:mod:`repro.analysis.callgraph`).  New cross-module rules land
warn-first via a baseline file — ``lint --write-baseline FILE``
snapshots today's findings, ``lint --baseline FILE`` fails only on new
ones, ``--diff`` hides the accepted ones from the listing
(:mod:`repro.analysis.baseline`).

#1 — suppress a single true-but-intended site with an inline comment on
(or directly above) the line::

    cutoff = time.time() - age  # repro: allow[monotonic-deadline] compares persisted wall-clock stamps

The reason text after the bracket is mandatory; an allow-comment without
one suppresses nothing and is itself flagged by
``documented-suppression``.
"""

from repro.analysis.base import (
    Finding,
    Project,
    Rule,
    SourceFile,
    all_rules,
    get_rule_class,
    register_rule,
    rule_names,
)
from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    load_baseline,
    split_findings,
    write_baseline,
)
from repro.analysis.callgraph import CallGraph, callgraph
from repro.analysis.engine import (
    collect_files,
    format_json,
    format_text,
    lint_files,
    lint_paths,
    lint_sources,
)
from repro.analysis.protocol_model import (
    ProtocolModel,
    check_protocol,
    extract_protocol,
)

__all__ = [
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "get_rule_class",
    "register_rule",
    "rule_names",
    "collect_files",
    "format_json",
    "format_text",
    "lint_files",
    "lint_paths",
    "lint_sources",
    "Baseline",
    "BaselineEntry",
    "load_baseline",
    "split_findings",
    "write_baseline",
    "CallGraph",
    "callgraph",
    "ProtocolModel",
    "check_protocol",
    "extract_protocol",
]
