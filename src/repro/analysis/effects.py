"""Bottom-up effect/purity inference over the project call graph.

Generation three of ``repro.analysis``: where PR 7's rules matched one
syntax tree and PR 8's followed call edges, this module infers a
*summary* per function — the set of determinism-relevant effects the
function (or anything it can reach) may perform — in the exhaustive
bottom-up spirit of the source paper's verification loop.  The effect
vocabulary is exactly the ways this codebase can break its bit-identical
contract:

``reads-wall-clock``
    ``time.time()`` / ``datetime.now()`` family — the value differs on
    every call, so it must never shape a stored payload.
``draws-unseeded-rng``
    module-level ``random.*`` / ``numpy.random.*`` draws, unseeded
    ``Random()`` / ``default_rng()`` constructors, ``os.urandom``,
    ``uuid.uuid4`` and friends.
``unordered-iteration``
    iterating a ``set``/``frozenset`` into an *ordered* output (a list,
    a joined string, a tuple) without an intervening ``sorted()`` —
    ``PYTHONHASHSEED`` reorders string sets between runs.
``float-reduction-order``
    ``sum()`` over an unordered collection: float addition is not
    associative, so the total depends on iteration order
    (``math.fsum`` is exactly rounded and exempt).
``reads-ambient-state``
    ``os.environ`` / hostname / cwd / platform reads — identical inputs
    on two fleet workers would produce different results.

Local effect sites are a pure function of one file's source (and are
therefore cacheable per file — see
:mod:`repro.analysis.summary_cache`); summaries are the least fixpoint
of ``summary(f) = local(f) ∪ ⋃ summary(callee)`` over *all* call edges,
including executor submissions (off-thread work still computes the
result).  Every inferred effect carries a provenance chain down to the
primitive call site, which is what ``lint --explain`` prints and what
the ``nondeterministic-keyed-output`` witness reports.

Deliberately *not* effects: ``time.monotonic()`` / ``perf_counter()``
(stage timing is measurement metadata, and misuse of the wall clock for
deadlines is ``monotonic-deadline``'s job) and ``os.getpid()`` (process
identity feeds staging-path uniqueness, never payloads).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import (
    Finding,
    Project,
    Rule,
    SourceFile,
    register_rule,
    resolve_name,
)
from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    callgraph,
    module_key,
    walk_in_function,
)
from repro.analysis.rules import _SEEDED_NUMPY, _UNSEEDED_RANDOM

__all__ = [
    "EFFECT_NAMES",
    "DETERMINISM_EFFECTS",
    "EffectSite",
    "EffectEngine",
    "effect_engine",
    "scan_local_effects",
    "KeyedOutputRule",
    "UnorderedIterationLeakRule",
]


WALL_CLOCK = "reads-wall-clock"
UNSEEDED_RNG = "draws-unseeded-rng"
UNORDERED_ITER = "unordered-iteration"
FLOAT_REDUCTION = "float-reduction-order"
AMBIENT_STATE = "reads-ambient-state"

EFFECT_NAMES = (
    WALL_CLOCK,
    UNSEEDED_RNG,
    UNORDERED_ITER,
    FLOAT_REDUCTION,
    AMBIENT_STATE,
)

#: Effects that disqualify a function from feeding keyed store payloads.
DETERMINISM_EFFECTS = frozenset(EFFECT_NAMES)

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

_RNG_EXTRA_CALLS = {
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbelow",
    "secrets.choice",
}

_SEED_REQUIRED_CTORS = {"random.Random", "numpy.random.default_rng"}

_AMBIENT_CALLS = {
    "os.getenv",
    "os.getcwd",
    "os.getcwdb",
    "os.uname",
    "os.getlogin",
    "platform.node",
    "platform.platform",
    "platform.uname",
    "platform.machine",
    "platform.system",
    "platform.release",
    "socket.gethostname",
    "socket.getfqdn",
    "getpass.getuser",
}

_AMBIENT_ATTRS = {"os.environ"}

#: Builtin consumers that erase iteration order before it can leak.
_ORDER_ABSORBING = {"sorted", "min", "max", "len", "any", "all", "set", "frozenset"}

#: Builtin constructors that materialise iteration order.
_ORDER_MATERIALIZING = {"list", "tuple"}

#: set methods whose result is itself a set.
_SET_RETURNING_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}

#: ``for`` bodies count as ordered sinks when they do one of these.
_ORDERED_SINK_METHODS = {"append", "extend", "insert", "write", "appendleft"}


@dataclass(frozen=True)
class EffectSite:
    """One primitive effect occurrence at one source location."""

    effect: str
    path: str
    line: int
    detail: str

    def to_list(self) -> List[object]:
        return [self.effect, self.line, self.detail]

    def describe(self) -> str:
        return f"{self.detail} at {self.path}:{self.line}"


# ---------------------------------------------------------------------------
# local (per-file) effect scan


def scan_local_effects(
    info: FunctionInfo, table: Dict[str, str]
) -> List[EffectSite]:
    """Direct effect sites lexically inside one function body.

    Pure in the file's source text — cross-function propagation happens
    in :class:`EffectEngine`, so these facts are safe to cache per file.
    """
    sites: List[EffectSite] = []
    path = info.source.path

    def add(effect: str, node: ast.AST, detail: str) -> None:
        sites.append(
            EffectSite(effect=effect, path=path, line=node.lineno, detail=detail)
        )

    for node in walk_in_function(info.node):
        if isinstance(node, ast.Call):
            name = resolve_name(node.func, table)
            if name in _WALL_CLOCK_CALLS:
                add(WALL_CLOCK, node, f"{name}()")
            elif name in _RNG_EXTRA_CALLS:
                add(UNSEEDED_RNG, node, f"{name}()")
            elif name in _SEED_REQUIRED_CTORS and not node.args and not node.keywords:
                add(UNSEEDED_RNG, node, f"unseeded {name}()")
            elif name is not None and name.startswith("random."):
                tail = name.split(".", 1)[1]
                if "." not in tail and tail in _UNSEEDED_RANDOM:
                    add(UNSEEDED_RNG, node, f"{name}() on the global RNG")
            elif name is not None and name.startswith("numpy.random."):
                tail = name.split("numpy.random.", 1)[1]
                if "." not in tail and tail not in _SEEDED_NUMPY:
                    add(UNSEEDED_RNG, node, f"{name}() on numpy's global RNG")
            elif name in _AMBIENT_CALLS:
                add(AMBIENT_STATE, node, f"{name}()")
            sites.extend(_order_sites(node, info, table))
        elif isinstance(node, ast.Attribute):
            name = resolve_name(node, table)
            if name in _AMBIENT_ATTRS:
                add(AMBIENT_STATE, node, name)
        elif isinstance(node, ast.For):
            if _is_set_typed(node.iter, info, table) and _loop_has_ordered_sink(node):
                add(
                    UNORDERED_ITER,
                    node,
                    f"for-loop over set {_render(node.iter)} feeds an "
                    "ordered sink",
                )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            sites.extend(_comprehension_sites(node, info, table))
    return sites


def _render(expr: ast.AST) -> str:
    try:
        text = ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"
    return text if len(text) <= 40 else text[:37] + "..."


def _is_set_typed(
    expr: ast.expr,
    info: FunctionInfo,
    table: Dict[str, str],
    depth: int = 0,
) -> bool:
    """Conservative "statically a set" check: literals, ``set()`` /
    ``frozenset()`` constructors, set algebra, set-returning methods,
    ``os.sched_getaffinity``, single-assignment locals bound to any of
    those, and parameters annotated as sets."""
    if depth > 4:
        return False
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return func.id not in table  # shadowed import ⇒ not the builtin
        if resolve_name(func, table) == "os.sched_getaffinity":
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_RETURNING_METHODS
            and _is_set_typed(func.value, info, table, depth + 1)
        ):
            return True
        return False
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_set_typed(expr.left, info, table, depth + 1) or _is_set_typed(
            expr.right, info, table, depth + 1
        )
    if isinstance(expr, ast.Name):
        return _name_is_set(expr.id, info, table, depth)
    return False


def _name_is_set(
    name: str, info: FunctionInfo, table: Dict[str, str], depth: int
) -> bool:
    assigned: List[ast.expr] = []
    writes = 0
    for node in walk_in_function(info.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    writes += 1
                    assigned.append(node.value)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
            if isinstance(node.target, ast.Name) and node.target.id == name:
                writes += 1
                if getattr(node, "value", None) is not None:
                    assigned.append(node.value)
        elif isinstance(node, ast.For):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name) and leaf.id == name:
                    writes += 1
    if writes == 1 and assigned:
        return _is_set_typed(assigned[0], info, table, depth + 1)
    if writes:
        return False  # rebound: could hold anything by use time
    args = getattr(info.node, "args", None)
    if args is not None:
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.arg == name and arg.annotation is not None:
                for leaf in ast.walk(arg.annotation):
                    if isinstance(leaf, ast.Name) and leaf.id in (
                        "set",
                        "Set",
                        "frozenset",
                        "FrozenSet",
                        "AbstractSet",
                    ):
                        return True
    return False


def _order_sites(
    call: ast.Call, info: FunctionInfo, table: Dict[str, str]
) -> Iterator[EffectSite]:
    """Order-leaking *call* forms: ``list(s)``, ``tuple(s)``,
    ``sep.join(s)``, ``sum(s)``."""
    func = call.func
    path = info.source.path
    if (
        isinstance(func, ast.Name)
        and func.id in _ORDER_MATERIALIZING
        and func.id not in table
        and len(call.args) == 1
        and _is_set_typed(call.args[0], info, table)
    ):
        yield EffectSite(
            effect=UNORDERED_ITER,
            path=path,
            line=call.lineno,
            detail=f"{func.id}({_render(call.args[0])}) materialises set order",
        )
    elif (
        isinstance(func, ast.Attribute)
        and func.attr == "join"
        and len(call.args) == 1
        and _arg_iterates_set(call.args[0], info, table)
    ):
        yield EffectSite(
            effect=UNORDERED_ITER,
            path=path,
            line=call.lineno,
            detail=f"str.join over set {_render(call.args[0])}",
        )
    elif (
        isinstance(func, ast.Name)
        and func.id == "sum"
        and func.id not in table
        and call.args
        and _arg_iterates_set(call.args[0], info, table)
    ):
        yield EffectSite(
            effect=FLOAT_REDUCTION,
            path=path,
            line=call.lineno,
            detail=f"sum over unordered {_render(call.args[0])} "
            "(float addition is order-sensitive; sort first or use math.fsum)",
        )


def _arg_iterates_set(
    expr: ast.expr, info: FunctionInfo, table: Dict[str, str]
) -> bool:
    if _is_set_typed(expr, info, table):
        return True
    if isinstance(expr, (ast.GeneratorExp, ast.ListComp)) and expr.generators:
        return _is_set_typed(expr.generators[0].iter, info, table)
    return False


def _comprehension_sites(
    comp: ast.AST, info: FunctionInfo, table: Dict[str, str]
) -> Iterator[EffectSite]:
    generators = getattr(comp, "generators", [])
    if not generators or not _is_set_typed(generators[0].iter, info, table):
        return
    consumer = _consuming_call(comp, table)
    if consumer in _ORDER_ABSORBING:
        return
    if consumer == "sum" or consumer == "math.fsum":
        return  # the Call branch reports sum itself (fsum is exempt)
    if isinstance(comp, ast.GeneratorExp) and consumer is None:
        return  # un-materialised generator: order not yet observable
    if consumer in _ORDER_MATERIALIZING or isinstance(comp, ast.ListComp):
        yield EffectSite(
            effect=UNORDERED_ITER,
            path=info.source.path,
            line=comp.lineno,
            detail=f"comprehension over set {_render(generators[0].iter)} "
            "builds ordered output",
        )


def _consuming_call(node: ast.AST, table: Dict[str, str]) -> Optional[str]:
    """Name of the nearest enclosing call consuming ``node`` as an
    argument, canonicalised; ``None`` when the statement is reached
    first."""
    from repro.analysis.base import ancestors

    current = node
    for anc in ancestors(node):
        if isinstance(anc, ast.Call) and current in anc.args:
            name = resolve_name(anc.func, table)
            if name == "math.fsum":
                return "math.fsum"
            func = anc.func
            if isinstance(func, ast.Name):
                return func.id
            if isinstance(func, ast.Attribute):
                return func.attr
            return None
        if isinstance(anc, ast.stmt):
            return None
        current = anc
    return None


def _loop_has_ordered_sink(loop: ast.For) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _ORDERED_SINK_METHODS
        ):
            return True
    return False


# ---------------------------------------------------------------------------
# bottom-up summaries with provenance


@dataclass(frozen=True)
class _Provenance:
    """Why a function has an effect: a direct site, or a call edge into
    a callee that has it."""

    site: Optional[EffectSite]
    callee: Optional[str]
    line: int


class EffectEngine:
    """Per-function effect summaries over a built call graph.

    ``locals_by_path`` optionally supplies pre-computed (cached) local
    effect sites keyed ``{path: {qualname: [EffectSite, ...]}}``; files
    absent from the mapping are scanned live.
    """

    def __init__(
        self,
        graph: CallGraph,
        locals_by_path: Optional[Dict[str, Dict[str, List[EffectSite]]]] = None,
    ) -> None:
        self.graph = graph
        self.local: Dict[str, List[EffectSite]] = {}
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            supplied = (
                locals_by_path.get(info.source.path)
                if locals_by_path is not None
                else None
            )
            if supplied is not None:
                self.local[qualname] = list(supplied.get(qualname, []))
            else:
                table = graph.table(info.source)
                self.local[qualname] = scan_local_effects(info, table)
        self.summaries: Dict[str, FrozenSet[str]] = {}
        self._provenance: Dict[Tuple[str, str], _Provenance] = {}
        self._infer()

    # -- fixpoint ------------------------------------------------------

    def _infer(self) -> None:
        current: Dict[str, Set[str]] = {
            qualname: {site.effect for site in sites}
            for qualname, sites in self.local.items()
        }
        changed = True
        while changed:
            changed = False
            for qualname in self.graph.functions:
                mine = current.setdefault(qualname, set())
                for edge in self.graph.callees(qualname):
                    extra = current.get(edge.callee)
                    if extra and not extra <= mine:
                        mine |= extra
                        changed = True
        self.summaries = {
            qualname: frozenset(effects) for qualname, effects in current.items()
        }
        # deterministic provenance: prefer the earliest direct site,
        # else the earliest call edge into a callee with the effect
        for qualname in sorted(self.summaries):
            for effect in sorted(self.summaries[qualname]):
                direct = [s for s in self.local.get(qualname, []) if s.effect == effect]
                if direct:
                    best = min(direct, key=lambda s: (s.line, s.detail))
                    self._provenance[(qualname, effect)] = _Provenance(
                        site=best, callee=None, line=best.line
                    )
                    continue
                edges = [
                    edge
                    for edge in self.graph.callees(qualname)
                    if effect in self.summaries.get(edge.callee, frozenset())
                ]
                if edges:
                    best_edge = min(edges, key=lambda e: (e.line, e.callee))
                    self._provenance[(qualname, effect)] = _Provenance(
                        site=None, callee=best_edge.callee, line=best_edge.line
                    )

    # -- queries -------------------------------------------------------

    def summary(self, qualname: str) -> FrozenSet[str]:
        return self.summaries.get(qualname, frozenset())

    def chain(self, qualname: str, effect: str) -> List[str]:
        """Human-readable inference chain from ``qualname`` down to the
        primitive site for ``effect``."""
        steps: List[str] = []
        seen: Set[str] = set()
        current = qualname
        while current not in seen:
            seen.add(current)
            prov = self._provenance.get((current, effect))
            if prov is None:
                break
            info = self.graph.functions.get(current)
            where = f"{info.source.path}:{prov.line}" if info is not None else "?"
            if prov.site is not None:
                steps.append(f"{_short(current)}() -> {prov.site.describe()}")
                return steps
            steps.append(f"{_short(current)}() calls {_short(prov.callee)}() at {where}")
            current = prov.callee
        steps.append(f"{_short(current)}() [cycle reached]")
        return steps


def _short(qualname: Optional[str]) -> str:
    return (qualname or "?").rsplit("::", 1)[-1]


def effect_engine(project: Project) -> EffectEngine:
    """The project's effect engine, built once per lint run and cached
    on the Project (the two effect rules and ``--explain`` share it).

    ``project._effect_locals`` (set by the engine when the summary cache
    has per-file entries) supplies pre-computed local sites.
    """
    cached = getattr(project, "_effect_engine", None)
    if cached is None:
        locals_by_path = getattr(project, "_effect_locals", None)
        cached = EffectEngine(callgraph(project), locals_by_path)
        project._effect_engine = cached  # type: ignore[attr-defined]
    return cached


# ---------------------------------------------------------------------------
# nondeterministic-keyed-output


#: Entry points whose reachable put-sites are checked: the batch worker
#: and the pipeline itself (covers run_flow, run_many, serve, fleet).
_ROOT_FUNCTIONS = {"execute_one"}
_ROOT_METHODS = {("Pipeline", "run")}

_KEY_METHOD_NAMES = ("cache_key", "result_key")

#: Builtins that pass their argument through into the payload.
_PASSTHROUGH_BUILTINS = {"dict", "list", "tuple", "sorted", "reversed"}

_MAX_ORIGIN_DEPTH = 6


@register_rule("nondeterministic-keyed-output")
class KeyedOutputRule(Rule):
    """Whatever lands in the store under a config key must be pure.

    The store contract (PR 2) is that ``cache_key()``/``result_key()``
    *exactly determine* the payload: a warm hit replays bytes.  This
    rule walks every ``*.put(...)`` reachable from ``execute_one()`` /
    ``Pipeline.run()`` whose key derives from those methods, resolves
    which functions computed the payload (through locals, parameters,
    and stage-table indirection), and requires each to infer
    deterministic — reporting the full call chain and the effect's
    provenance chain as the witness.
    """

    invariant = (
        "every function whose result is persisted under a cache_key/"
        "result_key infers deterministic (no wall clock, unseeded RNG, "
        "unordered iteration, float-order or ambient-state effects)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = callgraph(project)
        roots = [
            info
            for qualname, info in sorted(graph.functions.items())
            if self._is_root(info)
        ]
        if not roots:
            return
        engine = effect_engine(project)
        reach = self._reachable(graph, roots)
        reported: Set[Tuple[str, str, str, int]] = set()
        for qualname in sorted(reach):
            info = graph.functions[qualname]
            for call in sorted(
                (
                    node
                    for node in walk_in_function(info.node)
                    if isinstance(node, ast.Call)
                ),
                key=lambda n: n.lineno,
            ):
                if not self._is_keyed_put(call, info, graph):
                    continue
                payload = self._payload_expr(call)
                if payload is None:
                    continue
                origins = _payload_origins(payload, info, graph)
                for origin in sorted(origins, key=lambda o: o.qualname):
                    bad = engine.summary(origin.qualname) & DETERMINISM_EFFECTS
                    for effect in sorted(bad):
                        key = (origin.qualname, effect, info.source.path, call.lineno)
                        if key in reported:
                            continue
                        reported.add(key)
                        route = _route_to(reach, qualname)
                        effect_chain = engine.chain(origin.qualname, effect)
                        chain = tuple(
                            [" -> ".join(_short(q) + "()" for q in route)]
                            + [f"payload origin: {_short(origin.qualname)}()"]
                            + effect_chain
                        )
                        yield Finding(
                            rule=self.name,
                            path=info.source.path,
                            line=call.lineno,
                            message=(
                                f"keyed store payload from "
                                f"{_short(origin.qualname)}() has effect "
                                f"{effect} ({effect_chain[-1]}); results "
                                "persisted under cache_key/result_key must "
                                "be bit-identical across runs"
                            ),
                            severity=self.severity,
                            chain=chain,
                        )

    # -- roots and reachability ----------------------------------------

    @staticmethod
    def _is_root(info: FunctionInfo) -> bool:
        if info.cls is None and info.name in _ROOT_FUNCTIONS:
            return True
        return (info.cls, info.name) in _ROOT_METHODS

    @staticmethod
    def _reachable(
        graph: CallGraph, roots: Sequence[FunctionInfo]
    ) -> Dict[str, Optional[str]]:
        """BFS over all edges; maps reachable qualname -> BFS parent
        (None for roots) so witness routes are reconstructible."""
        parent: Dict[str, Optional[str]] = {}
        frontier = [info.qualname for info in roots]
        for qualname in frontier:
            parent.setdefault(qualname, None)
        while frontier:
            nxt: List[str] = []
            for qualname in frontier:
                for edge in sorted(
                    graph.callees(qualname), key=lambda e: (e.line, e.callee)
                ):
                    if edge.callee in parent or edge.callee not in graph.functions:
                        continue
                    parent[edge.callee] = qualname
                    nxt.append(edge.callee)
            frontier = nxt
        return parent

    # -- keyed put detection -------------------------------------------

    def _is_keyed_put(
        self, call: ast.Call, info: FunctionInfo, graph: CallGraph
    ) -> bool:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "put"):
            return False
        if len(call.args) + len(call.keywords) < 2:
            return False
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if self._mentions_key(arg, info, graph, depth=0):
                return True
        return False

    def _mentions_key(
        self, expr: ast.expr, info: FunctionInfo, graph: CallGraph, depth: int
    ) -> bool:
        if depth > 3:
            return False
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else (func.id if isinstance(func, ast.Name) else "")
            )
            if name in _KEY_METHOD_NAMES or name.endswith("_store_key"):
                return True
            # one hop into a project-local callee: `key = self._cached_stage(...)`
            for target in graph.resolve_call(node, info):
                for inner in walk_in_function(target.node):
                    if isinstance(inner, ast.Call):
                        f = inner.func
                        n = (
                            f.attr
                            if isinstance(f, ast.Attribute)
                            else (f.id if isinstance(f, ast.Name) else "")
                        )
                        if n in _KEY_METHOD_NAMES or n.endswith("_store_key"):
                            return True
        if isinstance(expr, ast.Name):
            for value in _assigned_values(expr.id, info):
                if self._mentions_key(value, info, graph, depth + 1):
                    return True
        return False

    @staticmethod
    def _payload_expr(call: ast.Call) -> Optional[ast.expr]:
        for kw in call.keywords:
            if kw.arg in ("payload", "value", "output"):
                return kw.value
        if call.args:
            return call.args[-1]
        return None


def _assigned_values(name: str, info: FunctionInfo) -> List[ast.expr]:
    """Every value expression assigned to local ``name`` (including
    tuple-unpack assignments, whose whole right side is returned)."""
    values: List[ast.expr] = []
    for node in walk_in_function(info.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name) and leaf.id == name:
                        values.append(node.value)
                        break
        elif isinstance(node, (ast.AnnAssign, ast.NamedExpr)):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == name
                and node.value is not None
            ):
                values.append(node.value)
    return values


def _is_param(name: str, info: FunctionInfo) -> bool:
    args = getattr(info.node, "args", None)
    if args is None:
        return False
    return any(
        arg.arg == name
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    )


def _payload_origins(
    expr: ast.expr,
    info: FunctionInfo,
    graph: CallGraph,
    depth: int = 0,
    visited: Optional[Set[Tuple[str, str]]] = None,
) -> List[FunctionInfo]:
    """Project functions whose return value can flow into ``expr``.

    Follows local assignments, container literals, pass-through builtins
    (``dict(output)``), stage-table indirection (``fn, _ = TABLE[name]``
    over a module-level dict of function references), and — for
    parameters — one interprocedural hop to every resolved caller's
    argument expression."""
    if visited is None:
        visited = set()
    if depth > _MAX_ORIGIN_DEPTH:
        return []
    origins: List[FunctionInfo] = []
    if isinstance(expr, ast.Call):
        func = expr.func
        name = func.id if isinstance(func, ast.Name) else None
        table = graph.table(info.source)
        if name in _PASSTHROUGH_BUILTINS and name not in table:
            for arg in expr.args:
                origins.extend(_payload_origins(arg, info, graph, depth + 1, visited))
            return origins
        resolved = graph.resolve_call(expr, info)
        if resolved:
            return resolved
        if isinstance(func, ast.Name):
            origins.extend(_table_targets(func.id, info, graph))
            if origins:
                return origins
        # indirect call (`overrides.get(name, fn)(ctx)`): any function
        # reference feeding the callee expression is a possible target
        for leaf in ast.walk(func):
            if isinstance(leaf, ast.Name):
                ref = graph.resolve_callable_ref(leaf, info)
                if ref is not None:
                    origins.append(ref)
                else:
                    origins.extend(_table_targets(leaf.id, info, graph))
        return origins
    if isinstance(expr, (ast.Dict,)):
        for value in expr.values:
            if value is not None:
                origins.extend(_payload_origins(value, info, graph, depth + 1, visited))
        return origins
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        for value in expr.elts:
            origins.extend(_payload_origins(value, info, graph, depth + 1, visited))
        return origins
    if isinstance(expr, ast.Name):
        key = (info.qualname, expr.id)
        if key in visited:
            return origins
        visited.add(key)
        for value in _assigned_values(expr.id, info):
            origins.extend(_payload_origins(value, info, graph, depth + 1, visited))
        if not origins and _is_param(expr.id, info):
            origins.extend(
                _caller_argument_origins(expr.id, info, graph, depth, visited)
            )
        return origins
    if isinstance(expr, ast.Attribute) and not (
        isinstance(expr.value, ast.Name) and expr.value.id == "self"
    ):
        # `output.assignment` — the origin is whatever produced `output`
        return _payload_origins(expr.value, info, graph, depth + 1, visited)
    return origins


def _table_targets(
    name: str, info: FunctionInfo, graph: CallGraph
) -> List[FunctionInfo]:
    """Resolve ``fn`` bound by ``fn, slot = _TABLE[stage]`` where
    ``_TABLE`` is a module-level dict: every function reference in the
    dict's values is a possible target (the pipeline's stage table)."""
    table_names: Set[str] = set()
    for node in walk_in_function(info.node):
        if not isinstance(node, ast.Assign):
            continue
        holds_name = any(
            isinstance(leaf, ast.Name) and leaf.id == name
            for target in node.targets
            for leaf in ast.walk(target)
        )
        if not holds_name:
            continue
        value = node.value
        if isinstance(value, ast.Subscript) and isinstance(value.value, ast.Name):
            table_names.add(value.value.id)
    if not table_names:
        return []
    targets: List[FunctionInfo] = []
    module = module_key(info.source.path)
    tree = info.source.tree
    for stmt in tree.body:  # type: ignore[union-attr]
        if isinstance(stmt, ast.Assign):
            stmt_targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):  # TABLE: Dict[...] = {...}
            stmt_targets = [stmt.target]
        else:
            continue
        if not isinstance(stmt.value, ast.Dict):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id in table_names for t in stmt_targets
        ):
            continue
        for value in stmt.value.values:
            for leaf in ast.walk(value):
                if isinstance(leaf, ast.Name):
                    hit = graph.lookup_dotted(f"{module}.{leaf.id}")
                    if hit is not None:
                        targets.append(hit)
    return targets


def _caller_argument_origins(
    param: str,
    info: FunctionInfo,
    graph: CallGraph,
    depth: int,
    visited: Set[Tuple[str, str]],
) -> List[FunctionInfo]:
    """One interprocedural hop: find resolved call sites of ``info`` and
    trace the argument expression bound to ``param`` in each caller."""
    args = info.node.args  # type: ignore[union-attr]
    params = [a.arg for a in args.posonlyargs + args.args]
    origins: List[FunctionInfo] = []
    for edge in graph.callers(info.qualname):
        caller = graph.functions.get(edge.caller)
        if caller is None:
            continue
        for node in walk_in_function(caller.node):
            if not isinstance(node, ast.Call):
                continue
            if info not in graph.resolve_call(node, caller):
                continue
            bound = _bind_argument(node, params, param, caller)
            if bound is not None:
                origins.extend(
                    _payload_origins(bound, caller, graph, depth + 1, visited)
                )
    return origins


def _bind_argument(
    call: ast.Call, params: List[str], wanted: str, caller: FunctionInfo
) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == wanted:
            return kw.value
    effective = params[1:] if params and params[0] in ("self", "cls") else params
    # attribute calls (`self._store_put(...)`) pass the receiver implicitly
    if not isinstance(call.func, ast.Attribute):
        effective = params
    try:
        index = effective.index(wanted)
    except ValueError:
        return None
    if index < len(call.args):
        arg = call.args[index]
        return None if isinstance(arg, ast.Starred) else arg
    return None


def _route_to(parents: Dict[str, Optional[str]], qualname: str) -> List[str]:
    route = [qualname]
    seen = {qualname}
    current = parents.get(qualname)
    while current is not None and current not in seen:
        route.append(current)
        seen.add(current)
        current = parents.get(current)
    return list(reversed(route))


# ---------------------------------------------------------------------------
# unordered-iteration-leak


@register_rule("unordered-iteration-leak")
class UnorderedIterationLeakRule(Rule):
    """No set-iteration order reaches rows, events, frames, or payloads.

    Store payloads, NDJSON event streams, and fleet wire frames are all
    compared byte-for-byte across workers and runs; a ``list`` (or
    joined string, or yielded sequence) built by iterating a ``set``
    inside ``store/``, ``serve/``, or ``fleet/`` reorders under
    ``PYTHONHASHSEED`` and breaks that parity.  An intervening
    ``sorted()`` fixes the order; order-insensitive reductions
    (``len``/``min``/``max``/``any``/``all``) never leak it.
    ``sum()`` over a set is additionally flagged as float-order
    sensitive (``float-reduction-order``).
    """

    invariant = (
        "set/dict iteration order never flows into lists, NDJSON "
        "events, wire frames, or store payloads in store//serve//fleet/ "
        "without an intervening sorted()"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if not source.in_dir("store", "serve", "fleet"):
            return
        graph = callgraph(project)
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            info = graph.function_for(node)
            if info is None:
                continue
            table = graph.table(source)
            for site in scan_local_effects(info, table):
                if site.effect not in (UNORDERED_ITER, FLOAT_REDUCTION):
                    continue
                yield Finding(
                    rule=self.name,
                    path=source.path,
                    line=site.line,
                    message=(
                        f"{site.detail} in {info.name}(); ordered outputs "
                        "(rows, events, frames, payloads) must not depend "
                        "on set iteration order — wrap the iterable in "
                        "sorted()"
                    ),
                    severity=self.severity,
                    chain=(site.describe(),),
                )
