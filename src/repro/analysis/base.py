"""Core data model for the invariant linter: findings, rules, registry.

The shapes here deliberately mirror ``repro.optimize.base``: a small ABC
with a ``name`` class attribute, a string-keyed registry populated by a
decorator, and ``ConfigError`` on duplicate or unknown names.  A rule is
cheap, stateless, and synchronous; the engine (``repro.analysis.engine``)
parses every file exactly once and hands each rule the shared syntax
trees, so adding a rule never adds a parse pass.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from abc import ABC
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Dict, Iterator, List, Optional, Tuple, Type

from repro.errors import ConfigError

__all__ = [
    "Finding",
    "Suppression",
    "SourceFile",
    "Project",
    "Rule",
    "register_rule",
    "rule_names",
    "get_rule_class",
    "all_rules",
]


# ---------------------------------------------------------------------------
# Findings


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``chain`` carries the inference steps behind a cross-module finding
    (call route, payload origin, effect provenance) — empty for plain
    syntactic findings.  It is what ``lint --explain`` prints.
    """

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"
    chain: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
        }
        if self.chain:
            data["chain"] = list(self.chain)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            message=str(data["message"]),
            severity=str(data.get("severity", "error")),
            chain=tuple(str(step) for step in data.get("chain", ())),  # type: ignore[union-attr]
        )

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)


# ---------------------------------------------------------------------------
# Suppression comments
#
# ``# repro: allow[rule-id] <reason>`` on (or immediately above) the
# offending line silences that rule there.  The reason text is mandatory:
# an allow-comment without one does not suppress anything, which is what
# keeps "zero undocumented suppressions" a property the linter itself
# enforces rather than a review habit.

_ALLOW_RE = re.compile(r"#+\s*repro:\s*allow\[([^\]]*)\]\s*(.*)$")


@dataclass(frozen=True)
class Suppression:
    line: int
    rules: Tuple[str, ...]
    reason: str

    @property
    def documented(self) -> bool:
        return bool(self.reason.strip(" -—"))

    def covers(self, rule: str) -> bool:
        return self.documented and rule in self.rules


def parse_suppressions(text: str) -> Dict[int, Suppression]:
    """Map 1-based line numbers to allow-comments found on them.

    Only genuine comment tokens count (via :mod:`tokenize`), anchored at
    the start of the comment — the pattern appearing inside a string
    literal or quoted mid-comment is not a suppression.
    """
    found: Dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.match(tok.string)
            if match is None:
                continue
            lineno = tok.start[0]
            rules = tuple(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            found[lineno] = Suppression(
                line=lineno, rules=rules, reason=match.group(2).strip()
            )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable files already surface as syntax-error findings
    return found


# ---------------------------------------------------------------------------
# Parsed sources


@dataclass
class SourceFile:
    """One parsed module plus everything rules commonly need from it."""

    path: str
    text: str
    lines: List[str]
    tree: Optional[ast.AST]
    error: Optional[str] = None
    suppressions: Dict[int, Suppression] = field(default_factory=dict)
    parts: Tuple[str, ...] = ()

    @classmethod
    def parse(cls, path: str, text: Optional[str] = None) -> "SourceFile":
        if text is None:
            text = Path(path).read_text(encoding="utf-8")
        lines = text.splitlines()
        tree: Optional[ast.AST] = None
        error: Optional[str] = None
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as exc:  # surfaced as a finding by the engine
            error = f"syntax error: {exc.msg} (line {exc.lineno})"
        if tree is not None:
            _link_parents(tree)
        return cls(
            path=path,
            text=text,
            lines=lines,
            tree=tree,
            error=error,
            suppressions=parse_suppressions(text),
            parts=tuple(part.lower() for part in Path(path).parts),
        )

    def in_dir(self, *names: str) -> bool:
        """True when any path segment matches one of ``names``."""
        return any(name in self.parts for name in names)

    def suppressed(self, finding: Finding) -> bool:
        for lineno in (finding.line, finding.line - 1):
            sup = self.suppressions.get(lineno)
            if sup is not None and sup.covers(finding.rule):
                return True
        return False


def _link_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_repro_parent", None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    current = parent(node)
    while current is not None:
        yield current
        current = parent(current)


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    for anc in ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return None


@dataclass
class Project:
    """The full linted file set; cross-module rules see all of it."""

    files: List[SourceFile]

    def parsed(self) -> List[SourceFile]:
        return [f for f in self.files if f.tree is not None]


# ---------------------------------------------------------------------------
# Import resolution
#
# Rules match *canonical* dotted names ("time.time", "numpy.random.rand")
# so aliased imports (``import random as _random``, ``import numpy as
# np``, ``from time import time``) cannot dodge a check.


def import_table(tree: ast.AST) -> Dict[str, str]:
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    table[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue  # relative imports stay project-local
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def resolve_name(node: ast.AST, table: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name for a Name/Attribute chain, if importable."""
    if isinstance(node, ast.Name):
        return table.get(node.id)
    if isinstance(node, ast.Attribute):
        base = resolve_name(node.value, table)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


# ---------------------------------------------------------------------------
# Rules and their registry


class Rule(ABC):
    """One machine-checked invariant.

    Subclasses set ``name``/``invariant`` and override ``check_file``
    (called once per parsed module) and/or ``check_project`` (called once
    with the whole file set, for cross-module contracts).
    """

    name: ClassVar[str] = ""
    invariant: ClassVar[str] = ""
    severity: ClassVar[str] = "error"

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())

    def finding(self, source: SourceFile, line: int, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=source.path,
            line=line,
            message=message,
            severity=self.severity,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(name: str):
    """Class decorator registering a :class:`Rule` under ``name``."""

    def decorator(cls: Type[Rule]) -> Type[Rule]:
        if not name:
            raise ConfigError("rule name must be a non-empty string")
        if name in _REGISTRY:
            raise ConfigError(f"rule {name!r} is already registered")
        if not issubclass(cls, Rule):
            raise ConfigError(f"rule {name!r} must subclass Rule")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def rule_names() -> List[str]:
    return sorted(_REGISTRY)


def get_rule_class(name: str) -> Type[Rule]:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(rule_names()) or "<none>"
        raise ConfigError(f"unknown rule {name!r}; known rules: {known}") from None


def all_rules() -> List[Rule]:
    return [_REGISTRY[name]() for name in rule_names()]
