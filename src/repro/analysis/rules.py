"""The project rule set: invariants distilled from PR 3–6 review fixes.

Each rule here encodes a contract the codebase already follows and that
earlier PRs had to fix by hand at least once.  See the module docstring
of :mod:`repro.analysis` for the one-row-per-rule summary table.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import (
    Finding,
    Project,
    Rule,
    SourceFile,
    ancestors,
    enclosing_function,
    import_table,
    register_rule,
    resolve_name,
)

__all__ = [
    "MonotonicDeadlineRule",
    "TmpSiblingRule",
    "SeededRngRule",
    "NoBlockingInAsyncRule",
    "NoSwallowedTransitionRule",
    "CpuAffinityRule",
    "ProtocolExhaustiveRule",
    "KeyPurityRule",
    "DocumentedSuppressionRule",
]


def _calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def _walk_function(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs (their
    scopes have their own bindings)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------


@register_rule("monotonic-deadline")
class MonotonicDeadlineRule(Rule):
    """Deadline and interval math must not use the wall clock.

    ``time.time()`` jumps with NTP slews and suspend/resume, so any
    arithmetic or comparison on it is a latent deadline bug — PR 4's
    timeout watchdog had to migrate to ``time.monotonic()`` for exactly
    this reason.  Plain reads (``submitted_at=time.time()``) are display
    timestamps and stay legal.
    """

    invariant = (
        "time.time() never appears in arithmetic/comparisons (including "
        "via single-assignment aliases); deadlines use "
        "time.monotonic()/perf_counter()"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        table = import_table(source.tree)
        for call in _calls(source.tree):
            if resolve_name(call.func, table) != "time.time":
                continue
            for anc in ancestors(call):
                if isinstance(anc, (ast.BinOp, ast.Compare, ast.AugAssign)):
                    yield self.finding(
                        source,
                        call.lineno,
                        "time.time() used in arithmetic/comparison — wall "
                        "clock is for display timestamps only; deadlines "
                        "and intervals use time.monotonic() or "
                        "time.perf_counter()",
                    )
                    break
                if isinstance(anc, ast.stmt):
                    break
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_aliases(source, table, node)

    def _check_aliases(
        self, source: SourceFile, table: Dict[str, str], func: ast.AST
    ) -> Iterator[Finding]:
        """``t = time.time()`` later used in arithmetic/comparison.

        Only single-assignment locals count: a name rebound anywhere in
        the function may legitimately hold a monotonic value by the time
        it is used, so it is left to the direct check above."""
        counts: Dict[str, int] = {}
        aliases: Dict[str, int] = {}
        for node in _walk_function(func):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
                targets = [node.target]
            elif isinstance(node, ast.For):
                targets = [node.target]
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        counts[leaf.id] = counts.get(leaf.id, 0) + 1
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and resolve_name(node.value.func, table) == "time.time"
            ):
                aliases[node.targets[0].id] = node.lineno
        singles = {
            name: line for name, line in aliases.items() if counts.get(name) == 1
        }
        if not singles:
            return
        for node in _walk_function(func):
            if not (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in singles
            ):
                continue
            for anc in ancestors(node):
                if isinstance(anc, (ast.BinOp, ast.Compare, ast.AugAssign)):
                    yield self.finding(
                        source,
                        node.lineno,
                        f"{node.id} aliases time.time() (line "
                        f"{singles[node.id]}) and is used in arithmetic/"
                        "comparison — use time.monotonic() or "
                        "time.perf_counter() for deadlines and intervals",
                    )
                    break
                if isinstance(anc, ast.stmt):
                    break


# ---------------------------------------------------------------------------


_TEMPFILE_APIS = {
    "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryFile",
    "tempfile.SpooledTemporaryFile",
    "tempfile.mkstemp",
    "tempfile.mktemp",
}

_GLOB_METHODS = {"glob", "rglob", "iglob", "match", "fnmatch", "filter"}


@register_rule("tmp-sibling")
class TmpSiblingRule(Rule):
    """Store temp files must come from ``tmp_sibling()``.

    ``ArtifactStore.put`` is crash-safe because every writer stages into
    a sibling path unique per (pid, thread, counter) and ``os.replace``s
    it into place; a raw ``".tmp"`` suffix or ``tempfile`` API in
    ``repro/store/`` silently reintroduces the cross-thread clobbering
    PR 4 fixed.  Glob patterns that *read* temp names (gc sweeps) are
    fine.
    """

    invariant = (
        "temp files under repro/store/ are created via tmp_sibling(), "
        "never raw '.tmp' suffixes or tempfile APIs"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if not source.in_dir("store"):
            return
        table = import_table(source.tree)
        for call in _calls(source.tree):
            name = resolve_name(call.func, table)
            if name in _TEMPFILE_APIS:
                yield self.finding(
                    source,
                    call.lineno,
                    f"{name}() in the store bypasses tmp_sibling(); "
                    "stage writes via tmp_sibling(path) + os.replace",
                )
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
                continue
            if ".tmp" not in node.value:
                continue
            func = enclosing_function(node)
            if func is not None and func.name == "tmp_sibling":
                continue  # the one blessed constructor of temp names
            if self._is_glob_argument(node):
                continue
            yield self.finding(
                source,
                node.lineno,
                "raw '.tmp' path suffix in the store; build temp paths "
                "with tmp_sibling(path) so concurrent writers cannot "
                "clobber each other",
            )

    @staticmethod
    def _is_glob_argument(node: ast.Constant) -> bool:
        for anc in ancestors(node):
            if isinstance(anc, ast.Call):
                func = anc.func
                attr = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else ""
                )
                if attr in _GLOB_METHODS:
                    return True
            if isinstance(anc, ast.stmt):
                break
        return False


# ---------------------------------------------------------------------------


_UNSEEDED_RANDOM = {
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate", "weibullvariate",
    "seed",
}

_SEEDED_NUMPY = {"default_rng", "Generator", "SeedSequence", "RandomState"}


@register_rule("seeded-rng")
class SeededRngRule(Rule):
    """All randomness flows from an explicitly seeded generator.

    Reproducibility is the whole point of the harness: ``run_many``
    derives per-item seeds and every sampler takes ``Random(seed)`` /
    ``default_rng(seed)``.  A module-level ``random.random()`` or
    ``np.random.rand()`` draws from hidden global state and breaks
    bit-identical reruns.
    """

    invariant = (
        "no module-level random.*/np.random.* draws and no unseeded "
        "Random()/default_rng() constructors; randomness comes from "
        "random.Random(seed) or numpy default_rng(seed) instances"
    )

    _SEED_REQUIRED_CTORS = ("random.Random", "numpy.random.default_rng")

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        table = import_table(source.tree)
        for call in _calls(source.tree):
            name = resolve_name(call.func, table)
            if name is None:
                continue
            if (
                name in self._SEED_REQUIRED_CTORS
                and not call.args
                and not call.keywords
            ):
                yield self.finding(
                    source,
                    call.lineno,
                    f"{name}() constructed without a seed draws entropy "
                    "from the OS; pass an explicit seed so reruns are "
                    "bit-identical",
                )
                continue
            if name.startswith("random."):
                tail = name.split(".", 1)[1]
                if "." not in tail and tail in _UNSEEDED_RANDOM:
                    yield self.finding(
                        source,
                        call.lineno,
                        f"{name}() draws from the global RNG; construct "
                        "random.Random(seed) and call methods on it",
                    )
            elif name.startswith("numpy.random."):
                tail = name.split("numpy.random.", 1)[1]
                if "." not in tail and tail not in _SEEDED_NUMPY:
                    yield self.finding(
                        source,
                        call.lineno,
                        f"np.random.{tail}() uses numpy's global RNG; use "
                        "a numpy.random.default_rng(seed) generator",
                    )


# ---------------------------------------------------------------------------


_BLOCKING_CALLS = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "socket.create_connection": "use `asyncio.open_connection(...)`",
    "socket.getaddrinfo": "use `loop.getaddrinfo(...)`",
    "socket.gethostbyname": "use `loop.getaddrinfo(...)`",
}


@register_rule("no-blocking-in-async")
class NoBlockingInAsyncRule(Rule):
    """No synchronous blocking calls on the event loop.

    One blocked coroutine stalls every job the service owns: heartbeats
    miss, leases expire, clients time out.  ``time.sleep``, synchronous
    socket setup, and un-awaited ``Future.result()`` inside ``async
    def`` all park the loop.  Off-loop work belongs in
    ``loop.run_in_executor`` (nested ``def``/``lambda`` bodies are
    exempt for that reason).
    """

    invariant = (
        "async def bodies never call time.sleep, sync socket setup, or "
        "un-awaited .result(); blocking work goes through run_in_executor"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        table = import_table(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(source, table, node)

    def _check_async_body(
        self, source: SourceFile, table: Dict[str, str], func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in self._walk_skipping_nested(func):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_name(node.func, table)
            if name in _BLOCKING_CALLS:
                yield self.finding(
                    source,
                    node.lineno,
                    f"{name}() blocks the event loop inside async def "
                    f"{func.name}(); {_BLOCKING_CALLS[name]}",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "result"
                and not isinstance(node._repro_parent, ast.Await)  # type: ignore[attr-defined]
            ):
                yield self.finding(
                    source,
                    node.lineno,
                    f".result() inside async def {func.name}() can block "
                    "the event loop; await the future (or the coroutine) "
                    "instead",
                )

    @staticmethod
    def _walk_skipping_nested(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        stack: List[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # runs off-loop (executor targets, callbacks)
            yield node
            stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------


_TRANSITION_MARKERS = {
    "state", "_finish", "_resolve", "_finish_cancelled", "transition",
    "requeue", "_requeue_inflight", "set_result", "set_exception", "cancel",
}


@register_rule("no-swallowed-transition")
class NoSwallowedTransitionRule(Rule):
    """Job-state transitions never disappear into ``except: pass``.

    The serve/fleet state machines are one-way (PR 4): a swallowed
    exception around a transition strands the job in its old state
    forever — no event, no requeue, no terminal row.  Broad handlers
    around pure connection teardown are fine; around transition code
    they are not.
    """

    invariant = (
        "no bare/Exception `except: pass` around job-state transitions "
        "in serve/ or fleet/"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if not source.in_dir("serve", "fleet"):
            return
        table = import_table(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Try):
                continue
            touches = self._touches_transition(node.body)
            if not touches:
                continue
            for handler in node.handlers:
                if not self._broad(handler, table):
                    continue
                if all(isinstance(stmt, ast.Pass) for stmt in handler.body):
                    yield self.finding(
                        source,
                        handler.lineno,
                        "broad except swallows a job-state transition "
                        f"(try block touches {touches!r}); catch specific "
                        "exceptions or record the failure before moving on",
                    )

    @staticmethod
    def _touches_transition(body: List[ast.stmt]) -> Optional[str]:
        for stmt in body:
            for node in ast.walk(stmt):
                name = None
                if isinstance(node, ast.Attribute):
                    name = node.attr
                elif isinstance(node, ast.Name):
                    name = node.id
                if name in _TRANSITION_MARKERS:
                    return name
        return None

    @staticmethod
    def _broad(handler: ast.ExceptHandler, table: Dict[str, str]) -> bool:
        if handler.type is None:
            return True
        types = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for node in types:
            if isinstance(node, ast.Name) and node.id in (
                "Exception",
                "BaseException",
            ):
                return True
            if resolve_name(node, table) in (
                "builtins.Exception",
                "builtins.BaseException",
            ):
                return True
        return False


# ---------------------------------------------------------------------------


@register_rule("cpu-affinity")
class CpuAffinityRule(Rule):
    """Auto-parallelism sizes itself by scheduling affinity, not cores.

    In cgroup-limited containers (CI, the fleet) ``os.cpu_count()``
    reports the host, so a worker pool sized by it oversubscribes the
    actual quota.  ``os.sched_getaffinity(0)`` reports what the process
    may run on; ``cpu_count()`` is acceptable only as the fallback in a
    function that tries affinity first.
    """

    invariant = (
        "worker-count resolution uses os.sched_getaffinity(0); "
        "os.cpu_count() only as its except-fallback"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        table = import_table(source.tree)
        for call in _calls(source.tree):
            name = resolve_name(call.func, table)
            if name not in ("os.cpu_count", "multiprocessing.cpu_count"):
                continue
            func = enclosing_function(call)
            scope: ast.AST = func if func is not None else source.tree
            if self._mentions_affinity(scope, table):
                continue
            yield self.finding(
                source,
                call.lineno,
                f"{name}() ignores the scheduling affinity mask; size "
                "parallelism with os.sched_getaffinity(0) (cpu_count only "
                "as its except-fallback)",
            )

    @staticmethod
    def _mentions_affinity(scope: ast.AST, table: Dict[str, str]) -> bool:
        for node in ast.walk(scope):
            if isinstance(node, ast.Attribute) and node.attr == "sched_getaffinity":
                return True
            if isinstance(node, ast.Name) and (
                node.id == "sched_getaffinity"
                or table.get(node.id, "").endswith("sched_getaffinity")
            ):
                return True
        return False


# ---------------------------------------------------------------------------


@register_rule("protocol-exhaustive")
class ProtocolExhaustiveRule(Rule):
    """Every wire message is frozen, registered, and dispatched.

    The fleet protocol (PR 6) relies on three properties per message
    class: ``frozen=True`` (hashable, no post-decode mutation), a
    registering decorator feeding the codec table, and an
    ``isinstance`` dispatch branch in the coordinator or worker.  A
    message missing any of the three decodes fine and then drops on the
    floor at runtime.
    """

    invariant = (
        "every Message dataclass is frozen=True, codec-registered, and "
        "has an isinstance dispatch branch in coordinator/worker"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        messages: List[Tuple[SourceFile, ast.ClassDef]] = []
        for source in project.parsed():
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef) and self._is_message(node):
                    messages.append((source, node))
        if not messages:
            return

        seen_types: Dict[str, str] = {}
        for source, cls in messages:
            wire_type = self._wire_type(cls)
            if wire_type in seen_types:
                yield self.finding(
                    source,
                    cls.lineno,
                    f"message {cls.name} reuses wire TYPE {wire_type!r} "
                    f"already taken by {seen_types[wire_type]}",
                )
            else:
                seen_types[wire_type] = cls.name
            if not self._is_frozen_dataclass(cls):
                yield self.finding(
                    source,
                    cls.lineno,
                    f"message {cls.name} must be @dataclass(frozen=True); "
                    "decoded messages are shared across tasks and must be "
                    "immutable",
                )
            if not self._is_registered(cls):
                yield self.finding(
                    source,
                    cls.lineno,
                    f"message {cls.name} is not registered in the codec "
                    "table; add the registration decorator so "
                    "decode_message can construct it",
                )

        dispatched = self._dispatched_names(project)
        if not dispatched & {cls.name for _, cls in messages}:
            return  # no dispatcher in the linted set (e.g. protocol alone)
        for source, cls in messages:
            if cls.name not in dispatched:
                yield self.finding(
                    source,
                    cls.lineno,
                    f"message {cls.name} has no isinstance dispatch branch "
                    "in any linted handler; a peer sending it would be "
                    "silently ignored",
                )

    @staticmethod
    def _is_message(cls: ast.ClassDef) -> bool:
        if not any(isinstance(b, ast.Name) and b.id == "Message" for b in cls.bases):
            return False
        wire = ProtocolExhaustiveRule._wire_type(cls)
        return bool(wire)

    @staticmethod
    def _wire_type(cls: ast.ClassDef) -> str:
        for stmt in cls.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "TYPE":
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, str
                    ):
                        return value.value
        return ""

    @staticmethod
    def _is_frozen_dataclass(cls: ast.ClassDef) -> bool:
        for deco in cls.decorator_list:
            if not isinstance(deco, ast.Call):
                continue
            func = deco.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name != "dataclass":
                continue
            for kw in deco.keywords:
                if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                    return kw.value.value is True
        return False

    @staticmethod
    def _is_registered(cls: ast.ClassDef) -> bool:
        for deco in cls.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = target.attr if isinstance(target, ast.Attribute) else (
                target.id if isinstance(target, ast.Name) else ""
            )
            if name and name != "dataclass":
                return True
        return False

    @staticmethod
    def _dispatched_names(project: Project) -> Set[str]:
        names: Set[str] = set()
        for source in project.parsed():
            for call in _calls(source.tree):
                if not (
                    isinstance(call.func, ast.Name)
                    and call.func.id == "isinstance"
                    and len(call.args) == 2
                ):
                    continue
                spec = call.args[1]
                refs = list(spec.elts) if isinstance(spec, ast.Tuple) else [spec]
                for ref in refs:
                    if isinstance(ref, ast.Name):
                        names.add(ref.id)
                    elif isinstance(ref, ast.Attribute):
                        names.add(ref.attr)
        return names


# ---------------------------------------------------------------------------


_PARALLELISM_ONLY_FIELDS = {"stage_jobs"}


@register_rule("key-purity")
class KeyPurityRule(Rule):
    """Store keys hash real config fields and nothing parallelism-only.

    ``cache_key``/``result_key`` decide artifact identity: a key that
    reads a field that does not exist raises at lookup time, and one
    that includes a parallelism-only knob (``stage_jobs``) splits the
    cache by worker count even though results are bit-identical (the
    PR 4/PR 5 contract).  The check follows ``self.method()`` calls
    transitively from both key methods.
    """

    invariant = (
        "cache_key()/result_key() reference only real FlowConfig fields "
        "and never parallelism-only knobs (stage_jobs)"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods: Dict[str, ast.AST] = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "cache_key" not in methods or "result_key" not in methods:
            return
        fields = {
            stmt.target.id
            for stmt in cls.body
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
        }
        known = fields | set(methods)

        closure: Set[str] = set()
        pending = ["cache_key", "result_key"]
        while pending:
            name = pending.pop()
            if name in closure or name not in methods:
                continue
            closure.add(name)
            for node in ast.walk(methods[name]):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                ):
                    pending.append(node.func.attr)

        for name in sorted(closure):
            for node in ast.walk(methods[name]):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    continue
                attr = node.attr
                if attr in _PARALLELISM_ONLY_FIELDS:
                    yield self.finding(
                        source,
                        node.lineno,
                        f"{cls.name}.{name}() reads parallelism-only knob "
                        f"{attr!r}; store keys must not depend on worker "
                        "counts (results are bit-identical across them)",
                    )
                elif attr not in known:
                    yield self.finding(
                        source,
                        node.lineno,
                        f"{cls.name}.{name}() references self.{attr}, which "
                        f"is not a field or method of {cls.name}; the key "
                        "would raise AttributeError at lookup time",
                    )


# ---------------------------------------------------------------------------


@register_rule("documented-suppression")
class DocumentedSuppressionRule(Rule):
    """Every ``# repro: allow[...]`` carries a reason and real rule ids.

    A reason-less allow-comment does not suppress anything (the engine
    ignores it), so this rule is what turns a silent no-op into a
    visible finding; it also catches ids that rotted after a rule
    rename.
    """

    invariant = (
        "# repro: allow[rule] comments name known rules and include a "
        "reason (reason-less allows suppress nothing)"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        from repro.analysis.base import rule_names

        known = set(rule_names())
        for sup in source.suppressions.values():
            if not sup.rules:
                yield self.finding(
                    source,
                    sup.line,
                    "allow-comment names no rules; write "
                    "`# repro: allow[rule-id] <reason>`",
                )
                continue
            for rule in sup.rules:
                if rule not in known:
                    yield self.finding(
                        source,
                        sup.line,
                        f"allow-comment names unknown rule {rule!r}; known "
                        "rules: " + ", ".join(sorted(known)),
                    )
            if not sup.documented:
                yield self.finding(
                    source,
                    sup.line,
                    "allow-comment has no reason, so it suppresses "
                    "nothing; append the why after the bracket",
                )
