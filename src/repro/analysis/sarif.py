"""SARIF 2.1.0 output for the invariant linter.

One ``run`` with ``repro-analysis`` as the tool driver, every
registered rule in ``tool.driver.rules`` (so GitHub code scanning can
show the invariant text as help), and one ``result`` per finding.
Baselined findings are included with an *accepted* ``suppression``
rather than dropped — the annotation surface shows them greyed out
instead of pretending they don't exist.  A finding's inference chain
travels in ``result.properties.chain``.

Output is deterministic: keys are emitted sorted, rules and results
arrive pre-sorted, and file paths are normalised to forward slashes —
regenerating SARIF for an unchanged tree is byte-identical.
"""

from __future__ import annotations

import json
from pathlib import PurePath
from typing import Dict, List, Optional, Sequence

from repro.analysis.base import Finding, all_rules

__all__ = ["format_sarif", "SARIF_VERSION", "SARIF_SCHEMA"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _uri(path: str) -> str:
    return PurePath(path).as_posix()


def _result(finding: Finding, suppressed: bool) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": _uri(finding.path)},
                    "region": {"startLine": max(1, finding.line)},
                }
            }
        ],
    }
    if finding.chain:
        result["properties"] = {"chain": list(finding.chain)}
    if suppressed:
        result["suppressions"] = [
            {"kind": "external", "status": "accepted"}
        ]
    return result


def format_sarif(
    findings: Sequence[Finding],
    baselined: Optional[Sequence[Finding]] = None,
) -> str:
    """A complete SARIF 2.1.0 log for one lint run."""
    rules: List[Dict[str, object]] = [
        {
            "id": rule.name,
            "shortDescription": {"text": rule.invariant or rule.name},
            "defaultConfiguration": {
                "level": _LEVELS.get(rule.severity, "warning")
            },
        }
        for rule in all_rules()
    ]
    # the synthetic rule the engine emits for unparseable files
    rules.append(
        {
            "id": "syntax-error",
            "shortDescription": {"text": "every linted file parses"},
            "defaultConfiguration": {"level": "error"},
        }
    )
    rules.sort(key=lambda r: str(r["id"]))

    results = [_result(f, suppressed=False) for f in findings]
    if baselined:
        results.extend(_result(f, suppressed=True) for f in baselined)

    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"
