"""Extract and model-check the fleet wire-protocol state machine.

``repro.fleet`` is two communicating state machines: the coordinator
and the worker exchange frozen ``Message`` dataclasses over
length-prefixed frames, and each side mutates declared state tuples
(``FLEET_JOB_STATES``, ``WORKER_STATES``) as messages arrive.  The
per-file ``protocol-exhaustive`` rule checks each message class in
isolation; this module checks the *composed* system in the spirit of
nested model checking (N-PAT): build a finite model of who sends and
handles which message and which states are entered/exited where, then
exhaustively walk the product for liveness defects —

* **send-without-handler**: a role constructs a message no peer role
  dispatches on; the frame decodes fine and drops on the floor.
* **orphan message**: a registered message no role sends *or* handles.
* **no-exit state**: a state that can be entered but has no transition
  out and is not declared terminal.
* **never-entered state**: a declared state nothing ever assigns.

Extraction (:func:`extract_protocol`) is separated from checking
(:func:`check_protocol`) so tests can seed defects by mutating the
extracted model — drop one handler table entry and the checker must
report the unhandled pair.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import Project, SourceFile, ancestors

__all__ = [
    "MessageDecl",
    "RoleModel",
    "StateMachine",
    "ProtocolModel",
    "extract_protocol",
    "check_protocol",
]


@dataclass
class MessageDecl:
    """One registered wire-message class."""

    name: str
    type_tag: str
    source: SourceFile
    line: int


@dataclass
class RoleModel:
    """One protocol participant: a class with isinstance dispatch over
    message types.  ``handles`` maps message name → dispatch line;
    ``sends`` maps message name → constructor-call lines."""

    name: str
    source: SourceFile
    line: int
    handles: Dict[str, int] = field(default_factory=dict)
    sends: Dict[str, List[int]] = field(default_factory=dict)


@dataclass
class StateMachine:
    """One declared state tuple (``NAME_STATES = ("a", "b", ...)``) plus
    the entry/exit evidence collected from assignments project-wide."""

    name: str
    source: SourceFile
    line: int
    states: Tuple[str, ...]
    #: states with entry evidence (field default, ``.state = "x"``
    #: assignment, or a ``state="x"`` call keyword)
    entered: Set[str] = field(default_factory=set)
    #: states with exit evidence (an assignment to a *different* member
    #: whose state-guard includes the state, or is unguarded)
    exited: Set[str] = field(default_factory=set)
    #: states declared terminal (member of a ``*TERMINAL*`` collection)
    terminal: Set[str] = field(default_factory=set)


@dataclass
class ProtocolModel:
    messages: Dict[str, MessageDecl] = field(default_factory=dict)
    roles: Dict[str, RoleModel] = field(default_factory=dict)
    machines: List[StateMachine] = field(default_factory=list)


# ---------------------------------------------------------------------------
# extraction


def _is_message_class(cls: ast.ClassDef) -> Optional[str]:
    """The wire TYPE when ``cls`` is a registered Message subclass."""
    if not any(
        (isinstance(b, ast.Name) and b.id == "Message")
        or (isinstance(b, ast.Attribute) and b.attr == "Message")
        for b in cls.bases
    ):
        return None
    for stmt in cls.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "TYPE":
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return value.value
    return None


def _ref_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _extract_roles(
    project: Project, message_names: Set[str]
) -> Dict[str, RoleModel]:
    roles: Dict[str, RoleModel] = {}
    for source in project.parsed():
        for cls in ast.walk(source.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if _is_message_class(cls) is not None:
                continue
            handles: Dict[str, int] = {}
            sends: Dict[str, List[int]] = {}
            for node in ast.walk(cls):
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2
                ):
                    spec = node.args[1]
                    refs = list(spec.elts) if isinstance(spec, ast.Tuple) else [spec]
                    for ref in refs:
                        name = _ref_name(ref)
                        if name in message_names:
                            handles.setdefault(name, node.lineno)
                else:
                    name = _ref_name(node.func)
                    if name in message_names:
                        sends.setdefault(name, []).append(node.lineno)
            if handles or sends:
                roles[cls.name] = RoleModel(
                    name=cls.name,
                    source=source,
                    line=cls.lineno,
                    handles=handles,
                    sends=sends,
                )
    return roles


def _declared_state_tuples(project: Project) -> List[StateMachine]:
    machines: List[StateMachine] = []
    for source in project.parsed():
        for stmt in source.tree.body:  # module level only
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not (isinstance(target, ast.Name) and target.id.endswith("_STATES")):
                continue
            if not isinstance(stmt.value, ast.Tuple):
                continue
            values = [
                e.value
                for e in stmt.value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            if len(values) != len(stmt.value.elts) or not values:
                continue
            machines.append(
                StateMachine(
                    name=target.id,
                    source=source,
                    line=stmt.lineno,
                    states=tuple(values),
                )
            )
    return machines


def _terminal_declarations(project: Project) -> Set[str]:
    """All string members of module-level ``*TERMINAL*`` collections."""
    terminal: Set[str] = set()
    for source in project.parsed():
        for stmt in source.tree.body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not (isinstance(target, ast.Name) and "TERMINAL" in target.id):
                continue
            for node in ast.walk(stmt.value):
                if isinstance(node, ast.Constant) and isinstance(node.value, str):
                    terminal.add(node.value)
    return terminal


def _guard_states(assign: ast.stmt, universe: Set[str]) -> Set[str]:
    """States named by the nearest enclosing ``if`` that tests ``.state``.

    Empty set means unguarded (the assignment fires from any state)."""
    for anc in ancestors(assign):
        if not isinstance(anc, ast.If):
            continue
        mentions_state = any(
            isinstance(n, (ast.Attribute, ast.Name))
            and (getattr(n, "attr", None) == "state" or getattr(n, "id", None) == "state")
            for n in ast.walk(anc.test)
        )
        if not mentions_state:
            continue
        guard = {
            n.value
            for n in ast.walk(anc.test)
            if isinstance(n, ast.Constant)
            and isinstance(n.value, str)
            and n.value in universe
        }
        return guard
    return set()


def _collect_state_evidence(
    project: Project, machines: List[StateMachine]
) -> None:
    universe: Set[str] = set()
    for machine in machines:
        universe.update(machine.states)
    if not universe:
        return

    #: (assigned literals, guard literals) per relevant assignment
    records: List[Tuple[Set[str], Set[str]]] = []

    for source in project.parsed():
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                if value is None:
                    continue
                state_target = any(
                    (isinstance(t, ast.Attribute) and t.attr == "state")
                    or (
                        isinstance(t, ast.Name)
                        and t.id == "state"
                        and any(isinstance(a, ast.ClassDef) for a in ancestors(node))
                    )
                    for t in targets
                )
                if not state_target:
                    continue
                assigned = {
                    n.value
                    for n in ast.walk(value)
                    if isinstance(n, ast.Constant)
                    and isinstance(n.value, str)
                    and n.value in universe
                }
                if not assigned:
                    continue
                records.append((assigned, _guard_states(node, universe)))
            elif isinstance(node, ast.Call):
                assigned = {
                    kw.value.value
                    for kw in node.keywords
                    if kw.arg == "state"
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                    and kw.value.value in universe
                }
                if assigned:
                    records.append((assigned, _guard_states(node, universe)))

    for machine in machines:
        members = set(machine.states)
        for assigned, guard in records:
            hits = assigned & members
            machine.entered.update(hits)
            for state in members:
                if guard and state not in guard:
                    continue
                if any(t != state for t in hits):
                    machine.exited.add(state)


def extract_protocol(project: Project) -> ProtocolModel:
    """Build the protocol model for the linted file set."""
    model = ProtocolModel()
    for source in project.parsed():
        for cls in ast.walk(source.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            tag = _is_message_class(cls)
            if tag is not None:
                model.messages[cls.name] = MessageDecl(
                    name=cls.name, type_tag=tag, source=source, line=cls.lineno
                )
    model.roles = _extract_roles(project, set(model.messages))
    model.machines = _declared_state_tuples(project)
    _collect_state_evidence(project, model.machines)
    terminal = _terminal_declarations(project)
    for machine in model.machines:
        machine.terminal = terminal & set(machine.states)
    return model


# ---------------------------------------------------------------------------
# checking


def check_protocol(model: ProtocolModel) -> List[Tuple[SourceFile, int, str]]:
    """Exhaustively check the product machine; returns raw findings as
    ``(source, line, message)`` triples (the rule wraps them)."""
    problems: List[Tuple[SourceFile, int, str]] = []

    roles = model.roles
    if len(roles) >= 2:
        for role_name in sorted(roles):
            role = roles[role_name]
            peers = [roles[n] for n in sorted(roles) if n != role_name]
            for msg in sorted(role.sends):
                if any(msg in peer.handles for peer in peers):
                    continue
                peer_names = ", ".join(p.name for p in peers)
                problems.append(
                    (
                        role.source,
                        role.sends[msg][0],
                        f"{role.name} sends {msg} but no peer role "
                        f"({peer_names}) has an isinstance handler for it; "
                        "the frame decodes and is silently dropped",
                    )
                )
        for msg in sorted(model.messages):
            decl = model.messages[msg]
            if any(msg in r.sends or msg in r.handles for r in roles.values()):
                continue
            problems.append(
                (
                    decl.source,
                    decl.line,
                    f"message {msg} (wire type {decl.type_tag!r}) is "
                    "registered but no protocol role sends or handles it",
                )
            )

    for machine in model.machines:
        if not machine.entered:
            continue  # no evidence in the linted set; nothing to check
        for state in machine.states:
            if state in machine.entered and state not in machine.exited:
                if state in machine.terminal:
                    continue
                problems.append(
                    (
                        machine.source,
                        machine.line,
                        f"state {state!r} of {machine.name} can be entered "
                        "but no transition leaves it and it is not declared "
                        "terminal; jobs parked there are stranded",
                    )
                )
        for state in machine.states:
            if state not in machine.entered:
                problems.append(
                    (
                        machine.source,
                        machine.line,
                        f"state {state!r} is declared in {machine.name} but "
                        "nothing ever enters it; dead state or missing "
                        "transition",
                    )
                )
    return problems
