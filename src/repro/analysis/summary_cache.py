"""Content-addressed summaries so `lint --cache` skips unchanged work.

The same idea as the ``ArtifactStore``: address results by a digest of
exactly the inputs that determine them.  Two levels:

* **per-file entries** — keyed by the sha256 of the file's text, each
  holding the findings of the *local* rules (those whose output is a
  pure function of one file) and the file's local effect table
  (:func:`repro.analysis.effects.scan_local_effects` is per-file by
  construction, so cross-module effect inference can reuse it without
  re-parsing unchanged files);
* **whole-project entries** — keyed by the digest of the sorted
  ``(path, file digest)`` list plus the active rule selection, holding
  the final finding list.  A fully warm run is one dictionary lookup
  and **zero parses**.

Everything is versioned by a **rule-set fingerprint**: the sha256 of
every source file in the ``repro.analysis`` package.  Editing any rule,
the engine, or this module changes the fingerprint and atomically
invalidates the whole cache — stale summaries can never survive a rule
change.  A corrupt or unreadable cache file degrades to a cold run,
never to an error: the cache is an accelerator, not a dependency.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.base import Finding
from repro.analysis.effects import EffectSite

__all__ = [
    "SummaryCache",
    "DEFAULT_CACHE_DIR",
    "ruleset_fingerprint",
    "file_digest",
    "project_digest",
]

#: Cache schema version; bump on incompatible layout changes.
CACHE_VERSION = 1

DEFAULT_CACHE_DIR = ".repro-lint-cache"

_CACHE_FILENAME = "summaries.json"


def ruleset_fingerprint() -> str:
    """sha256 over every ``repro.analysis`` source file, so any edit to
    a rule, the engine, or the cache itself invalidates cleanly."""
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_dir.glob("*.py")):
        digest.update(path.name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def file_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def project_digest(digests: Dict[str, str], selection: str) -> str:
    """One digest for an exact file set + rule selection."""
    payload = json.dumps(
        {"files": sorted(digests.items()), "selection": selection},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _effects_to_json(
    effects: Dict[str, List[EffectSite]],
) -> Dict[str, List[List[object]]]:
    return {
        qualname: [[s.effect, s.line, s.detail] for s in sites]
        for qualname, sites in sorted(effects.items())
    }


def _effects_from_json(
    path: str, data: Dict[str, List[List[object]]]
) -> Dict[str, List[EffectSite]]:
    out: Dict[str, List[EffectSite]] = {}
    for qualname, rows in data.items():
        out[str(qualname)] = [
            EffectSite(
                effect=str(row[0]),
                path=path,
                line=int(row[1]),  # type: ignore[arg-type]
                detail=str(row[2]),
            )
            for row in rows
        ]
    return out


class SummaryCache:
    """On-disk summary store for one cache directory.

    All reads validate shape and the rule-set fingerprint; any mismatch
    or decode error presents as an empty cache.
    """

    def __init__(self, cache_dir: str = DEFAULT_CACHE_DIR) -> None:
        self.cache_dir = Path(cache_dir)
        self.path = self.cache_dir / _CACHE_FILENAME
        self.fingerprint = ruleset_fingerprint()
        self._data = self._load()
        self._dirty = False

    # ------------------------------------------------------------------
    # persistence

    def _empty(self) -> Dict[str, object]:
        return {
            "version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "files": {},
            "projects": {},
        }

    def _load(self) -> Dict[str, object]:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return self._empty()
        if (
            not isinstance(data, dict)
            or data.get("version") != CACHE_VERSION
            or data.get("fingerprint") != self.fingerprint
            or not isinstance(data.get("files"), dict)
            or not isinstance(data.get("projects"), dict)
        ):
            return self._empty()
        return data

    def save(self) -> None:
        if not self._dirty:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.cache_dir), prefix=".summaries-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self._data, handle, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._dirty = False

    # ------------------------------------------------------------------
    # whole-project entries

    def project_findings(
        self, digests: Dict[str, str], selection: str
    ) -> Optional[Tuple[List[Finding], int]]:
        """``(findings, n_files)`` for an exact file-set + selection
        match — the zero-parse warm path — else None."""
        key = project_digest(digests, selection)
        entry = self._data["projects"].get(key)  # type: ignore[union-attr]
        if not isinstance(entry, dict):
            return None
        try:
            findings = [Finding.from_dict(raw) for raw in entry["findings"]]
            n_files = int(entry["n_files"])
        except (KeyError, TypeError, ValueError):
            return None
        return findings, n_files

    def store_project_findings(
        self,
        digests: Dict[str, str],
        selection: str,
        findings: Sequence[Finding],
        n_files: int,
    ) -> None:
        key = project_digest(digests, selection)
        self._data["projects"][key] = {  # type: ignore[index]
            "findings": [f.to_dict() for f in findings],
            "n_files": n_files,
        }
        self._dirty = True

    # ------------------------------------------------------------------
    # per-file entries

    def _file_entry(self, path: str, digest: str) -> Optional[Dict[str, object]]:
        entry = self._data["files"].get(path)  # type: ignore[union-attr]
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            return None
        return entry

    def file_findings(
        self, path: str, digest: str, local_selection: str
    ) -> Optional[List[Finding]]:
        """Cached local-rule findings for one unchanged file, or None."""
        entry = self._file_entry(path, digest)
        if entry is None:
            return None
        selections = entry.get("selections")
        if not isinstance(selections, dict) or local_selection not in selections:
            return None
        try:
            return [Finding.from_dict(raw) for raw in selections[local_selection]]
        except (KeyError, TypeError, ValueError):
            return None

    def file_effects(
        self, path: str, digest: str
    ) -> Optional[Dict[str, List[EffectSite]]]:
        """Cached local effect table for one unchanged file, or None."""
        entry = self._file_entry(path, digest)
        if entry is None:
            return None
        effects = entry.get("effects")
        if not isinstance(effects, dict):
            return None
        try:
            return _effects_from_json(path, effects)
        except (IndexError, TypeError, ValueError):
            return None

    def store_file_summary(
        self,
        path: str,
        digest: str,
        local_selection: str,
        findings: Sequence[Finding],
        effects: Optional[Dict[str, List[EffectSite]]],
    ) -> None:
        files = self._data["files"]  # type: ignore[assignment]
        entry = files.get(path)  # type: ignore[union-attr]
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            entry = {"digest": digest, "selections": {}}
            files[path] = entry  # type: ignore[index]
        entry["selections"][local_selection] = [f.to_dict() for f in findings]
        if effects is not None:
            entry["effects"] = _effects_to_json(effects)
        self._dirty = True
