"""Exception-path resource safety via escape analysis.

``resource-exception-safety`` proves that every lock, executor, socket,
pool, or file handle acquired *outside* a ``with`` block is released on
all exception paths.  The shutdown bugs PRs 3–6 fixed were exactly this
shape: an executor constructed in ``Pipeline.run`` that an exception
mid-flow would have orphaned, a coordinator socket closed only on the
success path.  ``with`` is always the preferred fix; when flow control
genuinely needs manual lifetime management (the pipeline hands its
executor to stage threads), the acquisition must be paired with a
``try``/``finally`` release — and the rule follows the release through
helper-method splits (``finally: self._teardown(ctx)`` where the helper
does the actual ``shutdown``), because that is how real cleanup code is
factored.

The analysis is deliberately under-approximate about *ownership*: a
handle that escapes the function — returned, yielded, aliased into a
container or attribute, or passed to another call — is someone else's
to close, and is never reported.  What remains is the provable leak: a
resource acquired, used, and (at best) released only on the straight
path, so the first exception in between orphans it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import (
    Finding,
    Project,
    Rule,
    SourceFile,
    register_rule,
    resolve_name,
)
from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    callgraph,
    walk_in_function,
)

__all__ = ["ResourceExceptionSafetyRule"]


#: Constructor → (resource kind, methods whose call counts as release).
_ACQUIRE_CTORS: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "socket.socket": ("socket", ("close", "detach")),
    "socket.create_connection": ("socket", ("close", "detach")),
    "socket.create_server": ("socket", ("close", "detach")),
    "concurrent.futures.ThreadPoolExecutor": ("executor", ("shutdown",)),
    "concurrent.futures.ProcessPoolExecutor": ("executor", ("shutdown",)),
    "multiprocessing.Pool": ("pool", ("close", "terminate")),
}

_OPEN_RELEASES = ("close",)
_LOCK_RELEASES = ("release",)

_MAX_HELPER_DEPTH = 3


@dataclass
class _Acquisition:
    key: str  # dotted receiver repr: "sock", "self._lock", "ctx.executor"
    kind: str
    releases: Tuple[str, ...]
    line: int
    detail: str
    is_attr: bool  # bound to an attribute (self.x / ctx.x), not a local


def _dotted(expr: ast.expr) -> Optional[str]:
    """Stable textual key for a Name/Attribute chain; None otherwise."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _dotted(expr.value)
        return None if base is None else f"{base}.{expr.attr}"
    return None


def _acquisition_of(
    call: ast.Call, table: Dict[str, str]
) -> Optional[Tuple[str, Tuple[str, ...], str]]:
    """``(kind, release methods, description)`` when the call constructs
    a tracked resource."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open" and func.id not in table:
        return ("file", _OPEN_RELEASES, "open()")
    name = resolve_name(func, table)
    if name in _ACQUIRE_CTORS:
        kind, releases = _ACQUIRE_CTORS[name]
        return (kind, releases, f"{name}()")
    if isinstance(func, ast.Name) and func.id in (
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
    ):
        # common unaliased from-import the table may not canonicalise
        canonical = table.get(func.id, "")
        if canonical.startswith("concurrent.futures.") or not canonical:
            return ("executor", ("shutdown",), f"{func.id}()")
    return None


@register_rule("resource-exception-safety")
class ResourceExceptionSafetyRule(Rule):
    """Manual resource lifetimes must survive exceptions.

    Reported: a lock ``.acquire()`` or a file/socket/executor/pool
    constructed outside ``with`` whose binding neither escapes the
    function nor is released in a ``finally`` (followed transitively
    through helper calls) — including the half-bug where a release
    exists but only on the success path.  Attribute-held resources
    (``self.sock = socket.socket(...)``) are owned by the object: they
    are safe when *any* method of the class releases them (a ``close()``
    / ``__exit__`` convention), reported when none does.
    """

    invariant = (
        "locks, executors, sockets, pools, and files acquired outside "
        "`with` are released on every exception path (try/finally, "
        "possibly through helper methods) or escape to a longer-lived "
        "owner"
    )

    #: helper resolution crosses modules, so per-file caching is unsound
    uses_project = True

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        graph = callgraph(project)
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            info = graph.function_for(node)
            if info is None:
                continue
            yield from self._check_function(info, graph)

    # ------------------------------------------------------------------

    def _check_function(
        self, info: FunctionInfo, graph: CallGraph
    ) -> Iterator[Finding]:
        table = graph.table(info.source)
        acquisitions = self._acquisitions(info, table)
        if not acquisitions:
            return
        with_keys = self._with_managed_keys(info)
        for acq in acquisitions:
            if acq.key in with_keys:
                continue
            if not acq.is_attr and self._escapes(acq.key, info):
                continue
            released_in_finally = self._released_in_finally(
                acq.key, acq.releases, info, graph
            )
            if released_in_finally is not None:
                continue
            if acq.is_attr and self._class_releases(acq, info, graph):
                continue
            anywhere = self._release_line(acq.key, acq.releases, info)
            if anywhere is not None:
                message = (
                    f"{acq.detail} bound to {acq.key} is released only on "
                    f"the success path (line {anywhere}); an exception "
                    "between acquisition and release leaks it — move the "
                    f"{'/'.join(acq.releases)} into try/finally or use with"
                )
            else:
                message = (
                    f"{acq.detail} bound to {acq.key} is never released on "
                    "any path out of this function and does not escape — "
                    f"use with, or {'/'.join(acq.releases)} in a finally"
                )
            yield Finding(
                rule=self.name,
                path=info.source.path,
                line=acq.line,
                message=message,
                severity=self.severity,
                chain=(
                    f"{info.name}() acquires {acq.detail} as {acq.key} "
                    f"at {info.source.path}:{acq.line}",
                    "no with-block manages it, no finally releases it "
                    "(helper methods searched), and it does not escape",
                ),
            )

    # ------------------------------------------------------------------
    # acquisition collection

    def _acquisitions(
        self, info: FunctionInfo, table: Dict[str, str]
    ) -> List[_Acquisition]:
        context_exprs = {
            id(item.context_expr)
            for node in walk_in_function(info.node)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
        }
        found: List[_Acquisition] = []
        for node in walk_in_function(info.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.NamedExpr)):
                value = node.value
                if not isinstance(value, ast.Call) or id(value) in context_exprs:
                    continue
                acq = _acquisition_of(value, table)
                if acq is None:
                    continue
                kind, releases, detail = acq
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    key = _dotted(target)
                    if key is None:
                        continue
                    found.append(
                        _Acquisition(
                            key=key,
                            kind=kind,
                            releases=releases,
                            line=value.lineno,
                            detail=detail,
                            is_attr=isinstance(target, ast.Attribute),
                        )
                    )
            elif isinstance(node, ast.Call) and id(node) not in context_exprs:
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr == "acquire":
                    key = _dotted(func.value)
                    if key is None:
                        continue
                    found.append(
                        _Acquisition(
                            key=key,
                            kind="lock",
                            releases=_LOCK_RELEASES,
                            line=node.lineno,
                            detail=f"{key}.acquire()",
                            is_attr="." in key,
                        )
                    )
        return found

    @staticmethod
    def _with_managed_keys(info: FunctionInfo) -> Set[str]:
        keys: Set[str] = set()
        for node in walk_in_function(info.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    key = _dotted(item.context_expr)
                    if key is not None:
                        keys.add(key)
        return keys

    # ------------------------------------------------------------------
    # escape analysis (local bindings only)

    @staticmethod
    def _escapes(key: str, info: FunctionInfo) -> bool:
        for node in walk_in_function(info.node):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                # returning the handle (or a container holding it) hands
                # off ownership; returning a *result computed from* it
                # (`return sock.recv(16)`) does not
                value = node.value
                if value is not None and _mentions_outside_calls(value, key):
                    return True
            elif isinstance(node, ast.Call):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if _mentions(arg, key):
                        return True
            elif isinstance(node, ast.Assign):
                # aliased: d[k] = x, self.f = x, g = x, pair = (x, y) —
                # but a call's receiver/arguments are not aliasing (the
                # Call branch above already sees real argument escapes)
                if _mentions_outside_calls(node.value, key):
                    return True
        return False

    # ------------------------------------------------------------------
    # release search

    def _released_in_finally(
        self, key: str, releases: Tuple[str, ...], info: FunctionInfo, graph: CallGraph
    ) -> Optional[int]:
        """Line of a release reached from some ``finally`` block in this
        function, following helper calls; None when no path releases."""
        for node in walk_in_function(info.node):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for stmt in node.finalbody:
                line = self._release_in_tree(stmt, key, releases, info, graph, 0)
                if line is not None:
                    return line
        return None

    def _release_in_tree(
        self,
        root: ast.AST,
        key: str,
        releases: Tuple[str, ...],
        info: FunctionInfo,
        graph: CallGraph,
        depth: int,
    ) -> Optional[int]:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in releases
                and _dotted(func.value) == key
            ):
                return node.lineno
            if depth < _MAX_HELPER_DEPTH:
                for target in graph.resolve_call(node, info):
                    line = self._release_in_tree(
                        target.node, key, releases, target, graph, depth + 1
                    )
                    if line is not None:
                        return node.lineno  # report the helper call site
        return None

    @staticmethod
    def _release_line(
        key: str, releases: Tuple[str, ...], info: FunctionInfo
    ) -> Optional[int]:
        for node in walk_in_function(info.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in releases
                and _dotted(node.func.value) == key
            ):
                return node.lineno
        return None

    def _class_releases(
        self, acq: _Acquisition, info: FunctionInfo, graph: CallGraph
    ) -> bool:
        """Attribute-held resources: safe when any method of the owning
        class releases the same attribute path (``self.sock.close()`` in
        ``close()``/``__exit__``/teardown), or ``with``-manages it."""
        if not acq.key.startswith("self."):
            return False
        cls = graph.class_of(info)
        if cls is None:
            return False
        for method in cls.methods.values():
            if self._release_line(acq.key, acq.releases, method) is not None:
                return True
            if acq.key in self._with_managed_keys(method):
                return True
        return False


def _mentions(expr: ast.AST, key: str) -> bool:
    head = key.split(".", 1)[0]
    for leaf in ast.walk(expr):
        if isinstance(leaf, ast.Name) and leaf.id == head:
            return True
    return False


def _mentions_outside_calls(expr: ast.AST, key: str) -> bool:
    head = key.split(".", 1)[0]
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            continue
        if isinstance(node, ast.Name) and node.id == head:
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False
