"""Finding baselines: land new cross-module rules warn-first.

A baseline file freezes the lint findings a tree already has, so a new
rule can turn on in CI without blocking every unrelated PR on a
repo-wide cleanup: findings matching the baseline are reported but do
not fail the run; anything *new* does.  The workflow is

1. ``repro-domino lint src/ --write-baseline .lint-baseline.json`` —
   snapshot the current findings (empty when the tree is clean);
2. commit the file, add a ``reason`` to every entry (an entry with no
   reason is *undocumented* and CI refuses it);
3. CI runs ``lint src/ --baseline .lint-baseline.json``; exit status
   reflects only non-baselined findings (``--diff`` hides the
   baselined ones from the listing too);
4. fix entries over time, re-snapshot, watch the file shrink to ``[]``.

Entries match on ``(rule, path, message)`` — deliberately *not* the
line number, so unrelated edits above a baselined finding do not
un-baseline it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.base import Finding
from repro.errors import ConfigError

__all__ = [
    "BaselineEntry",
    "Baseline",
    "load_baseline",
    "write_baseline",
    "split_findings",
]

BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted pre-existing finding."""

    rule: str
    path: str
    message: str
    reason: str = ""

    @property
    def key(self) -> _Key:
        return (self.rule, self.path, self.message)

    @property
    def documented(self) -> bool:
        return bool(self.reason.strip(" -—"))

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    entries: List[BaselineEntry]

    def keys(self) -> Dict[_Key, BaselineEntry]:
        return {entry.key: entry for entry in self.entries}

    def covers(self, finding: Finding) -> bool:
        return (finding.rule, finding.path, finding.message) in self.keys()

    def undocumented(self) -> List[BaselineEntry]:
        return [entry for entry in self.entries if not entry.documented]


def load_baseline(path: str) -> Baseline:
    """Parse a baseline file; :class:`ConfigError` on any shape problem
    (a half-read baseline silently accepting findings is worse than a
    hard failure)."""
    file = Path(path)
    if not file.is_file():
        raise ConfigError(f"baseline file not found: {path}")
    try:
        data = json.loads(file.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ConfigError(
            f"baseline {path} must be a JSON object with "
            f'"version": {BASELINE_VERSION}'
        )
    raw = data.get("findings")
    if not isinstance(raw, list):
        raise ConfigError(f'baseline {path} must carry a "findings" list')
    entries: List[BaselineEntry] = []
    for item in raw:
        if not isinstance(item, dict):
            raise ConfigError(f"baseline {path}: every finding must be an object")
        try:
            entries.append(
                BaselineEntry(
                    rule=str(item["rule"]),
                    path=str(item["path"]),
                    message=str(item["message"]),
                    reason=str(item.get("reason", "")),
                )
            )
        except KeyError as exc:
            raise ConfigError(
                f"baseline {path}: finding missing key {exc.args[0]!r}"
            ) from None
    return Baseline(entries=entries)


def write_baseline(findings: Sequence[Finding], path: str) -> Baseline:
    """Snapshot ``findings`` to ``path`` (reasons start empty — a human
    documents each entry before CI accepts the file).

    The output is fully deterministic: entries are ordered by their
    line-free ``(rule, path, message)`` key — *not* by line number,
    which would reshuffle the file whenever unrelated edits move a
    finding — serialised with sorted JSON keys and a trailing newline,
    so re-snapshotting an unchanged tree is always byte-identical.
    """
    # One entry per key: identical findings on different lines collapse.
    unique: Dict[_Key, BaselineEntry] = {}
    for f in findings:
        entry = BaselineEntry(rule=f.rule, path=f.path, message=f.message)
        unique.setdefault(entry.key, entry)
    baseline = Baseline(entries=sorted(unique.values(), key=lambda e: e.key))
    payload = {
        "version": BASELINE_VERSION,
        "findings": [entry.to_dict() for entry in baseline.entries],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return baseline


def split_findings(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[Finding]]:
    """``(new, baselined)`` partition of ``findings``."""
    keys = baseline.keys()
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        if (finding.rule, finding.path, finding.message) in keys:
            old.append(finding)
        else:
            new.append(finding)
    return new, old
