"""Conservative cross-module call graph over the shared syntax trees.

The per-file rules in :mod:`repro.analysis.rules` see one module at a
time, but every hard bug PRs 3–6 fixed was *inter-procedural*: a
blocking call reached through two frames from an ``async def``, a
lock-carrying object pickled into a pool worker.  This module builds
the whole-program structure those checks need:

* an index of every function/method/class in the linted
  :class:`~repro.analysis.base.Project`, keyed by a stable qualname
  (``<dotted.module>::Class.method``);
* call edges between them, resolved through the existing import-alias
  machinery (:func:`~repro.analysis.base.import_table`), with method
  dispatch only on receivers whose class is actually inferable (a
  constructor assignment, a parameter annotation, or a ``self.attr``
  assignment) — never by bare attribute name, which would drown the
  dataflow rules in false edges;
* executor boundaries: ``executor.submit(fn, ...)``,
  ``loop.run_in_executor(pool, fn, ...)`` and pool ``initializer=``
  targets become edges tagged ``offthread=True`` so on-loop
  reachability (the transitive-blocking rule) can skip them while
  lock/pickle analyses still see them.

Resolution is deliberately *under*-approximate for receivers (an
uninferable ``obj.m()`` resolves to nothing) and exact for names: a
reported chain is therefore always a real syntactic path, which is what
lets the dataflow rules run with zero findings on a clean tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import Project, SourceFile, import_table, resolve_name

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "CallEdge",
    "CallGraph",
    "callgraph",
]


def module_key(path: str) -> str:
    """Dotted module name derived from a file path (best effort).

    ``src/repro/fleet/worker.py`` → ``src.repro.fleet.worker``; package
    ``__init__.py`` files collapse onto the package.  Cross-module
    lookups match on the dotted *suffix*, so the leading ``src`` (or an
    absolute prefix) never has to be stripped exactly.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part not in ("/", "\\", ""))


@dataclass
class FunctionInfo:
    """One function or method definition in the linted set."""

    qualname: str
    name: str
    cls: Optional[str]  # immediate enclosing class name, if a method
    source: SourceFile
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    is_async: bool

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition plus what the dataflow rules need from it."""

    name: str
    source: SourceFile
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.X = <value>`` assignments anywhere in the class's methods
    attr_values: Dict[str, List[ast.expr]] = field(default_factory=dict)
    #: class-body ``name: annotation`` fields (dataclass-style)
    field_annotations: Dict[str, ast.expr] = field(default_factory=dict)
    #: class-body ``name: ... = <value>`` defaults
    field_defaults: Dict[str, ast.expr] = field(default_factory=dict)

    def defines_custom_pickling(self) -> bool:
        return any(
            name in self.methods
            for name in ("__reduce__", "__reduce_ex__", "__getstate__")
        )


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: ``caller`` invokes ``callee`` at ``line``.

    ``offthread`` marks executor boundaries (``submit`` /
    ``run_in_executor`` / pool initializers): the callee runs, but not
    on the caller's thread or event loop.
    """

    caller: str
    callee: str
    line: int
    offthread: bool = False


#: Executor constructors whose ``submit`` crosses a process boundary.
PROCESS_POOL_CTORS = {
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Pool",
}

#: Executor constructors whose ``submit`` stays in-process (threads).
THREAD_POOL_CTORS = {
    "concurrent.futures.ThreadPoolExecutor",
}

_EXECUTOR_CTORS = PROCESS_POOL_CTORS | THREAD_POOL_CTORS


class CallGraph:
    """Whole-project function index + conservative call edges."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, List[ClassInfo]] = {}
        self.edges: Dict[str, List[CallEdge]] = {}
        self._tables: Dict[str, Dict[str, str]] = {}
        self._module_functions: Dict[str, Dict[str, FunctionInfo]] = {}
        self._function_of_node: Dict[int, FunctionInfo] = {}
        self._build()

    # ------------------------------------------------------------------
    # indexing

    def _build(self) -> None:
        for source in self.project.parsed():
            self._tables[source.path] = import_table(source.tree)
            self._index_source(source)
        for info in self.functions.values():
            self.edges[info.qualname] = self._edges_from(info)

    def _index_source(self, source: SourceFile) -> None:
        key = module_key(source.path)
        module_funcs = self._module_functions.setdefault(key, {})

        def visit(node: ast.AST, scope: Tuple[str, ...], cls: Optional[ClassInfo]):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{key}::" + ".".join(scope + (child.name,))
                    info = FunctionInfo(
                        qualname=qual,
                        name=child.name,
                        cls=cls.name if cls is not None else None,
                        source=source,
                        node=child,
                        is_async=isinstance(child, ast.AsyncFunctionDef),
                    )
                    self.functions[qual] = info
                    self._function_of_node[id(child)] = info
                    if cls is not None and len(scope) >= 1:
                        cls.methods.setdefault(child.name, info)
                    if not scope:
                        module_funcs[child.name] = info
                    visit(child, scope + (child.name,), None)
                elif isinstance(child, ast.ClassDef):
                    cinfo = ClassInfo(name=child.name, source=source, node=child)
                    cinfo.bases = [self._base_name(b) for b in child.bases]
                    self._index_class_body(cinfo)
                    self.classes.setdefault(child.name, []).append(cinfo)
                    visit(child, scope + (child.name,), cinfo)
                else:
                    visit(child, scope, cls)

        visit(source.tree, (), None)
        for cls_list in self.classes.values():
            for cinfo in cls_list:
                if cinfo.source is source:
                    self._collect_attr_values(cinfo)

    @staticmethod
    def _base_name(base: ast.expr) -> str:
        if isinstance(base, ast.Name):
            return base.id
        if isinstance(base, ast.Attribute):
            return base.attr
        return ""

    @staticmethod
    def _index_class_body(cinfo: ClassInfo) -> None:
        for stmt in cinfo.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                cinfo.field_annotations[stmt.target.id] = stmt.annotation
                if stmt.value is not None:
                    cinfo.field_defaults[stmt.target.id] = stmt.value
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        cinfo.field_defaults[target.id] = stmt.value

    @staticmethod
    def _collect_attr_values(cinfo: ClassInfo) -> None:
        for node in ast.walk(cinfo.node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if value is None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cinfo.attr_values.setdefault(target.attr, []).append(value)
                    if isinstance(node, ast.AnnAssign):
                        cinfo.field_annotations.setdefault(
                            target.attr, node.annotation
                        )

    # ------------------------------------------------------------------
    # lookups

    def table(self, source: SourceFile) -> Dict[str, str]:
        return self._tables.get(source.path, {})

    def function_for(self, node: ast.AST) -> Optional[FunctionInfo]:
        """The FunctionInfo indexed for a def node, if any."""
        return self._function_of_node.get(id(node))

    def class_of(self, info: FunctionInfo) -> Optional[ClassInfo]:
        if info.cls is None:
            return None
        for cinfo in self.classes.get(info.cls, []):
            if cinfo.source is info.source:
                return cinfo
        candidates = self.classes.get(info.cls, [])
        return candidates[0] if candidates else None

    def lookup_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        """Resolve a canonical dotted name ("repro.core.batch.execute_one")
        to a top-level function in the linted set."""
        if "." not in dotted:
            return None
        module, name = dotted.rsplit(".", 1)
        for key, funcs in self._module_functions.items():
            if (key == module or key.endswith("." + module)) and name in funcs:
                return funcs[name]
        return None

    def lookup_class(self, name: str, near: Optional[SourceFile] = None) -> Optional[ClassInfo]:
        candidates = self.classes.get(name, [])
        if not candidates:
            return None
        if near is not None:
            for cinfo in candidates:
                if cinfo.source is near:
                    return cinfo
        return candidates[0]

    def method_on(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Method lookup through the (name-matched) base-class chain."""
        seen: Set[int] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if id(current) in seen:
                continue
            seen.add(id(current))
            if name in current.methods:
                return current.methods[name]
            for base in current.bases:
                stack.extend(self.classes.get(base, []))
        return None

    # ------------------------------------------------------------------
    # value-origin inference (receivers, executors, arguments)

    def value_origin(
        self, expr: ast.expr, info: FunctionInfo
    ) -> Tuple[Optional[ClassInfo], Optional[str]]:
        """Best-effort ``(project class, external ctor dotted name)`` a
        value expression originates from; ``(None, None)`` when not
        inferable.  Exactly one of the pair is ever non-``None``."""
        return self._origin(expr, info, depth=0)

    def _origin(
        self, expr: ast.expr, info: FunctionInfo, depth: int
    ) -> Tuple[Optional[ClassInfo], Optional[str]]:
        if depth > 4:
            return (None, None)
        table = self.table(info.source)
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in self.classes:
                return (self.lookup_class(func.id, near=info.source), None)
            dotted = resolve_name(func, table)
            if dotted is not None:
                tail = dotted.rsplit(".", 1)[-1]
                if tail in self.classes:
                    return (self.lookup_class(tail, near=info.source), None)
                return (None, dotted)
            if isinstance(func, ast.Attribute) and func.attr in self.classes:
                return (self.lookup_class(func.attr, near=info.source), None)
            return (None, None)
        if isinstance(expr, ast.Name):
            if expr.id in self.classes:
                # the class object itself (e.g. initializer=SomeClass)
                return (self.lookup_class(expr.id, near=info.source), None)
            return self._origin_of_local(expr.id, info, depth)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            cls = self.class_of(info)
            if cls is None:
                return (None, None)
            return self._origin_of_attr(expr.attr, cls, info, depth)
        return (None, None)

    def _origin_of_local(
        self, name: str, info: FunctionInfo, depth: int
    ) -> Tuple[Optional[ClassInfo], Optional[str]]:
        node = info.node
        for child in ast.walk(node):
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        origin = self._origin(child.value, info, depth + 1)
                        if origin != (None, None):
                            return origin
            elif isinstance(child, ast.AnnAssign):
                if isinstance(child.target, ast.Name) and child.target.id == name:
                    if child.value is not None:
                        origin = self._origin(child.value, info, depth + 1)
                        if origin != (None, None):
                            return origin
                    origin = self._origin_of_annotation(child.annotation, info)
                    if origin != (None, None):
                        return origin
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    if (
                        isinstance(item.optional_vars, ast.Name)
                        and item.optional_vars.id == name
                    ):
                        origin = self._origin(item.context_expr, info, depth + 1)
                        if origin != (None, None):
                            return origin
        args = getattr(node, "args", None)
        if args is not None:
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                if arg.arg == name and arg.annotation is not None:
                    return self._origin_of_annotation(arg.annotation, info)
        return (None, None)

    def _origin_of_attr(
        self, attr: str, cls: ClassInfo, info: FunctionInfo, depth: int
    ) -> Tuple[Optional[ClassInfo], Optional[str]]:
        for value in cls.attr_values.get(attr, []):
            owner = self._enclosing_method(value, cls)
            origin = self._origin(value, owner or info, depth + 1)
            if origin != (None, None):
                return origin
        annotation = cls.field_annotations.get(attr)
        if annotation is not None:
            origin = self._origin_of_annotation(annotation, info)
            if origin != (None, None):
                return origin
        default = cls.field_defaults.get(attr)
        if default is not None:
            origin = self._default_factory_origin(default, info)
            if origin != (None, None):
                return origin
        return (None, None)

    def _enclosing_method(
        self, node: ast.AST, cls: ClassInfo
    ) -> Optional[FunctionInfo]:
        from repro.analysis.base import ancestors

        for anc in ancestors(node):
            info = self._function_of_node.get(id(anc))
            if info is not None:
                return info
        return None

    def _default_factory_origin(
        self, default: ast.expr, info: FunctionInfo
    ) -> Tuple[Optional[ClassInfo], Optional[str]]:
        """``field(default_factory=X)`` class-body defaults."""
        if not isinstance(default, ast.Call):
            return (None, None)
        name = default.func
        tail = name.attr if isinstance(name, ast.Attribute) else (
            name.id if isinstance(name, ast.Name) else ""
        )
        if tail != "field":
            return (None, None)
        for kw in default.keywords:
            if kw.arg == "default_factory":
                table = self.table(info.source)
                dotted = resolve_name(kw.value, table)
                if dotted is not None:
                    tail = dotted.rsplit(".", 1)[-1]
                    if tail in self.classes:
                        return (self.lookup_class(tail, near=info.source), None)
                    return (None, dotted)
                if isinstance(kw.value, ast.Name) and kw.value.id in self.classes:
                    return (self.lookup_class(kw.value.id, near=info.source), None)
        return (None, None)

    def _origin_of_annotation(
        self, annotation: ast.expr, info: FunctionInfo
    ) -> Tuple[Optional[ClassInfo], Optional[str]]:
        """Class names mentioned in a (possibly quoted / Optional[...])
        annotation, matched against the project class index first and
        importable dotted names second."""
        table = self.table(info.source)
        names: List[str] = []
        dotted = resolve_name(annotation, table)
        if dotted is not None:
            names.append(dotted)
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name):
                names.append(node.id)
            elif isinstance(node, ast.Attribute):
                sub = resolve_name(node, table)
                if sub is not None:
                    names.append(sub)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                names.append(node.value.strip())
        for name in names:
            tail = name.rsplit(".", 1)[-1]
            if tail in self.classes:
                return (self.lookup_class(tail, near=info.source), None)
        for name in names:
            canonical = table.get(name, name)
            if canonical in _EXECUTOR_CTORS:
                return (None, canonical)
        return (None, None)

    # ------------------------------------------------------------------
    # call resolution

    def resolve_call(
        self, call: ast.Call, info: FunctionInfo
    ) -> List[FunctionInfo]:
        """Targets a call may invoke, resolved conservatively (an
        uninferable receiver resolves to nothing, not everything)."""
        func = call.func
        table = self.table(info.source)
        targets: List[FunctionInfo] = []
        if isinstance(func, ast.Name):
            local = self._module_functions.get(
                module_key(info.source.path), {}
            ).get(func.id)
            if local is not None:
                targets.append(local)
            elif func.id in self.classes:
                cinfo = self.lookup_class(func.id, near=info.source)
                init = cinfo and self.method_on(cinfo, "__init__")
                if init is not None:
                    targets.append(init)
            else:
                dotted = table.get(func.id)
                if dotted is not None:
                    hit = self.lookup_dotted(dotted)
                    if hit is not None:
                        targets.append(hit)
                    else:
                        tail = dotted.rsplit(".", 1)[-1]
                        if tail in self.classes:
                            cinfo = self.lookup_class(tail, near=info.source)
                            init = cinfo and self.method_on(cinfo, "__init__")
                            if init is not None:
                                targets.append(init)
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                cls = self.class_of(info)
                if cls is not None:
                    hit = self.method_on(cls, func.attr)
                    if hit is not None:
                        targets.append(hit)
            else:
                dotted = resolve_name(func, table)
                if dotted is not None:
                    hit = self.lookup_dotted(dotted)
                    if hit is not None:
                        targets.append(hit)
                if not targets:
                    receiver_cls, _ = self.value_origin(func.value, info)
                    if receiver_cls is not None:
                        hit = self.method_on(receiver_cls, func.attr)
                        if hit is not None:
                            targets.append(hit)
        return targets

    def resolve_callable_ref(
        self, expr: ast.expr, info: FunctionInfo
    ) -> Optional[FunctionInfo]:
        """A *reference* to a callable (submit targets, initializers)."""
        table = self.table(info.source)
        if isinstance(expr, ast.Name):
            local = self._module_functions.get(
                module_key(info.source.path), {}
            ).get(expr.id)
            if local is not None:
                return local
            dotted = table.get(expr.id)
            if dotted is not None:
                return self.lookup_dotted(dotted)
            return None
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                cls = self.class_of(info)
                if cls is not None:
                    return self.method_on(cls, expr.attr)
            dotted = resolve_name(expr, table)
            if dotted is not None:
                return self.lookup_dotted(dotted)
            receiver_cls, _ = self.value_origin(expr.value, info)
            if receiver_cls is not None:
                return self.method_on(receiver_cls, expr.attr)
        return None

    def executor_kind(self, expr: ast.expr, info: FunctionInfo) -> Optional[str]:
        """``"process"`` / ``"thread"`` when the expression is an
        executor of known flavour, else ``None`` (including the
        ``run_in_executor(None, ...)`` default-thread-pool case, which
        callers special-case themselves)."""
        _, ctor = self.value_origin(expr, info)
        if ctor in PROCESS_POOL_CTORS:
            return "process"
        if ctor in THREAD_POOL_CTORS:
            return "thread"
        return None

    def _edges_from(self, info: FunctionInfo) -> List[CallEdge]:
        edges: List[CallEdge] = []

        def note(target: Optional[FunctionInfo], line: int, offthread: bool):
            if target is not None and target.qualname != info.qualname:
                edges.append(
                    CallEdge(
                        caller=info.qualname,
                        callee=target.qualname,
                        line=line,
                        offthread=offthread,
                    )
                )

        for node in walk_in_function(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else None
            if attr == "submit" and node.args:
                kind = self.executor_kind(func.value, info)
                if kind is not None:
                    note(
                        self.resolve_callable_ref(node.args[0], info),
                        node.lineno,
                        offthread=True,
                    )
                    continue
            if attr == "run_in_executor" and len(node.args) >= 2:
                note(
                    self.resolve_callable_ref(node.args[1], info),
                    node.lineno,
                    offthread=True,
                )
                continue
            table = self.table(info.source)
            dotted = resolve_name(func, table)
            if dotted in _EXECUTOR_CTORS or (
                isinstance(func, ast.Name) and func.id in ("ProcessPoolExecutor", "ThreadPoolExecutor")
            ):
                for kw in node.keywords:
                    if kw.arg == "initializer":
                        note(
                            self.resolve_callable_ref(kw.value, info),
                            node.lineno,
                            offthread=True,
                        )
            for target in self.resolve_call(node, info):
                note(target, node.lineno, offthread=False)
        return edges

    # ------------------------------------------------------------------
    # traversal

    def callees(self, qualname: str) -> List[CallEdge]:
        return self.edges.get(qualname, [])

    def callers(self, qualname: str) -> List[CallEdge]:
        """Edges *into* ``qualname`` (the reverse index, built lazily —
        effect inference traces payload parameters back to caller
        arguments)."""
        reverse = getattr(self, "_reverse_edges", None)
        if reverse is None:
            reverse = {}
            for edges in self.edges.values():
                for edge in edges:
                    reverse.setdefault(edge.callee, []).append(edge)
            self._reverse_edges: Dict[str, List[CallEdge]] = reverse
        return reverse.get(qualname, [])


def walk_in_function(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs or
    lambdas (those are their own call-graph nodes / executor targets)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def callgraph(project: Project) -> CallGraph:
    """The project's call graph, built once and cached on the instance
    (several cross-module rules share one lint run)."""
    cached = getattr(project, "_callgraph", None)
    if cached is None:
        cached = CallGraph(project)
        project._callgraph = cached  # type: ignore[attr-defined]
    return cached
