"""Cross-module dataflow rules built on the project call graph.

Four ``check_project`` rules that need whole-program structure rather
than a single syntax tree (see :mod:`repro.analysis.callgraph` for how
edges are resolved):

``transitive-blocking-in-async``
    A blocking primitive (``time.sleep``, sync socket setup) reachable
    from an ``async def`` *through the call graph* — the caller is two
    frames away from the offending line, which the per-file
    ``no-blocking-in-async`` rule cannot see.  Direct (depth-0) hits
    stay with the per-file rule; this one reports chains only.

``lock-order``
    Derives the lock-acquisition graph: which locks each function holds
    when it acquires (directly or transitively through calls) another.
    Flags acquisition cycles, re-entry of a non-reentrant lock, and
    ``await`` while a ``threading`` lock is held (the loop parks with
    the lock taken; every other thread then parks behind it).

``pickle-boundary``
    Objects crossing a process-pool boundary (``submit`` on a
    ``ProcessPoolExecutor``, ``run_in_executor`` with a process pool,
    ``initargs``) must not transitively carry locks, sockets,
    executors, event loops, or generators — unless the class opts into
    custom pickling via ``__reduce__``/``__getstate__``/``__reduce_ex__``
    (``ArtifactStore`` does exactly this).  This is the exact class of
    PR 4's ``DominoCellLibrary`` bug.

``protocol-liveness``
    Bounded model check of the fleet protocol extracted by
    :mod:`repro.analysis.protocol_model`: send-without-handler pairs,
    orphan messages, no-exit and never-entered states.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import (
    Finding,
    Project,
    Rule,
    SourceFile,
    import_table,
    register_rule,
    resolve_name,
)
from repro.analysis.callgraph import (
    CallEdge,
    CallGraph,
    ClassInfo,
    FunctionInfo,
    callgraph,
    module_key,
    walk_in_function,
)
from repro.analysis.protocol_model import check_protocol, extract_protocol
from repro.analysis.rules import _BLOCKING_CALLS

__all__ = [
    "TransitiveBlockingRule",
    "LockOrderRule",
    "PickleBoundaryRule",
    "ProtocolLivenessRule",
]

_MAX_CHAIN_DEPTH = 12


def _short(qualname: str) -> str:
    """Human-readable function name: drop the module, keep Class.method."""
    return qualname.rsplit("::", 1)[-1]


# ---------------------------------------------------------------------------
# transitive-blocking-in-async


@register_rule("transitive-blocking-in-async")
class TransitiveBlockingRule(Rule):
    """Blocking primitives must not be reachable from ``async def``.

    The per-file rule catches ``time.sleep`` lexically inside an async
    body; this one follows resolved call edges (on-loop only — executor
    submissions run elsewhere) so a helper-of-a-helper that blocks is
    caught at the call site where the async function enters the chain.
    """

    invariant = (
        "no blocking primitive is reachable from an async def through "
        "the call graph (executor-submitted work excepted)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = callgraph(project)
        blocking = self._blocking_sites(graph)
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            if not info.is_async:
                continue
            yield from self._check_async_root(graph, info, blocking)

    @staticmethod
    def _blocking_sites(graph: CallGraph) -> Dict[str, List[Tuple[str, int]]]:
        sites: Dict[str, List[Tuple[str, int]]] = {}
        for qualname, info in graph.functions.items():
            table = graph.table(info.source)
            hits = [
                (name, node.lineno)
                for node in walk_in_function(info.node)
                if isinstance(node, ast.Call)
                and (name := resolve_name(node.func, table)) in _BLOCKING_CALLS
            ]
            if hits:
                sites[qualname] = hits
        return sites

    def _check_async_root(
        self,
        graph: CallGraph,
        root: FunctionInfo,
        blocking: Dict[str, List[Tuple[str, int]]],
    ) -> Iterator[Finding]:
        # BFS over on-loop sync edges: shortest chain per blocked callee.
        visited: Set[str] = {root.qualname}
        frontier: List[Tuple[str, CallEdge, Tuple[str, ...]]] = []
        for edge in sorted(graph.callees(root.qualname), key=lambda e: e.line):
            callee = graph.functions.get(edge.callee)
            if edge.offthread or callee is None or callee.is_async:
                continue
            frontier.append((edge.callee, edge, (edge.callee,)))
        reported: Set[Tuple[int, str, int]] = set()
        depth = 0
        while frontier and depth < _MAX_CHAIN_DEPTH:
            depth += 1
            next_frontier: List[Tuple[str, CallEdge, Tuple[str, ...]]] = []
            for qualname, first_edge, chain in frontier:
                if qualname in visited:
                    continue
                visited.add(qualname)
                for primitive, line in blocking.get(qualname, []):
                    info = graph.functions[qualname]
                    key = (first_edge.line, primitive, line)
                    if key in reported:
                        continue
                    reported.add(key)
                    path = " -> ".join(
                        [_short(root.qualname) + "()"]
                        + [_short(q) + "()" for q in chain]
                    )
                    yield self.finding(
                        root.source,
                        first_edge.line,
                        f"async {_short(root.qualname)}() reaches blocking "
                        f"{primitive}() at {info.source.path}:{line} via "
                        f"{path}; {_BLOCKING_CALLS[primitive]} or move the "
                        "chain through run_in_executor",
                    )
                for edge in sorted(graph.callees(qualname), key=lambda e: e.line):
                    callee = graph.functions.get(edge.callee)
                    if edge.offthread or callee is None or callee.is_async:
                        continue
                    if edge.callee not in visited:
                        next_frontier.append(
                            (edge.callee, first_edge, chain + (edge.callee,))
                        )
            frontier = next_frontier


# ---------------------------------------------------------------------------
# lock-order


_LOCK_CTORS = {
    "threading.Lock": "threading",
    "threading.RLock": "threading-reentrant",
    "asyncio.Lock": "asyncio",
}


@dataclass(frozen=True)
class _LockId:
    name: str  # "PipelineCache._lock" or "src.repro.core.batch._WATCHDOG_LOCK"
    kind: str  # a value of _LOCK_CTORS

    @property
    def reentrant(self) -> bool:
        return self.kind == "threading-reentrant"


@dataclass(frozen=True)
class _LockEdge:
    held: _LockId
    acquired: _LockId
    source_path: str
    line: int
    via: str  # "" for a lexically nested acquisition, else the callee


@register_rule("lock-order")
class LockOrderRule(Rule):
    """The project-wide lock-acquisition graph stays cycle-free.

    Two code paths taking the same pair of locks in opposite orders is
    a deadlock waiting for the right interleaving; so is re-entering a
    non-reentrant lock, or ``await``-ing with a ``threading.Lock`` held
    (the event loop parks inside the critical section and every other
    thread queues behind it).  Lock regions are ``with``-statements over
    attributes/globals assigned from ``threading.Lock()`` / ``RLock()``
    / ``asyncio.Lock()``; calls made inside a region contribute the
    callee's transitive acquisitions as ordered edges.
    """

    invariant = (
        "lock-acquisition order is globally acyclic; no await under a "
        "held threading.Lock; no re-entry of non-reentrant locks"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = callgraph(project)
        locks = self._collect_locks(graph)
        if not locks:
            return
        regions = self._regions_by_function(graph, locks)
        transitive = self._transitive_acquisitions(graph, regions)
        edges: List[_LockEdge] = []
        for qualname in sorted(regions):
            info = graph.functions[qualname]
            for held, region_node, is_async_with in regions[qualname]:
                yield from self._scan_region(
                    graph, info, held, region_node, locks, transitive, edges
                )
        yield from self._self_deadlocks(edges)
        yield from self._cycles(edges)

    # -- lock discovery ------------------------------------------------

    def _collect_locks(self, graph: CallGraph) -> Dict[Tuple[str, str], _LockId]:
        """Map ``(owner, attr)`` → lock; owner is a class name or a
        module key for module-level locks."""
        locks: Dict[Tuple[str, str], _LockId] = {}
        for cls_list in graph.classes.values():
            for cls in cls_list:
                table = graph.table(cls.source)
                for attr, values in cls.attr_values.items():
                    for value in values:
                        kind = self._lock_kind(value, table)
                        if kind is not None:
                            locks[(cls.name, attr)] = _LockId(
                                f"{cls.name}.{attr}", kind
                            )
                for name, default in cls.field_defaults.items():
                    kind = self._factory_lock_kind(default, table)
                    if kind is not None:
                        locks[(cls.name, name)] = _LockId(f"{cls.name}.{name}", kind)
        for source in graph.project.parsed():
            table = import_table(source.tree)
            key = module_key(source.path)
            for stmt in source.tree.body:
                if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                    continue
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                kind = self._lock_kind(stmt.value, table)
                if kind is not None:
                    locks[(key, target.id)] = _LockId(
                        f"{key}.{target.id}", kind
                    )
        return locks

    @staticmethod
    def _lock_kind(value: ast.expr, table: Dict[str, str]) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        dotted = resolve_name(value.func, table)
        return _LOCK_CTORS.get(dotted or "")

    @staticmethod
    def _factory_lock_kind(default: ast.expr, table: Dict[str, str]) -> Optional[str]:
        """``field(default_factory=threading.Lock)`` class-body defaults."""
        if not isinstance(default, ast.Call):
            return None
        func = default.func
        tail = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if tail != "field":
            return None
        for kw in default.keywords:
            if kw.arg == "default_factory":
                dotted = resolve_name(kw.value, table)
                return _LOCK_CTORS.get(dotted or "")
        return None

    def _resolve_lock(
        self,
        expr: ast.expr,
        info: FunctionInfo,
        graph: CallGraph,
        locks: Dict[Tuple[str, str], _LockId],
    ) -> Optional[_LockId]:
        if isinstance(expr, ast.Name):
            return locks.get((module_key(info.source.path), expr.id))
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                cls = graph.class_of(info)
                seen: Set[str] = set()
                while cls is not None and cls.name not in seen:
                    seen.add(cls.name)
                    hit = locks.get((cls.name, expr.attr))
                    if hit is not None:
                        return hit
                    nxt = None
                    for base in cls.bases:
                        candidates = graph.classes.get(base, [])
                        if candidates:
                            nxt = candidates[0]
                            break
                    cls = nxt
                return None
            receiver, _ = graph.value_origin(expr.value, info)
            if receiver is not None:
                return locks.get((receiver.name, expr.attr))
        return None

    # -- regions and transitive sets -----------------------------------

    def _regions_by_function(
        self, graph: CallGraph, locks: Dict[Tuple[str, str], _LockId]
    ) -> Dict[str, List[Tuple[_LockId, ast.AST, bool]]]:
        regions: Dict[str, List[Tuple[_LockId, ast.AST, bool]]] = {}
        for qualname, info in graph.functions.items():
            found: List[Tuple[_LockId, ast.AST, bool]] = []
            for node in walk_in_function(info.node):
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                for item in node.items:
                    lock = self._resolve_lock(item.context_expr, info, graph, locks)
                    if lock is not None:
                        found.append((lock, node, isinstance(node, ast.AsyncWith)))
            if found:
                regions[qualname] = found
        return regions

    @staticmethod
    def _transitive_acquisitions(
        graph: CallGraph,
        regions: Dict[str, List[Tuple[_LockId, ast.AST, bool]]],
    ) -> Dict[str, Set[_LockId]]:
        """Fixpoint: locks a call to each function may acquire, through
        any chain of on-thread calls."""
        acquired: Dict[str, Set[_LockId]] = {
            qualname: {lock for lock, _, _ in found}
            for qualname, found in regions.items()
        }
        changed = True
        while changed:
            changed = False
            for qualname in graph.functions:
                current = acquired.setdefault(qualname, set())
                for edge in graph.callees(qualname):
                    if edge.offthread:
                        continue
                    extra = acquired.get(edge.callee)
                    if extra and not extra <= current:
                        current |= extra
                        changed = True
        return acquired

    def _scan_region(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        held: _LockId,
        region: ast.AST,
        locks: Dict[Tuple[str, str], _LockId],
        transitive: Dict[str, Set[_LockId]],
        edges: List[_LockEdge],
    ) -> Iterator[Finding]:
        body: List[ast.stmt] = list(getattr(region, "body", []))
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    inner = self._resolve_lock(item.context_expr, info, graph, locks)
                    if inner is not None:
                        edges.append(
                            _LockEdge(
                                held=held,
                                acquired=inner,
                                source_path=info.source.path,
                                line=node.lineno,
                                via="",
                            )
                        )
            elif isinstance(node, ast.Await) and held.kind.startswith("threading"):
                yield self.finding(
                    info.source,
                    node.lineno,
                    f"await while holding threading lock {held.name} (taken "
                    f"in {_short(info.qualname)}()); the event loop parks "
                    "inside the critical section — release the lock first "
                    "or use asyncio.Lock",
                )
            elif isinstance(node, ast.Call):
                for target in graph.resolve_call(node, info):
                    for inner in sorted(
                        transitive.get(target.qualname, ()), key=lambda l: l.name
                    ):
                        edges.append(
                            _LockEdge(
                                held=held,
                                acquired=inner,
                                source_path=info.source.path,
                                line=node.lineno,
                                via=_short(target.qualname),
                            )
                        )

    # -- verdicts ------------------------------------------------------

    def _self_deadlocks(self, edges: List[_LockEdge]) -> Iterator[Finding]:
        seen: Set[Tuple[str, int]] = set()
        for edge in sorted(edges, key=lambda e: (e.source_path, e.line)):
            if edge.held != edge.acquired or edge.held.reentrant:
                continue
            key = (edge.source_path, edge.line)
            if key in seen:
                continue
            seen.add(key)
            via = f" via {edge.via}()" if edge.via else ""
            yield Finding(
                rule=self.name,
                path=edge.source_path,
                line=edge.line,
                message=(
                    f"non-reentrant lock {edge.held.name} re-acquired while "
                    f"already held{via}; this deadlocks immediately "
                    "(threading.Lock and asyncio.Lock do not re-enter)"
                ),
                severity=self.severity,
            )

    def _cycles(self, edges: List[_LockEdge]) -> Iterator[Finding]:
        graph: Dict[_LockId, Set[_LockId]] = {}
        for edge in edges:
            if edge.held != edge.acquired:
                graph.setdefault(edge.held, set()).add(edge.acquired)
                graph.setdefault(edge.acquired, set())
        sccs = _strongly_connected(graph)
        for component in sccs:
            if len(component) < 2:
                continue
            names = sorted(lock.name for lock in component)
            witness = sorted(
                (
                    e
                    for e in edges
                    if e.held in component and e.acquired in component
                ),
                key=lambda e: (e.source_path, e.line),
            )
            detail = "; ".join(
                f"{e.held.name} -> {e.acquired.name} at {e.source_path}:{e.line}"
                for e in witness[:4]
            )
            anchor = witness[0]
            yield Finding(
                rule=self.name,
                path=anchor.source_path,
                line=anchor.line,
                message=(
                    "lock-order cycle between "
                    + ", ".join(names)
                    + f" ({detail}); two threads taking these locks in "
                    "opposite orders deadlock — pick one global order"
                ),
                severity=self.severity,
            )


def _strongly_connected(
    graph: Dict[_LockId, Set[_LockId]]
) -> List[List[_LockId]]:
    """Iterative Tarjan; deterministic over sorted node order."""
    index: Dict[_LockId, int] = {}
    lowlink: Dict[_LockId, int] = {}
    on_stack: Set[_LockId] = set()
    stack: List[_LockId] = []
    counter = [0]
    result: List[List[_LockId]] = []

    def strongconnect(root: _LockId) -> None:
        work: List[Tuple[_LockId, Iterator[_LockId]]] = [
            (root, iter(sorted(graph.get(root, ()), key=lambda l: l.name)))
        ]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append(
                        (
                            child,
                            iter(sorted(graph.get(child, ()), key=lambda l: l.name)),
                        )
                    )
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[_LockId] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)

    for node in sorted(graph, key=lambda l: l.name):
        if node not in index:
            strongconnect(node)
    return result


# ---------------------------------------------------------------------------
# pickle-boundary


_UNPICKLABLE_CTORS = {
    "threading.Lock": "a threading.Lock",
    "threading.RLock": "a threading.RLock",
    "threading.Condition": "a threading.Condition",
    "threading.Event": "a threading.Event",
    "threading.Semaphore": "a threading.Semaphore",
    "threading.BoundedSemaphore": "a threading.BoundedSemaphore",
    "socket.socket": "a socket",
    "socket.create_connection": "a socket",
    "asyncio.Lock": "an asyncio.Lock",
    "asyncio.Event": "an asyncio.Event",
    "asyncio.Condition": "an asyncio.Condition",
    "asyncio.Queue": "an asyncio.Queue",
    "asyncio.get_event_loop": "an event loop",
    "asyncio.get_running_loop": "an event loop",
    "asyncio.new_event_loop": "an event loop",
    "concurrent.futures.ThreadPoolExecutor": "an executor",
    "concurrent.futures.ProcessPoolExecutor": "an executor",
}


@register_rule("pickle-boundary")
class PickleBoundaryRule(Rule):
    """Nothing loop-bound or lock-carrying crosses a process boundary.

    ``ProcessPoolExecutor.submit`` pickles every argument in the parent
    and unpickles in the child; a ``threading.Lock`` (or socket, or
    executor, or live generator) anywhere in the object graph raises
    ``TypeError: cannot pickle`` at submit time — or worse, much later
    under load.  Classes that define ``__reduce__`` / ``__getstate__``
    opt out by declaring exactly what crosses (``ArtifactStore``
    re-opens from its root path).  Thread pools are exempt: nothing is
    pickled.
    """

    invariant = (
        "arguments crossing ProcessPoolExecutor boundaries never "
        "transitively hold locks/sockets/executors/loops/generators "
        "(custom __reduce__/__getstate__ classes excepted)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = callgraph(project)
        tainted = self._tainted_classes(graph)
        if not tainted and not graph.classes:
            return
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            yield from self._check_function(graph, info, tainted)

    # -- taint ---------------------------------------------------------

    def _tainted_classes(self, graph: CallGraph) -> Dict[int, Tuple[ClassInfo, str]]:
        """``id(ClassInfo)`` → (class, why it cannot cross a process
        boundary).  Classes with custom pickling are never tainted."""
        tainted: Dict[int, Tuple[ClassInfo, str]] = {}
        all_classes = [
            cls for cls_list in graph.classes.values() for cls in cls_list
        ]
        for cls in all_classes:
            if cls.defines_custom_pickling():
                continue
            reason = self._direct_taint(graph, cls)
            if reason is not None:
                tainted[id(cls)] = (cls, reason)
        changed = True
        while changed:
            changed = False
            for cls in all_classes:
                if id(cls) in tainted or cls.defines_custom_pickling():
                    continue
                for attr, values in sorted(cls.attr_values.items()):
                    hit = self._attr_origin_taint(graph, cls, attr, values, tainted)
                    if hit is not None:
                        tainted[id(cls)] = (cls, hit)
                        changed = True
                        break
        return tainted

    def _direct_taint(self, graph: CallGraph, cls: ClassInfo) -> Optional[str]:
        table = graph.table(cls.source)
        for attr, values in sorted(cls.attr_values.items()):
            for value in values:
                if isinstance(value, ast.Call):
                    dotted = resolve_name(value.func, table)
                    if dotted in _UNPICKLABLE_CTORS:
                        return f"field {attr!r} holds {_UNPICKLABLE_CTORS[dotted]}"
                    gen = self._generator_target(graph, cls, value)
                    if gen is not None:
                        return (
                            f"field {attr!r} holds a live generator "
                            f"({gen}() yields)"
                        )
        for name, default in sorted(cls.field_defaults.items()):
            dotted = self._factory_ctor(default, table)
            if dotted in _UNPICKLABLE_CTORS:
                return f"field {name!r} holds {_UNPICKLABLE_CTORS[dotted]}"
        return None

    @staticmethod
    def _factory_ctor(default: ast.expr, table: Dict[str, str]) -> Optional[str]:
        if not isinstance(default, ast.Call):
            return None
        func = default.func
        tail = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if tail != "field":
            return None
        for kw in default.keywords:
            if kw.arg == "default_factory":
                return resolve_name(kw.value, table)
        return None

    @staticmethod
    def _generator_target(
        graph: CallGraph, cls: ClassInfo, value: ast.Call
    ) -> Optional[str]:
        if not isinstance(value.func, ast.Name):
            return None
        module = module_key(cls.source.path)
        target = graph.lookup_dotted(f"{module}.{value.func.id}")
        if target is None:
            return None
        if any(
            isinstance(n, (ast.Yield, ast.YieldFrom))
            for n in walk_in_function(target.node)
        ):
            return target.name
        return None

    def _attr_origin_taint(
        self,
        graph: CallGraph,
        cls: ClassInfo,
        attr: str,
        values: Sequence[ast.expr],
        tainted: Dict[int, Tuple[ClassInfo, str]],
    ) -> Optional[str]:
        for value in values:
            owner = graph._enclosing_method(value, cls)
            if owner is None:
                continue
            origin, _ = graph.value_origin(value, owner)
            if origin is not None and id(origin) in tainted:
                _, why = tainted[id(origin)]
                return f"field {attr!r} holds {origin.name} ({why})"
        return None

    # -- boundaries ----------------------------------------------------

    def _check_function(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        tainted: Dict[int, Tuple[ClassInfo, str]],
    ) -> Iterator[Finding]:
        for node in walk_in_function(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else None
            if attr == "submit" and node.args:
                if graph.executor_kind(func.value, info) == "process":
                    yield from self._check_crossing(
                        graph, info, node, node.args[0], node.args[1:], tainted
                    )
            elif attr == "run_in_executor" and len(node.args) >= 2:
                pool = node.args[0]
                if isinstance(pool, ast.Constant) and pool.value is None:
                    continue  # default thread pool: nothing pickles
                if graph.executor_kind(pool, info) == "process":
                    yield from self._check_crossing(
                        graph, info, node, node.args[1], node.args[2:], tainted
                    )
            else:
                table = graph.table(info.source)
                dotted = resolve_name(func, table)
                if dotted == "concurrent.futures.ProcessPoolExecutor" or (
                    isinstance(func, ast.Name)
                    and func.id == "ProcessPoolExecutor"
                ):
                    for kw in node.keywords:
                        if kw.arg == "initializer":
                            yield from self._check_crossing(
                                graph, info, node, kw.value, [], tainted
                            )
                        elif kw.arg == "initargs" and isinstance(
                            kw.value, ast.Tuple
                        ):
                            yield from self._check_crossing(
                                graph, info, node, None, kw.value.elts, tainted
                            )

    def _check_crossing(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        call: ast.Call,
        callable_ref: Optional[ast.expr],
        payload: Sequence[ast.expr],
        tainted: Dict[int, Tuple[ClassInfo, str]],
    ) -> Iterator[Finding]:
        if isinstance(callable_ref, ast.Attribute):
            receiver, _ = graph.value_origin(callable_ref.value, info)
            if receiver is not None and id(receiver) in tainted:
                _, why = tainted[id(receiver)]
                yield self.finding(
                    info.source,
                    call.lineno,
                    f"bound method {_describe(callable_ref)} crosses a "
                    f"process-pool boundary, pickling its {receiver.name} "
                    f"instance — which cannot pickle: {why}; submit a "
                    "module-level function and plain-data arguments",
                )
        for arg in payload:
            origin, _ = graph.value_origin(arg, info)
            if origin is not None and id(origin) in tainted:
                _, why = tainted[id(origin)]
                yield self.finding(
                    info.source,
                    call.lineno,
                    f"argument {_describe(arg)} crossing a process-pool "
                    f"boundary is a {origin.name}, which cannot pickle: "
                    f"{why}; pass plain data (or give {origin.name} a "
                    "__reduce__/__getstate__)",
                )


def _describe(node: ast.expr) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"
    return text if len(text) <= 40 else text[:37] + "..."


# ---------------------------------------------------------------------------
# protocol-liveness


@register_rule("protocol-liveness")
class ProtocolLivenessRule(Rule):
    """The composed fleet protocol has no dead messages or dead states.

    Extracts the coordinator/worker model (who sends and handles which
    message; which declared states are entered and exited where) and
    checks the product machine: every sent message has a peer handler,
    every registered message participates, every enterable state has an
    exit or a terminal declaration, every declared state is reachable.
    See :mod:`repro.analysis.protocol_model`.
    """

    invariant = (
        "every sent fleet message has a peer handler; every declared "
        "state is entered and (unless terminal) exited"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        model = extract_protocol(project)
        for source, line, message in check_protocol(model):
            yield self.finding(source, line, message)
