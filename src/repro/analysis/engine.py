"""The linting engine: collect files, parse once, run every rule.

``lint_paths`` is the single entry point the CLI, CI, and tests share.
Each file is read and parsed exactly once into a :class:`SourceFile`;
per-file rules then iterate the shared trees and cross-module rules see
the whole :class:`Project`.  Suppression filtering and ordering happen
here so rules stay pure generators of findings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis import rules as _rules  # noqa: F401  (registers the rule set)
from repro.analysis import dataflow as _dataflow  # noqa: F401  (cross-module rules)
from repro.analysis import effects as _effects  # noqa: F401  (effect-inference rules)
from repro.analysis import resources as _resources  # noqa: F401  (resource rule)
from repro.analysis.base import (
    Finding,
    Project,
    Rule,
    SourceFile,
    get_rule_class,
    rule_names,
)
from repro.errors import ConfigError

__all__ = [
    "collect_files",
    "lint_paths",
    "lint_files",
    "lint_sources",
    "run_lint",
    "LintReport",
    "format_text",
    "format_json",
]


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories into a sorted, deduplicated file list."""
    out: List[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(str(p) for p in sorted(path.rglob("*.py")))
        elif path.is_file():
            out.append(str(path))
        else:
            raise ConfigError(f"lint path does not exist: {raw}")
    seen = set()
    unique = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _resolve_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List[Rule]:
    known = rule_names()
    chosen = list(select) if select else known
    dropped = set(ignore) if ignore else set()
    for name in list(chosen) + sorted(dropped):
        get_rule_class(name)  # raises ConfigError on unknown ids
    return [get_rule_class(name)() for name in chosen if name not in dropped]


def _is_cross_module(rule: Rule) -> bool:
    """True when the rule's findings for one file can depend on *other*
    files (whole-project checks, or helper resolution across modules) —
    such findings are never cached per file."""
    if type(rule).check_project is not Rule.check_project:
        return True
    return bool(getattr(rule, "uses_project", False))


def _filter_suppressed(
    findings: Iterable[Finding], by_path: Dict[str, SourceFile]
) -> List[Finding]:
    kept = []
    for finding in findings:
        source = by_path.get(finding.path)
        if source is not None and source.suppressed(finding):
            continue
        kept.append(finding)
    return kept


def _syntax_findings(sources: Sequence[SourceFile]) -> List[Finding]:
    return [
        Finding(rule="syntax-error", path=s.path, line=1, message=s.error)
        for s in sources
        if s.error is not None
    ]


def lint_sources(
    sources: Sequence[SourceFile],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the (selected) rule set over already-parsed sources."""
    active = _resolve_rules(select, ignore)
    project = Project(files=list(sources))
    by_path = {source.path: source for source in project.files}

    findings: List[Finding] = _syntax_findings(project.files)
    for rule in active:
        for source in project.parsed():
            findings.extend(rule.check_file(source, project))
        findings.extend(rule.check_project(project))

    kept = _filter_suppressed(findings, by_path)
    kept.sort(key=Finding.sort_key)
    return kept


def lint_files(
    files: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    return lint_sources(
        [SourceFile.parse(path) for path in files], select=select, ignore=ignore
    )


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint files and directories; directories are searched for ``*.py``."""
    return lint_files(collect_files(paths), select=select, ignore=ignore)


@dataclass
class LintReport:
    """Result of :func:`run_lint`: findings plus cache accounting.

    ``cache_status`` is one of ``off`` / ``cold`` / ``partial`` /
    ``warm``; ``warm`` means the whole run was served from the summary
    cache with **zero files parsed**.  The status is diagnostic only —
    the findings themselves are byte-identical whichever path produced
    them (that invariant is what CI asserts).
    """

    findings: List[Finding]
    n_files: int
    cache_status: str = "off"
    parsed_files: int = 0
    reused_files: int = 0

    def status_line(self) -> str:
        return (
            f"cache {self.cache_status}: {self.parsed_files} file(s) "
            f"parsed, {self.reused_files} reused"
        )


def run_lint(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    cache: bool = False,
    cache_dir: Optional[str] = None,
) -> LintReport:
    """Lint with optional content-addressed summary caching.

    Cache semantics: a full-project hit (identical file digests, same
    rule selection, same rule-set fingerprint) returns the cached
    findings without parsing anything.  On a partial hit, per-file
    *local*-rule findings and local effect tables are reused for
    unchanged files; files are re-parsed only as needed — all of them
    when a cross-module rule is active (those need every syntax tree),
    else only the changed ones.
    """
    from repro.analysis.summary_cache import (
        DEFAULT_CACHE_DIR,
        SummaryCache,
        file_digest,
    )

    files = collect_files(paths)
    active = _resolve_rules(select, ignore)
    selection = ",".join(sorted(rule.name for rule in active))

    if not cache:
        findings = lint_files(files, select=select, ignore=ignore)
        return LintReport(
            findings=findings,
            n_files=len(files),
            cache_status="off",
            parsed_files=len(files),
            reused_files=0,
        )

    store = SummaryCache(cache_dir or DEFAULT_CACHE_DIR)
    texts = {path: Path(path).read_text(encoding="utf-8") for path in files}
    digests = {path: file_digest(text) for path, text in texts.items()}

    hit = store.project_findings(digests, selection)
    if hit is not None:
        findings, n_files = hit
        return LintReport(
            findings=findings,
            n_files=n_files,
            cache_status="warm",
            parsed_files=0,
            reused_files=len(files),
        )

    local_rules = [rule for rule in active if not _is_cross_module(rule)]
    cross_rules = [rule for rule in active if _is_cross_module(rule)]
    local_selection = ",".join(sorted(rule.name for rule in local_rules))

    cached_local: Dict[str, List[Finding]] = {}
    effect_locals: Dict[str, Dict[str, list]] = {}
    for path in files:
        file_findings = store.file_findings(path, digests[path], local_selection)
        if file_findings is not None:
            cached_local[path] = file_findings
        effects = store.file_effects(path, digests[path])
        if effects is not None:
            effect_locals[path] = effects

    if cross_rules:
        parse_paths = list(files)  # cross-module rules need every tree
    else:
        parse_paths = [path for path in files if path not in cached_local]

    sources = [SourceFile.parse(path, texts[path]) for path in parse_paths]
    project = Project(files=sources)
    if effect_locals:
        project._effect_locals = effect_locals  # type: ignore[attr-defined]
    by_path = {source.path: source for source in project.files}

    local_findings: List[Finding] = _syntax_findings(
        [s for s in project.files if s.path not in cached_local]
    )
    for rule in local_rules:
        for source in project.parsed():
            if source.path in cached_local:
                continue  # unchanged: cached findings cover the local rules
            local_findings.extend(rule.check_file(source, project))
    local_findings = _filter_suppressed(local_findings, by_path)

    cross_findings: List[Finding] = []
    for rule in cross_rules:
        for source in project.parsed():
            cross_findings.extend(rule.check_file(source, project))
        cross_findings.extend(rule.check_project(project))
    cross_findings = _filter_suppressed(cross_findings, by_path)

    findings = local_findings + list(
        f for path in files for f in cached_local.get(path, [])
    )
    findings.extend(cross_findings)
    findings.sort(key=Finding.sort_key)

    # harvest per-file summaries for every file parsed this run
    engine = getattr(project, "_effect_engine", None)
    effects_by_path: Dict[str, Dict[str, list]] = {}
    if engine is not None:
        for qualname, sites in engine.local.items():
            info = engine.graph.functions[qualname]
            effects_by_path.setdefault(info.source.path, {})[qualname] = sites
    local_by_path: Dict[str, List[Finding]] = {}
    for finding in local_findings:
        local_by_path.setdefault(finding.path, []).append(finding)
    for source in project.files:
        if source.path in cached_local:
            continue
        store.store_file_summary(
            source.path,
            digests[source.path],
            local_selection,
            local_by_path.get(source.path, []),
            effects_by_path.get(source.path) if engine is not None else None,
        )
    store.store_project_findings(digests, selection, findings, len(files))
    store.save()

    status = "partial" if (cached_local or effect_locals) else "cold"
    return LintReport(
        findings=findings,
        n_files=len(files),
        cache_status=status,
        parsed_files=len(parse_paths),
        reused_files=len(files) - len(parse_paths)
        if not cross_rules
        else len(cached_local),
    )


def format_text(
    findings: Sequence[Finding],
    n_files: Optional[int] = None,
    baselined: Optional[Sequence[Finding]] = None,
    show_baselined: bool = True,
) -> str:
    """Render findings; with a baseline in play, ``findings`` are the
    *new* ones (they alone decide the exit status) and ``baselined``
    the accepted pre-existing ones (listed unless ``--diff``)."""
    lines = [finding.format() for finding in findings]
    if baselined and show_baselined:
        lines.extend(f"{finding.format()} [baselined]" for finding in baselined)
    if findings:
        summary = f"{len(findings)} finding(s)"
        if baselined is not None:
            summary = f"{len(findings)} new finding(s), {len(baselined)} baselined"
        lines.append(summary)
    else:
        suffix = f" in {n_files} file(s)" if n_files is not None else ""
        if baselined:
            suffix += f" ({len(baselined)} baselined)"
        lines.append(f"clean: no new findings{suffix}" if baselined is not None
                     else f"clean: no findings{suffix}")
    return "\n".join(lines)


def format_json(
    findings: Sequence[Finding],
    n_files: Optional[int] = None,
    baselined: Optional[Sequence[Finding]] = None,
    show_baselined: bool = True,
) -> str:
    payload = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    if baselined is not None:
        payload["new_count"] = len(findings)
        payload["baselined_count"] = len(baselined)
        if show_baselined:
            payload["baselined"] = [finding.to_dict() for finding in baselined]
    if n_files is not None:
        payload["files"] = n_files
    return json.dumps(payload, indent=2, sort_keys=True)
