"""The linting engine: collect files, parse once, run every rule.

``lint_paths`` is the single entry point the CLI, CI, and tests share.
Each file is read and parsed exactly once into a :class:`SourceFile`;
per-file rules then iterate the shared trees and cross-module rules see
the whole :class:`Project`.  Suppression filtering and ordering happen
here so rules stay pure generators of findings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis import rules as _rules  # noqa: F401  (registers the rule set)
from repro.analysis import dataflow as _dataflow  # noqa: F401  (cross-module rules)
from repro.analysis.base import (
    Finding,
    Project,
    Rule,
    SourceFile,
    get_rule_class,
    rule_names,
)
from repro.errors import ConfigError

__all__ = [
    "collect_files",
    "lint_paths",
    "lint_files",
    "lint_sources",
    "format_text",
    "format_json",
]


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories into a sorted, deduplicated file list."""
    out: List[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(str(p) for p in sorted(path.rglob("*.py")))
        elif path.is_file():
            out.append(str(path))
        else:
            raise ConfigError(f"lint path does not exist: {raw}")
    seen = set()
    unique = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _resolve_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List[Rule]:
    known = rule_names()
    chosen = list(select) if select else known
    dropped = set(ignore) if ignore else set()
    for name in list(chosen) + sorted(dropped):
        get_rule_class(name)  # raises ConfigError on unknown ids
    return [get_rule_class(name)() for name in chosen if name not in dropped]


def lint_sources(
    sources: Sequence[SourceFile],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the (selected) rule set over already-parsed sources."""
    active = _resolve_rules(select, ignore)
    project = Project(files=list(sources))
    by_path = {source.path: source for source in project.files}

    findings: List[Finding] = []
    for source in project.files:
        if source.error is not None:
            findings.append(
                Finding(
                    rule="syntax-error",
                    path=source.path,
                    line=1,
                    message=source.error,
                )
            )
    for rule in active:
        for source in project.parsed():
            findings.extend(rule.check_file(source, project))
        findings.extend(rule.check_project(project))

    kept = []
    for finding in findings:
        source = by_path.get(finding.path)
        if source is not None and source.suppressed(finding):
            continue
        kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return kept


def lint_files(
    files: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    return lint_sources(
        [SourceFile.parse(path) for path in files], select=select, ignore=ignore
    )


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint files and directories; directories are searched for ``*.py``."""
    return lint_files(collect_files(paths), select=select, ignore=ignore)


def format_text(
    findings: Sequence[Finding],
    n_files: Optional[int] = None,
    baselined: Optional[Sequence[Finding]] = None,
    show_baselined: bool = True,
) -> str:
    """Render findings; with a baseline in play, ``findings`` are the
    *new* ones (they alone decide the exit status) and ``baselined``
    the accepted pre-existing ones (listed unless ``--diff``)."""
    lines = [finding.format() for finding in findings]
    if baselined and show_baselined:
        lines.extend(f"{finding.format()} [baselined]" for finding in baselined)
    if findings:
        summary = f"{len(findings)} finding(s)"
        if baselined is not None:
            summary = f"{len(findings)} new finding(s), {len(baselined)} baselined"
        lines.append(summary)
    else:
        suffix = f" in {n_files} file(s)" if n_files is not None else ""
        if baselined:
            suffix += f" ({len(baselined)} baselined)"
        lines.append(f"clean: no new findings{suffix}" if baselined is not None
                     else f"clean: no findings{suffix}")
    return "\n".join(lines)


def format_json(
    findings: Sequence[Finding],
    n_files: Optional[int] = None,
    baselined: Optional[Sequence[Finding]] = None,
    show_baselined: bool = True,
) -> str:
    payload = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    if baselined is not None:
        payload["new_count"] = len(findings)
        payload["baselined_count"] = len(baselined)
        if show_baselined:
            payload["baselined"] = [finding.to_dict() for finding in baselined]
    if n_files is not None:
        payload["files"] = n_files
    return json.dumps(payload, indent=2, sort_keys=True)
