"""Graphviz DOT export for networks, domino implementations and s-graphs.

Pure string generation — no graphviz dependency.  Render with e.g.
``dot -Tsvg out.dot -o out.svg``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.network.duplication import DominoImplementation, Polarity
from repro.network.netlist import GateType, LogicNetwork
from repro.seq.sgraph import SGraph

_SHAPES = {
    GateType.INPUT: "triangle",
    GateType.CONST0: "plaintext",
    GateType.CONST1: "plaintext",
    GateType.NOT: "invtriangle",
    GateType.BUF: "cds",
    GateType.AND: "box",
    GateType.NAND: "box",
    GateType.OR: "ellipse",
    GateType.NOR: "ellipse",
    GateType.XOR: "hexagon",
    GateType.XNOR: "hexagon",
    GateType.MUX: "trapezium",
    GateType.SOP: "component",
    GateType.LATCH: "Msquare",
}


def _quote(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def network_to_dot(
    network: LogicNetwork,
    name: Optional[str] = None,
    probabilities: Optional[Dict[str, float]] = None,
) -> str:
    """DOT digraph of a logic network.

    When ``probabilities`` is given, node labels carry the signal
    probability — handy for eyeballing where the switching lives.
    """
    lines = [f"digraph {_quote(name or network.name)} {{", "  rankdir=LR;"]
    for node in network.nodes.values():
        shape = _SHAPES.get(node.gate_type, "box")
        label = f"{node.name}\\n{node.gate_type.value}"
        if probabilities and node.name in probabilities:
            label += f"\\np={probabilities[node.name]:.3f}"
        lines.append(f"  {_quote(node.name)} [shape={shape}, label={_quote(label)}];")
    for node in network.nodes.values():
        for fi in node.fanins:
            style = " [style=dashed]" if node.gate_type is GateType.LATCH else ""
            lines.append(f"  {_quote(fi)} -> {_quote(node.name)}{style};")
    for po, driver in network.outputs:
        sink = f"PO:{po}"
        lines.append(f"  {_quote(sink)} [shape=doublecircle, label={_quote(po)}];")
        lines.append(f"  {_quote(driver)} -> {_quote(sink)};")
    lines.append("}")
    return "\n".join(lines)


def implementation_to_dot(impl: DominoImplementation) -> str:
    """DOT digraph of an inverter-free domino implementation.

    Positive-polarity gates are drawn solid, negative-polarity gates
    (DeMorgan duals) filled grey; static boundary inverters are
    triangles outside the block cluster.
    """
    lines = [
        f"digraph {_quote(impl.network.name + '_domino')} {{",
        "  rankdir=LR;",
        "  subgraph cluster_block { label=\"inverter-free domino block\";",
    ]
    for gate in impl.gates.values():
        fill = ", style=filled, fillcolor=lightgrey" if gate.polarity is Polarity.NEG else ""
        shape = "box" if gate.gate_type is GateType.AND else "ellipse"
        label = f"{gate.instance_name}\\n{gate.gate_type.value}"
        lines.append(
            f"    {_quote(gate.instance_name)} [shape={shape}, label={_quote(label)}{fill}];"
        )
    lines.append("  }")

    def ref_node(ref) -> str:
        if ref.kind == "const":
            return f"const_{int(ref.value)}"
        if ref.kind in ("input", "latch"):
            if ref.polarity is Polarity.NEG:
                return f"{ref.name}_inv"
            return ref.name
        return impl.gates[ref.key].instance_name

    emitted = set()
    for src in impl.network.inputs:
        lines.append(f"  {_quote(src)} [shape=triangle];")
    for latch in impl.network.latches:
        lines.append(f"  {_quote(latch.name)} [shape=Msquare];")
    for src in sorted(impl.input_inverters):
        inv = f"{src}_inv"
        lines.append(f"  {_quote(inv)} [shape=invtriangle, label={_quote('~' + src)}];")
        lines.append(f"  {_quote(src)} -> {_quote(inv)};")
    for gate in impl.gates.values():
        for ref in gate.fanins:
            lines.append(f"  {_quote(ref_node(ref))} -> {_quote(gate.instance_name)};")
    for po, ref in impl.output_refs.items():
        sink = f"PO:{po}"
        lines.append(f"  {_quote(sink)} [shape=doublecircle, label={_quote(po)}];")
        src = ref_node(ref)
        from repro.phase import Phase

        if impl.assignment[po] is Phase.NEGATIVE:
            inv = f"{po}_phase_inv"
            lines.append(f"  {_quote(inv)} [shape=invtriangle];")
            lines.append(f"  {_quote(src)} -> {_quote(inv)} ;")
            src = inv
        lines.append(f"  {_quote(src)} -> {_quote(sink)};")
    lines.append("}")
    return "\n".join(lines)


def sgraph_to_dot(graph: SGraph, name: str = "sgraph") -> str:
    """DOT digraph of an s-graph; supervertex weights shown in labels."""
    lines = [f"digraph {_quote(name)} {{"]
    for v in graph.vertices:
        w = graph.weight[v]
        label = v if w == 1 else f"{v}\\n(w={w})"
        shape = "circle" if w == 1 else "doublecircle"
        lines.append(f"  {_quote(v)} [shape={shape}, label={_quote(label)}];")
    for u, v in graph.edges():
        lines.append(f"  {_quote(u)} -> {_quote(v)};")
    lines.append("}")
    return "\n".join(lines)
