"""Legacy setup shim.

The reproduction environment has no network access and no ``wheel``
package, so PEP 660 editable installs (``pip install -e .``) cannot
build.  ``python setup.py develop`` provides an equivalent editable
install with the stock setuptools available offline.
"""

from setuptools import setup

setup()
