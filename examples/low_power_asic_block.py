"""Low-power domino synthesis of an ASIC control block (paper Section 1).

The paper's motivating scenario: an ASIC (chipset / cellular) control
block that needs domino speed under a tight power budget.  This script:

1. generates a control-logic-like block (wide, convergent, OR-rich);
2. runs the untimed flow (Table 1 conditions, PI probability 0.5);
3. re-runs the timed flow with transistor resizing (Table 2 conditions)
   to check the savings survive timing repair;
4. prints full power breakdowns (domino / clock / static) for both.

Run:  python examples/low_power_asic_block.py
"""

from repro.bench import GeneratorConfig, random_control_network
from repro.core import format_table, run_flow
from repro.domino import analyze_timing, simulate_mapped_power


def breakdown(label: str, variant, input_probs=None) -> None:
    sim = simulate_mapped_power(variant.design, input_probs=input_probs, n_vectors=8192)
    timing = analyze_timing(variant.design)
    print(
        f"  {label}: cells={variant.size:>5}  "
        f"domino={sim['domino']:>7.1f}  clock={sim['clock']:>6.1f}  "
        f"static={sim['static']:>6.1f}  total={sim['total']:>7.1f}  "
        f"critical delay={timing.critical_delay:.2f}"
    )


def main() -> None:
    config = GeneratorConfig(
        n_inputs=48,
        n_outputs=20,
        n_gates=320,
        seed=42,
        support_size=12,
        outputs_per_window=4,
        or_probability=0.65,
    )
    network = random_control_network("asic_ctrl", config)
    print(f"control block: {network.stats()}\n")

    untimed = run_flow(network, n_vectors=8192, seed=0)
    print(format_table([untimed.row()], "Untimed flow (Table 1 conditions)"))
    breakdown("MA", untimed.ma)
    breakdown("MP", untimed.mp)
    print()

    timed = run_flow(network, timed=True, n_vectors=8192, seed=0)
    print(format_table([timed.row()], "Timed flow with resizing (Table 2 conditions)"))
    breakdown("MA", timed.ma)
    breakdown("MP", timed.mp)
    for label, variant in (("MA", timed.ma), ("MP", timed.mp)):
        r = variant.resize
        print(
            f"  {label} resizing: {r.initial_delay:.2f} -> {r.final_delay:.2f} "
            f"(target {r.target:.2f}, {r.upsized_cells} cells upsized, "
            f"met={r.met_timing})"
        )
    print(
        f"\nsavings survive timing repair: "
        f"{untimed.power_savings_percent:.1f}% untimed vs "
        f"{timed.power_savings_percent:.1f}% timed"
    )


if __name__ == "__main__":
    main()
