"""Timing-aware phase assignment — the paper's Section 6 future work.

"One promising direction for future work is in the area of integrating
the choice of phase assignment with timing optimization."

Phase choice changes delay: a negative-phase cone is the DeMorgan dual,
so OR-rich logic becomes AND-rich — and domino ANDs stack transistors
in series.  This script sweeps the delay target and prints the
power/delay Pareto front the combined optimiser discovers.

Run:  python examples/timing_aware_phases.py
"""

from repro.bench import GeneratorConfig, random_control_network
from repro.core import PhaseTimingModel, minimize_power_timing_aware
from repro.network.ops import cleanup, to_aoi
from repro.phase import PhaseAssignment
from repro.power import PhaseEvaluator


def main() -> None:
    config = GeneratorConfig(
        n_inputs=20, n_outputs=8, n_gates=80, seed=17,
        support_size=12, or_probability=0.75,
    )
    network = cleanup(to_aoi(random_control_network("pareto", config)))
    evaluator = PhaseEvaluator(network, method="bdd")
    timing = PhaseTimingModel(evaluator)

    start = PhaseAssignment.all_positive(evaluator.outputs)
    base_delay = timing.critical_delay(start)
    base_power = evaluator.power(start)
    print(f"circuit: {network.stats()}")
    print(f"all-positive baseline: power={base_power:.2f} delay={base_delay:.2f}\n")

    print(f"{'target':>8} {'power':>8} {'delay':>8} {'met':>5} {'neg outputs':>12}")
    for fraction in (10.0, 1.3, 1.15, 1.05, 1.0, 0.95):
        target = base_delay * fraction
        result = minimize_power_timing_aware(
            evaluator, target_delay=target, penalty_weight=1e5
        )
        print(
            f"{target:>8.2f} {result.power:>8.2f} {result.delay:>8.2f} "
            f"{str(result.meets_target):>5} "
            f"{len(result.assignment.negative_outputs()):>12}"
        )

    print(
        "\nLoose targets let the optimiser flip OR-rich cones negative for "
        "big power wins; tight targets pin it to the fast positive phases — "
        "exactly the tension the paper's future-work section predicts."
    )


if __name__ == "__main__":
    main()
