"""Sequential power estimation: enhanced MFVS partitioning (Section 4.2.1).

Builds a sequential circuit with latch feedback (including the
fanin/fanout "twin" latches that phase duplication produces), then:

1. extracts the s-graph;
2. runs the classic MFVS reductions and the paper's symmetry-enhanced
   version, comparing feedback set sizes;
3. partitions the circuit into combinational blocks (Figure 7);
4. solves steady-state latch probabilities by fixed-point iteration and
   cross-checks them against a cycle-accurate Monte-Carlo simulation.

Run:  python examples/sequential_partitioning.py
"""

from repro.bench import random_sequential_network
from repro.power import SequentialPowerSimulator
from repro.seq import (
    extract_sgraph,
    greedy_mfvs,
    partition_sequential,
    sequential_probabilities,
)


def main() -> None:
    network = random_sequential_network(
        "seq_demo", n_inputs=12, n_latches=12, n_gates=60, seed=5, twin_groups=2
    )
    print(f"sequential circuit: {network.stats()}\n")

    graph = extract_sgraph(network)
    print(f"s-graph: {graph.n_vertices} flip-flops, {graph.n_edges} dependencies")

    plain = greedy_mfvs(graph, use_symmetry=False)
    enhanced = greedy_mfvs(graph, use_symmetry=True)
    print(f"  classic reductions : FVS size {plain.size}  {plain.reductions}")
    print(f"  + symmetry (paper) : FVS size {enhanced.size}  {enhanced.reductions}\n")

    partition = partition_sequential(network)
    print(f"feedback latches cut: {partition.feedback_latches}")
    print(f"combinational blocks: {len(partition.blocks)}")
    for block in partition.blocks:
        print(
            f"  {block.name}: {len(block.nodes)} nodes, "
            f"{block.n_inputs} pseudo-inputs, roots {block.outputs[:4]}"
        )
    print()

    analytic = sequential_probabilities(network, tolerance=1e-6, max_iterations=200)
    print(
        f"fixed point converged={analytic.converged} "
        f"after {analytic.iterations} iterations"
    )

    sim = SequentialPowerSimulator(network)
    rates = sim.run(n_cycles=2000, n_streams=32, seed=1)
    print("\nlatch probabilities (analytic vs cycle-accurate MC):")
    for latch in network.latches[:8]:
        analytic_p = analytic.latch_probabilities[latch.name]
        mc_p = rates.get(latch.fanins[0], float("nan"))
        print(f"  {latch.name}: {analytic_p:.3f}  vs  {mc_p:.3f}")
    print(f"\ntotal domino energy per cycle (MC): {rates['__energy__']:.2f}")


if __name__ == "__main__":
    main()
