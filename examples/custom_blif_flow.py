"""Run the flow on your own BLIF file (drop-in MCNC benchmark usage).

The paper evaluates on MCNC circuits (apex7, frg1, x1, x3).  Those BLIF
files are not shipped here, but the front-end accepts standard BLIF, so
any real benchmark can be dropped into the identical flow.  This script
writes a small BLIF design to disk, loads it back, and synthesises it
both ways — exactly what you would do with a real benchmark file.

Run:  python examples/custom_blif_flow.py [path/to/design.blif]
"""

import sys
import tempfile
from pathlib import Path

from repro import load_blif, run_flow
from repro.core import format_table

DEMO_BLIF = """\
.model demo_alu_ctl
.inputs op0 op1 op2 flag_z flag_n enable
.outputs sel_add sel_sub sel_logic stall
.names op0 op1 t_arith
1- 1
-1 1
.names t_arith op2 sel_add
10 1
.names t_arith op2 sel_sub
11 1
.names op0 op1 op2 sel_logic
000 1
.names flag_z flag_n enable t_hazard
11- 1
--0 1
.names t_hazard t_arith stall
11 1
.end
"""


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = Path(tempfile.mkdtemp()) / "demo.blif"
        path.write_text(DEMO_BLIF)
        print(f"(no BLIF given — wrote demo design to {path})\n")

    network = load_blif(str(path))
    print(f"loaded {network.name}: {network.stats()}\n")

    result = run_flow(network, input_probability=0.5, n_vectors=8192, seed=0)
    print(format_table([result.row()], f"MA vs MP for {network.name}"))
    print()
    print("negative-phase outputs under MP:", result.mp.assignment.negative_outputs())
    print("MP cell histogram:", result.mp.design.counts_by_cell())


if __name__ == "__main__":
    main()
