"""Why domino power behaves the way it does (paper Sections 1-2).

Three analyses on one circuit:

1. **Property 2.1** — a domino gate's switching equals its signal
   probability; static gates switch 2p(1-p).  Shown per node.
2. **Property 2.2** — the static implementation glitches under a
   unit-delay model; the domino block provably evaluates monotonically.
3. **The ~4x claim** — total domino power vs an equivalent static
   implementation, split into switching asymmetry, clock load and
   phase-assignment duplication.

Run:  python examples/domino_physics_analysis.py
"""

from repro.bench import GeneratorConfig, random_control_network
from repro.network.duplication import phase_transform
from repro.network.ops import cleanup, to_aoi
from repro.phase import PhaseAssignment
from repro.power import (
    compare_static_vs_domino,
    domino_glitch_check,
    domino_switching,
    node_probabilities,
    static_switching,
    unit_delay_glitch_report,
)


def main() -> None:
    config = GeneratorConfig(n_inputs=16, n_outputs=6, n_gates=50, seed=9)
    network = cleanup(to_aoi(random_control_network("physics", config)))
    print(f"circuit: {network.stats()}\n")

    # 1. Property 2.1 per node.
    probs = node_probabilities(network).probabilities
    print("Property 2.1 — switching probability per gate (first 8 gates):")
    print(f"{'gate':<14} {'p':>6} {'domino S':>9} {'static S':>9}")
    for node in network.gates[:8]:
        p = probs[node.name]
        print(
            f"{node.name:<14} {p:>6.3f} {domino_switching(p):>9.3f} "
            f"{static_switching(p):>9.3f}"
        )

    # 2. Property 2.2.
    report = unit_delay_glitch_report(network, n_cycles=2048, seed=0)
    impl = phase_transform(network, PhaseAssignment.all_positive(network.output_names()))
    monotone = domino_glitch_check(impl, n_cycles=512, seed=0)
    print("\nProperty 2.2 — glitching:")
    print(
        f"  static  : {report.zero_delay_transitions:.1f} useful + "
        f"{report.glitch_transitions:.1f} glitch transitions/cycle "
        f"({report.glitch_fraction * 100:.1f}% spurious)"
    )
    print(f"  domino  : monotone evaluation verified = {monotone} (zero glitches)")

    # 3. The ~4x power claim.
    cmp = compare_static_vs_domino(network)
    print("\nDomino vs static power:")
    print(f"  static power        : {cmp.static_power:.2f}")
    print(
        f"  domino power        : {cmp.domino_power:.2f}  "
        f"(switching {cmp.domino_switching:.2f} + clock {cmp.domino_clock:.2f} "
        f"+ boundary {cmp.domino_boundary:.2f})"
    )
    print(f"  ratio               : {cmp.ratio:.2f}x   (paper quotes 'up to 4x')")
    print(f"  duplication factor  : {cmp.duplication_factor:.2f}x")


if __name__ == "__main__":
    main()
