"""Quickstart: minimum-power phase assignment in ten lines.

Builds the paper's f/g example (Figure 3), runs the full Figure 6 flow
(min-area baseline vs min-power phase assignment, technology mapping,
Monte-Carlo power measurement), and prints the comparison.

Run:  python examples/quickstart.py
"""

from repro import run_flow
from repro.bench import figure3_network
from repro.core import format_table


def main() -> None:
    network = figure3_network()
    # The paper's Figure 5 uses strongly skewed inputs to make the
    # switching gap visible; 0.9 reproduces its arithmetic.
    result = run_flow(network, input_probability=0.9, n_vectors=16384, seed=0)

    print(format_table([result.row()], "Quickstart: the paper's f/g example"))
    print()
    print(f"min-area  phases: {result.ma.assignment}")
    print(f"min-power phases: {result.mp.assignment}")
    print(f"power savings   : {result.power_savings_percent:.1f}%")
    print(f"area penalty    : {result.area_penalty_percent:.1f}%")
    print(f"probability engine: {result.probability_method}")


if __name__ == "__main__":
    main()
