"""Walk through the inverter-free phase transform (paper Figures 3 and 4).

For every phase assignment of the f/g example this script shows:

* which domino gates materialise (and in which polarity),
* where static boundary inverters appear,
* how conflicting phase demands duplicate logic (Figure 4), and
* a BLIF dump of the resulting inverter-free block.

Run:  python examples/phase_transform_demo.py
"""

from repro import phase_transform, to_aoi, write_blif
from repro.bench import figure3_network
from repro.network import implementation_network
from repro.network.duplication import Polarity
from repro.network.ops import cleanup
from repro.phase import enumerate_assignments


def describe(impl) -> None:
    print(f"  domino gates ({impl.n_gates}):")
    for gate in impl.topological_gate_order():
        fanins = []
        for ref in gate.fanins:
            mark = "~" if ref.polarity is Polarity.NEG else ""
            fanins.append(f"{mark}{ref.name}" if ref.kind != "const" else str(ref.value))
        pol = "+" if gate.polarity is Polarity.POS else "-"
        print(
            f"    {gate.name}[{pol}] = {gate.gate_type.value.upper()}"
            f"({', '.join(fanins)})"
        )
    if impl.input_inverters:
        print(f"  static input inverters : {sorted(impl.input_inverters)}")
    if impl.output_inverters:
        print(f"  static output inverters: {impl.output_inverters}")
    dup = impl.duplicated_nodes()
    if dup:
        print(f"  duplicated logic (trapped-inverter conflicts): {dup}")
    else:
        print("  no duplication — all phase demands aligned")


def main() -> None:
    network = cleanup(to_aoi(figure3_network()))
    print("Original network: f = NOT((a+b) + (c*d)),  g = (a+b) + (c*d)")
    print(f"  {network.stats()}\n")

    for assignment in enumerate_assignments(network.output_names()):
        print(f"phase assignment {assignment}:")
        impl = phase_transform(network, assignment)
        describe(impl)
        print()

    # Dump the minimum-area realisation as BLIF.
    best = min(
        enumerate_assignments(network.output_names()),
        key=lambda a: phase_transform(network, a).n_gates,
    )
    block = implementation_network(phase_transform(network, best))
    print(f"BLIF of the minimum-area inverter-free block ({best}):\n")
    print(write_blif(block))


if __name__ == "__main__":
    main()
