"""Ablation — the Section 4.1 pairwise heuristic vs alternatives.

DESIGN.md calls out three design choices to ablate:

1. the pairwise-K search vs brute-force exhaustive search (quality);
2. the pairwise-K search vs random sampling (is the cost function
   actually informative?);
3. the commit-if-power-drops rule (monotonicity of the committed
   trajectory).
"""

import pytest

from repro.bench.generators import GeneratorConfig, random_control_network
from repro.core.optimizer import minimize_power, random_search
from repro.network.ops import cleanup, to_aoi
from repro.power.estimator import PhaseEvaluator

from conftest import print_block


def _evaluator(seed: int, n_outputs: int = 6) -> PhaseEvaluator:
    cfg = GeneratorConfig(
        n_inputs=14, n_outputs=n_outputs, n_gates=50, seed=seed, support_size=10
    )
    net = cleanup(to_aoi(random_control_network(f"abl{seed}", cfg)))
    return PhaseEvaluator(net, method="bdd")


@pytest.mark.benchmark(group="ablation-optimizer")
def bench_pairwise_vs_exhaustive(benchmark):
    evaluators = [_evaluator(seed) for seed in range(5)]

    def run():
        rows = []
        for ev in evaluators:
            pw = minimize_power(ev, method="pairwise")
            ex = minimize_power(ev, method="exhaustive")
            rows.append((pw.power, ex.power, pw.evaluations, ex.evaluations))
        return rows

    rows = benchmark(run)
    body = f"{'pairwise':>10} {'exhaustive':>11} {'pw evals':>9} {'ex evals':>9}\n"
    body += "\n".join(
        f"{p:>10.3f} {e:>11.3f} {pe:>9} {ee:>9}" for p, e, pe, ee in rows
    )
    print_block("Pairwise-K vs exhaustive (6 outputs, 64 assignments)", body)

    for pw_power, ex_power, pw_evals, ex_evals in rows:
        # Quality: within 10% of the global optimum.
        assert pw_power <= ex_power * 1.10 + 1e-9
        # Cost: strictly fewer power evaluations than brute force.
        assert pw_evals < ex_evals


@pytest.mark.benchmark(group="ablation-optimizer")
def bench_pairwise_vs_random(benchmark):
    evaluators = [_evaluator(seed + 100, n_outputs=8) for seed in range(5)]

    def run():
        rows = []
        for ev in evaluators:
            pw = minimize_power(ev, method="pairwise")
            rnd = random_search(ev, n_samples=pw.evaluations, seed=1)
            rows.append((pw.power, rnd.power))
        return rows

    rows = benchmark(run)
    body = "\n".join(f"pairwise={p:.3f}  random={r:.3f}" for p, r in rows)
    print_block("Pairwise-K vs random search (equal evaluation budget)", body)

    wins = sum(1 for p, r in rows if p <= r + 1e-9)
    assert wins >= 3  # the cost function must be informative


@pytest.mark.benchmark(group="ablation-optimizer")
def bench_commit_rule_monotonicity(benchmark):
    ev = _evaluator(7, n_outputs=8)
    result = benchmark(minimize_power, ev, None, "pairwise")
    committed = [r.candidate_power for r in result.history if r.committed]
    body = (
        f"initial={result.initial_power:.3f} final={result.power:.3f} "
        f"commits={len(committed)} / {len(result.history)} pairs"
    )
    print_block("Commit-if-power-drops trajectory", body)
    # Committed powers must be strictly decreasing (step 6 of Sec 4.1).
    assert all(b < a for a, b in zip(committed, committed[1:])) or len(committed) <= 1
    assert result.power <= result.initial_power
