"""Analysis benches for the paper's side claims.

1. Section 1 (citing Weste & Eshraghian): "domino gates can consume up
   to four times the power of an equivalent static gate" — measured
   with the static-vs-domino comparator.
2. Section 5: "different signal probabilities yielded similar results"
   — the MA-vs-MP savings hold across a PI-probability sweep.
3. Section 4.2.2 follow-up: how much does rebuild-based sifting improve
   on the paper's static variable ordering?
"""

import pytest

from repro.bdd.sifting import sift_order
from repro.bench.generators import GeneratorConfig, random_control_network
from repro.bench.mcnc import spec_by_name
from repro.core.flow import run_flow
from repro.network.ops import cleanup, to_aoi
from repro.power.compare import compare_static_vs_domino

from conftest import print_block


@pytest.mark.benchmark(group="analysis")
def bench_domino_vs_static_power(benchmark):
    circuits = {name: spec_by_name(name).build() for name in ("frg1", "apex7", "x1")}

    def run():
        return {
            name: compare_static_vs_domino(net) for name, net in circuits.items()
        }

    reports = benchmark(run)
    body = f"{'ckt':<8} {'static P':>9} {'domino P':>9} {'ratio':>6} {'dup':>5}\n"
    body += "\n".join(
        f"{name:<8} {r.static_power:>9.2f} {r.domino_power:>9.2f} "
        f"{r.ratio:>6.2f} {r.duplication_factor:>5.2f}"
        for name, r in reports.items()
    )
    print_block("Domino vs static power (paper: 'up to 4x')", body)
    for r in reports.values():
        assert r.ratio > 1.0  # domino always costs more


@pytest.mark.benchmark(group="analysis")
def bench_savings_across_input_probabilities(benchmark, quick_vectors):
    """Section 5's robustness remark, swept over PI probabilities."""
    net = spec_by_name("apex7").build()
    probabilities = (0.25, 0.5, 0.75)

    def run():
        rows = []
        for p in probabilities:
            flow = run_flow(net, input_probability=p, n_vectors=quick_vectors, seed=0)
            rows.append((p, flow.power_savings_percent, flow.area_penalty_percent))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = f"{'PI prob':>8} {'%Pwr sav':>9} {'%Area pen':>10}\n" + "\n".join(
        f"{p:>8.2f} {s:>9.1f} {a:>10.1f}" for p, s, a in rows
    )
    print_block("MA-vs-MP savings across input probabilities (apex7)", body)
    for _p, savings, _area in rows:
        assert savings > 0.0  # "similar results" at every probability


@pytest.mark.benchmark(group="analysis")
def bench_sifting_vs_static_ordering(benchmark):
    """How much BDD size does dynamic refinement recover beyond the
    paper's static ordering?  (Small circuits; sifting rebuilds.)"""
    cfgs = [
        GeneratorConfig(n_inputs=12, n_outputs=3, n_gates=30, seed=s, support_size=10)
        for s in (3, 5, 8)
    ]
    nets = [cleanup(to_aoi(random_control_network(f"sift{i}", c))) for i, c in enumerate(cfgs)]

    def run():
        rows = []
        for net in nets:
            result = sift_order(net, passes=1, candidate_positions=5)
            rows.append((result.initial_size, result.final_size, result.moves))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = f"{'static order':>12} {'sifted':>7} {'moves':>6}\n" + "\n".join(
        f"{a:>12} {b:>7} {m:>6}" for a, b, m in rows
    )
    print_block("Static domino ordering vs rebuild-sifting", body)
    for initial, final, _moves in rows:
        assert final <= initial  # refinement never hurts
