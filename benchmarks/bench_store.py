"""Store-tier round-trip benchmarks: cold vs local-warm vs shared-warm.

Measures what the shared cache tier actually buys: one full flow run
on a quick MCNC circuit with (a) no warm entries anywhere (``cold``),
(b) a warm local-disk store (``local-warm`` — the historical best
case), and (c) a *fresh* local disk in front of a warm shared SQLite
tier (``shared-warm`` — what a brand-new fleet worker or CI runner
sees).  Shared-warm should land near local-warm and far under cold;
each mode appends its mean wall time to ``BENCH_store.json`` so the
bench-gate catches a regression that silently turns shared hits back
into recomputes.
"""

import itertools

import pytest

from conftest import print_block, record_bench

from repro.bench.mcnc import spec_by_name
from repro.core.config import FlowConfig
from repro.core.pipeline import Pipeline
from repro.network.ops import cleanup, to_aoi
from repro.store import ArtifactStore, LocalDiskBackend, SQLiteBackend, TieredBackend

CONFIG = FlowConfig(n_vectors=512, seed=3)

#: Unique per-round directory names (benchmark rounds must stay cold).
_FRESH = itertools.count()


@pytest.fixture(scope="module")
def net():
    return cleanup(to_aoi(spec_by_name("frg1").build()))


def _record_mode(benchmark, mode: str, power: float) -> None:
    record = {"mode": mode, "circuit": "frg1", "n_vectors": CONFIG.n_vectors}
    try:
        record["mean_s"] = round(float(benchmark.stats.stats.mean), 6)
    except AttributeError:  # pragma: no cover - plugin internals moved
        pass
    record_bench("store", record)
    print_block(
        f"store round-trip · {mode}",
        f"circuit frg1, {CONFIG.n_vectors} vectors, MP power {power:.3f}",
    )


@pytest.mark.benchmark(group="store")
def bench_store_cold(benchmark, net, tmp_path_factory):
    """Every round runs against a brand-new empty store."""

    def run():
        root = tmp_path_factory.mktemp(f"cold-{next(_FRESH)}")
        store = ArtifactStore(str(root / "store"))
        return Pipeline(CONFIG, store=store).run(net).flow

    result = benchmark(run)
    _record_mode(benchmark, "cold", result.mp.power_ma)


@pytest.mark.benchmark(group="store")
def bench_store_local_warm(benchmark, net, tmp_path_factory):
    """Rounds replay against an already-warm local-disk store."""
    root = tmp_path_factory.mktemp("local-warm")
    store = ArtifactStore(str(root / "store"))
    Pipeline(CONFIG, store=store).run(net)  # warm it

    result = benchmark(lambda: Pipeline(CONFIG, store=store).run(net).flow)
    _record_mode(benchmark, "local-warm", result.mp.power_ma)


@pytest.mark.benchmark(group="store")
def bench_store_shared_warm(benchmark, net, tmp_path_factory):
    """Rounds run with a fresh local disk served by a warm shared
    SQLite tier — the new-fleet-worker / new-CI-runner case."""
    root = tmp_path_factory.mktemp("shared-warm")
    shared_db = str(root / "shared.sqlite")
    seeder = ArtifactStore(
        backend=TieredBackend(
            LocalDiskBackend(str(root / "seeder-local")), SQLiteBackend(shared_db)
        )
    )
    Pipeline(CONFIG, store=seeder).run(net)
    seeder.flush()

    def run():
        local = str(root / f"fresh-{next(_FRESH)}")
        store = ArtifactStore(
            backend=TieredBackend(LocalDiskBackend(local), SQLiteBackend(shared_db))
        )
        return Pipeline(CONFIG, store=store).run(net).flow

    result = benchmark(run)
    _record_mode(benchmark, "shared-warm", result.mp.power_ma)
