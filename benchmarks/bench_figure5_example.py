"""Figure 5 — phase assignment changes switching by ~75% on the f/g example.

Paper claim: with input signal probabilities of 0.9, the second
realisation (min-power phases) has ~75% fewer transitions than the
minimum-area realisation, despite being larger.
"""

import pytest

from repro.experiments.figure5 import format_figure5, run_figure5

from conftest import print_block


@pytest.mark.benchmark(group="figure5")
def bench_figure5_phase_switching(benchmark):
    result = benchmark(run_figure5, 0.9, 16384, 0)
    print_block("Figure 5 (paper: ~75% fewer transitions)", format_figure5(result))

    # Min-area and min-power phases differ — the paper's headline claim.
    assert result.min_area_row is not result.min_power_row
    # Reduction in the paper's ballpark.
    assert 65.0 <= result.switching_reduction_percent <= 85.0
    # The min-power realisation is NOT the smallest one.
    assert result.min_power_row.area_cells >= result.min_area_row.area_cells
    # Analytic estimate and zero-delay MC agree (Property 2.2).
    for row in result.rows:
        assert row.total_measured == pytest.approx(row.total_estimated, rel=0.06)
