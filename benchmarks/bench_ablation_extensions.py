"""Ablation — the paper's proposed extensions.

1. **Timing-aware phase assignment** (Section 6 future work): compare
   the unconstrained power optimum against the timing-constrained one
   and quantify the power/delay trade-off the paper anticipates.
2. **Group-extended cost function** (Section 4.1's "greater degree of
   interaction"): pairwise K vs K over output triples.
"""

import pytest

from repro.bench.generators import GeneratorConfig, random_control_network
from repro.core.optimizer import minimize_power
from repro.core.timing_aware import PhaseTimingModel, minimize_power_timing_aware
from repro.network.ops import cleanup, to_aoi
from repro.phase import PhaseAssignment
from repro.power.estimator import PhaseEvaluator

from conftest import print_block


def _evaluator(seed: int, n_outputs: int = 8):
    cfg = GeneratorConfig(
        n_inputs=16, n_outputs=n_outputs, n_gates=60, seed=seed, support_size=10,
        or_probability=0.7,
    )
    net = cleanup(to_aoi(random_control_network(f"ext{seed}", cfg)))
    return PhaseEvaluator(net, method="bdd")


@pytest.mark.benchmark(group="ablation-extensions")
def bench_timing_aware_tradeoff(benchmark):
    evaluators = [_evaluator(seed) for seed in range(4)]

    def run():
        rows = []
        for ev in evaluators:
            model = PhaseTimingModel(ev)
            start = PhaseAssignment.all_positive(ev.outputs)
            target = model.critical_delay(start)
            loose = minimize_power_timing_aware(ev, target_delay=1e9)
            tight = minimize_power_timing_aware(
                ev, target_delay=target, penalty_weight=1e6
            )
            rows.append(
                (loose.power, loose.delay, tight.power, tight.delay, target)
            )
        return rows

    rows = benchmark(run)
    body = (
        f"{'P(loose)':>9} {'D(loose)':>9} {'P(tight)':>9} {'D(tight)':>9} {'target':>8}\n"
        + "\n".join(
            f"{lp:>9.2f} {ld:>9.2f} {tp:>9.2f} {td:>9.2f} {t:>8.2f}"
            for lp, ld, tp, td, t in rows
        )
    )
    print_block("Timing-aware phase assignment (Section 6 extension)", body)

    for loose_p, loose_d, tight_p, tight_d, target in rows:
        # The constrained solution must honour the target...
        assert tight_d <= target + 1e-9
        # ...and the unconstrained one must be at least as low power.
        assert loose_p <= tight_p + 1e-9


@pytest.mark.benchmark(group="ablation-extensions")
def bench_group_cost_extension(benchmark):
    evaluators = [_evaluator(seed + 50, n_outputs=9) for seed in range(4)]

    def run():
        rows = []
        for ev in evaluators:
            pw = minimize_power(ev, method="pairwise")
            gw3 = minimize_power(ev, method="pairwise", group_size=3)
            rows.append((pw.power, gw3.power, pw.evaluations, gw3.evaluations))
        return rows

    rows = benchmark(run)
    body = f"{'pairwise':>9} {'group-3':>9} {'pw evals':>9} {'g3 evals':>9}\n" + "\n".join(
        f"{p:>9.3f} {g:>9.3f} {pe:>9} {ge:>9}" for p, g, pe, ge in rows
    )
    print_block("Cost function K: pairs vs triples (Section 4.1 extension)", body)

    for pw_power, gw_power, _pe, _ge in rows:
        assert gw_power <= pw_power * 1.10 + 1e-9
