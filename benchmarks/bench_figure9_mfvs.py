"""Figure 9 — the symmetry-based MFVS transformation.

Paper claim: on s-graphs with fanin/fanout twins (which phase
duplication produces), the classic reductions stall; the symmetry
transformation groups twins into weighted supervertices and unlocks
the reduction pipeline.
"""

import pytest

from repro.bench.generators import random_sequential_network
from repro.experiments.figure9 import format_figure9, run_figure9
from repro.seq.mfvs import greedy_mfvs, verify_feedback_set
from repro.seq.sgraph import extract_sgraph

from conftest import print_block


@pytest.mark.benchmark(group="figure9")
def bench_figure9_example(benchmark):
    result = benchmark(run_figure9)
    print_block("Figure 9 (paper: supervertices ABE w=3, CD w=2)", format_figure9(result))

    assert result.reduced_vertices_plain == 5  # classic reductions stuck
    assert result.supervertices == {"A+B+E": 3, "C+D": 2}
    assert result.greedy_enhanced_size == result.exact_size == 2


@pytest.mark.benchmark(group="figure9")
def bench_enhanced_mfvs_on_twin_rich_sgraphs(benchmark):
    """Enhanced vs plain greedy FVS over twin-rich sequential circuits."""

    nets = [
        random_sequential_network(
            f"seq{seed}", n_inputs=10, n_latches=14, n_gates=70,
            seed=seed, twin_groups=3,
        )
        for seed in range(6)
    ]
    graphs = [extract_sgraph(net) for net in nets]

    def run_all():
        rows = []
        for g in graphs:
            plain = greedy_mfvs(g, use_symmetry=False)
            enhanced = greedy_mfvs(g, use_symmetry=True)
            rows.append((g.n_vertices, g.n_edges, plain.size, enhanced.size))
        return rows

    rows = benchmark(run_all)
    body = f"{'V':>3} {'E':>3} {'plain FVS':>9} {'enhanced FVS':>12}\n" + "\n".join(
        f"{v:>3} {e:>3} {p:>9} {q:>12}" for v, e, p, q in rows
    )
    print_block("Enhanced MFVS on twin-rich s-graphs", body)

    for g, (_v, _e, plain, enhanced) in zip(graphs, rows):
        assert verify_feedback_set(g, greedy_mfvs(g, use_symmetry=True).feedback)
        # The symmetry enhancement should never be dramatically worse.
        assert enhanced <= plain + 1
