"""Section 4.2.1 validation — partition-based sequential estimation.

The paper's estimator cuts latch feedback at an (enhanced-MFVS) vertex
set and iterates probabilities instead of doing exact sequential
analysis.  This bench quantifies the accuracy of that approximation:
fixed-point latch probabilities vs a cycle-accurate Monte-Carlo
reference, over a family of random sequential circuits with
duplication-style latch twins.
"""

import pytest

from repro.bench.generators import random_sequential_network
from repro.power.simulator import SequentialPowerSimulator
from repro.seq.mfvs import greedy_mfvs
from repro.seq.partition import partition_sequential, sequential_probabilities
from repro.seq.sgraph import extract_sgraph

from conftest import print_block


@pytest.mark.benchmark(group="sequential")
def bench_fixed_point_accuracy(benchmark):
    nets = [
        random_sequential_network(
            f"seq{seed}", n_inputs=8, n_latches=8, n_gates=40, seed=seed, twin_groups=1
        )
        for seed in (0, 1, 2)
    ]

    def run():
        rows = []
        for net in nets:
            analytic = sequential_probabilities(net, tolerance=1e-6, max_iterations=150)
            sim = SequentialPowerSimulator(net)
            rates = sim.run(n_cycles=1500, n_streams=16, seed=0)
            errs = []
            for latch in net.latches:
                mc = rates.get(latch.fanins[0])
                if mc is None:
                    continue
                errs.append(abs(analytic.latch_probabilities[latch.name] - mc))
            mean_err = sum(errs) / len(errs) if errs else 0.0
            rows.append(
                (
                    net.name,
                    analytic.iterations,
                    analytic.converged,
                    mean_err,
                    max(errs) if errs else 0.0,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = (
        f"{'ckt':<8} {'iters':>6} {'converged':>10} {'mean |err|':>11} {'max |err|':>10}\n"
        + "\n".join(
            f"{n:<8} {i:>6} {str(c):>10} {me:>11.3f} {e:>10.3f}"
            for n, i, c, me, e in rows
        )
    )
    print_block("Fixed-point latch probabilities vs cycle-accurate MC", body)
    for _n, _i, converged, mean_err, max_err in rows:
        assert converged
        # The fixed point ignores temporal correlation through feedback;
        # that is exactly the accuracy the paper trades for tractability.
        # Typical latches are close; individual feedback latches can be
        # far off.
        assert mean_err < 0.15
        assert max_err < 0.5


@pytest.mark.benchmark(group="sequential")
def bench_partition_quality(benchmark):
    nets = [
        random_sequential_network(
            f"part{seed}", n_inputs=10, n_latches=14, n_gates=70,
            seed=seed, twin_groups=3,
        )
        for seed in range(4)
    ]

    def run():
        rows = []
        for net in nets:
            graph = extract_sgraph(net)
            plain = greedy_mfvs(graph, use_symmetry=False)
            part = partition_sequential(net, enhanced=True)
            rows.append(
                (
                    graph.n_vertices,
                    plain.size,
                    part.n_feedback,
                    len(part.blocks),
                    part.max_block_inputs(),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = (
        f"{'FFs':>4} {'plain FVS':>9} {'enh FVS':>8} {'blocks':>7} {'max PI':>7}\n"
        + "\n".join(
            f"{v:>4} {p:>9} {e:>8} {b:>7} {m:>7}" for v, p, e, b, m in rows
        )
    )
    print_block("Enhanced-MFVS partition quality (Figure 7 objective)", body)
    for _v, plain, enhanced, blocks, _m in rows:
        assert blocks >= 1
        assert enhanced <= plain + 1
