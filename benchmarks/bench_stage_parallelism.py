"""Stage-level MA/MP parallelism on a large MCNC circuit.

The tentpole claim: ``stage_jobs > 1`` threads the per-variant work of
``transform_map``/``resize``/``measure`` (and overlaps ``optimize_mp``
with the MA build) for a wall-clock win on large circuits, while the
:class:`FlowResult` stays bit-identical to the sequential run — the
same independent-branch move DALC makes for decoding, here with a
hard determinism guarantee.

The identity assertion always runs.  The speedup assertion needs at
least two cores (the container running tier-1 CI has one; threads
cannot beat sequential there) and is skipped otherwise.
"""

import json
import time

import pytest

from repro.bench.mcnc import spec_by_name
from repro.core.config import FlowConfig, _available_cpus
from repro.core.pipeline import Pipeline
from repro.report import flow_result_to_dict

from conftest import print_block, record_bench

#: Variant-parallel stages (the region stage_jobs accelerates).
VARIANT_STAGES = ("optimize_mp", "transform_map", "resize", "measure")

#: Largest public-suite circuit: 235 PI / 99 PO / 830 gates.
LARGE = "x3"


def _timed_run(config: FlowConfig, net):
    started = time.perf_counter()
    result = Pipeline(config).run(net)
    return result, time.perf_counter() - started


def _report(label, run, wall_s):
    stage_lines = "\n".join(
        f"  {s.name:<14} {s.runtime_s:7.3f}s"
        for s in run.stages
        if not s.skipped
    )
    variant_s = sum(
        s.runtime_s for s in run.stages if s.name in VARIANT_STAGES
    )
    return (
        f"{label}: wall {wall_s:.2f}s, variant-stage region {variant_s:.2f}s\n"
        f"{stage_lines}"
    )


@pytest.mark.benchmark(group="stage-parallel")
@pytest.mark.parametrize("timed", [False, True], ids=["untimed", "timed"])
def bench_stage_parallelism_identity_and_speedup(benchmark, timed, quick_vectors):
    net = spec_by_name(LARGE).build()
    base = FlowConfig(n_vectors=quick_vectors, timed=timed)

    def body():
        seq, seq_s = _timed_run(base.replace(stage_jobs=1), net)
        par, par_s = _timed_run(base.replace(stage_jobs=2), net)
        return seq, seq_s, par, par_s

    seq, seq_s, par, par_s = benchmark.pedantic(body, rounds=1, iterations=1)

    print_block(
        f"Stage parallelism on {LARGE} ({'timed' if timed else 'untimed'} flow, "
        f"{_available_cpus()} runnable cpu(s))",
        _report("stage_jobs=1", seq, seq_s)
        + "\n"
        + _report("stage_jobs=2", par, par_s)
        + f"\nspeedup: {seq_s / par_s:.2f}x",
    )

    # determinism is unconditional: parallel == sequential, byte for byte
    seq_json = json.dumps(flow_result_to_dict(seq.flow), sort_keys=True)
    par_json = json.dumps(flow_result_to_dict(par.flow), sort_keys=True)
    assert seq_json == par_json

    record_bench(
        "stage_parallelism",
        {
            "circuit": LARGE,
            "flow": "timed" if timed else "untimed",
            "n_vectors": quick_vectors,
            "cpus": _available_cpus(),
            "sequential_s": round(seq_s, 3),
            "parallel_s": round(par_s, 3),
            "speedup": round(seq_s / par_s, 3),
            "identical": seq_json == par_json,
        },
    )

    # affinity-aware: a --cpus=1 container on a many-core host has one
    # runnable cpu no matter what the host advertises
    if _available_cpus() < 2:
        pytest.skip("single-core host: stage threads cannot beat sequential")
    # measurable win on the wall clock; the threaded region is the
    # variant work, so the whole-flow ratio is a conservative bound
    assert par_s < seq_s
