"""Micro-benchmarks of the reproduction's computational kernels.

Not a paper experiment — tracks the throughput of the pieces the
iterative Figure 6 loop depends on: BDD construction, probability
evaluation, the phase transform, mask-based power queries, and the
vectorised Monte-Carlo simulator.
"""

import pytest

from conftest import record_bench

from repro.bdd.builder import build_node_bdds
from repro.bench.mcnc import spec_by_name
from repro.network.duplication import phase_transform
from repro.network.ops import cleanup, to_aoi
from repro.phase import PhaseAssignment
from repro.power.estimator import PhaseEvaluator
from repro.power.probability import uniform_input_probabilities
from repro.power.simulator import simulate_power


def _record_kernel(benchmark, kernel, **extra):
    """Append this kernel's mean wall time to BENCH_components.json."""
    record = {"kernel": kernel, **extra}
    try:
        record["mean_s"] = round(float(benchmark.stats.stats.mean), 6)
    except AttributeError:  # pragma: no cover - plugin internals moved
        pass
    record_bench("components", record)


@pytest.fixture(scope="module")
def apex7_aoi():
    return cleanup(to_aoi(spec_by_name("apex7").build()))


@pytest.fixture(scope="module")
def apex7_evaluator(apex7_aoi):
    return PhaseEvaluator(apex7_aoi, method="bdd")


@pytest.mark.benchmark(group="kernels")
def bench_bdd_construction(benchmark, apex7_aoi):
    bdds = benchmark(build_node_bdds, apex7_aoi)
    _record_kernel(benchmark, "bdd_construction", nodes=bdds.manager.node_count)
    assert bdds.manager.node_count > 0


@pytest.mark.benchmark(group="kernels")
def bench_bdd_probabilities(benchmark, apex7_aoi):
    bdds = build_node_bdds(apex7_aoi)
    probs = benchmark(bdds.probabilities, uniform_input_probabilities(apex7_aoi))
    _record_kernel(benchmark, "bdd_probabilities", signals=len(probs))
    assert all(0.0 <= p <= 1.0 for p in probs.values())


@pytest.mark.benchmark(group="kernels")
def bench_phase_transform(benchmark, apex7_aoi):
    assignment = PhaseAssignment.random(apex7_aoi.output_names(), seed=1)
    impl = benchmark(phase_transform, apex7_aoi, assignment)
    _record_kernel(benchmark, "phase_transform", gates=impl.n_gates)
    assert impl.n_gates > 0


@pytest.mark.benchmark(group="kernels")
def bench_evaluator_power_query(benchmark, apex7_evaluator):
    """The inner-loop operation of the Section 4.1 search."""
    assignments = [
        PhaseAssignment.random(apex7_evaluator.outputs, seed=s) for s in range(16)
    ]

    def run():
        return [apex7_evaluator.power(a) for a in assignments]

    powers = benchmark(run)
    _record_kernel(benchmark, "evaluator_power_query", queries=16)
    assert len(powers) == 16


@pytest.mark.benchmark(group="kernels")
def bench_monte_carlo_simulation(benchmark, apex7_aoi):
    impl = phase_transform(
        apex7_aoi, PhaseAssignment.all_positive(apex7_aoi.output_names())
    )
    sim = benchmark(simulate_power, impl, None, None, 2048, 0)
    _record_kernel(benchmark, "monte_carlo_simulation", n_vectors=2048)
    assert sim.energy_per_cycle > 0
