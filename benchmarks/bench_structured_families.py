"""Structure sweep — where does phase assignment help?

Runs the flow over the structured circuit families and reports per-
structure savings.  The expected physics (and the generalisation of the
paper's Table 1 spread, from industry2's ~0% to frg1's 34%):

* OR-dominant logic (or-trees, priority encoders) gains the most;
* AND-dominant logic (decoders) gains little — positive phases are
  already cheap;
* XOR logic (parity) is phase-neutral, probabilities pinned at 0.5.
"""

import pytest

from repro.bench.structured import STRUCTURED_FAMILIES
from repro.core.flow import run_flow

from conftest import print_block


@pytest.mark.benchmark(group="structured")
def bench_structured_family_sweep(benchmark, quick_vectors):
    nets = {name: build() for name, build in STRUCTURED_FAMILIES.items()}

    def run():
        rows = {}
        for name, net in nets.items():
            flow = run_flow(net, n_vectors=quick_vectors, seed=0)
            rows[name] = (
                flow.ma.size,
                flow.mp.size,
                flow.power_savings_percent,
                flow.area_penalty_percent,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = f"{'family':<18} {'MA':>5} {'MP':>5} {'%Pwr sav':>9} {'%Area pen':>10}\n"
    body += "\n".join(
        f"{name:<18} {ma:>5} {mp:>5} {sav:>9.1f} {pen:>10.1f}"
        for name, (ma, mp, sav, pen) in sorted(rows.items())
    )
    print_block("Phase-assignment savings by circuit structure", body)

    # The ordering the physics predicts.
    assert rows["or_tree"][2] >= rows["decoder"][2] - 1.0
    assert abs(rows["parity"][2]) < 10.0
    for name, (_ma, _mp, sav, _pen) in rows.items():
        assert sav > -5.0, name
