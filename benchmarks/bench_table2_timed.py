"""Table 2 — timed synthesis (transistor resizing) at PI probability 0.5.

Paper claims reproduced in shape:

* the power-based phase assignment is robust to timing repair — the
  average savings survive (paper: 35.3%);
* resizing inflates sizes and power relative to Table 1;
* the area penalty stays moderate, and a power-optimised circuit can
  even end up *smaller* than the area-optimised one after resizing
  (paper: x3 at -20%).
"""

import time

import pytest

from repro.experiments.tables import format_table_result, run_table

from conftest import print_block, record_bench

CIRCUITS = ("frg1", "apex7", "x1", "x3")


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("circuit", CIRCUITS)
def bench_table2_circuit(benchmark, circuit, quick_vectors):
    def body():
        started = time.perf_counter()
        result = run_table(
            timed=True, circuits=[circuit], n_vectors=quick_vectors
        )
        return result, time.perf_counter() - started

    result, wall_s = benchmark.pedantic(body, rounds=1, iterations=1)
    print_block(f"Table 2 row: {circuit}", format_table_result(result))
    row = result.rows[0].flow
    record_bench(
        "table2_timed",
        {
            "circuit": circuit,
            "n_vectors": quick_vectors,
            "wall_s": round(wall_s, 3),
            "power_savings_pct": round(row.power_savings_percent, 3),
            "area_penalty_pct": round(row.area_penalty_percent, 3),
        },
    )

    assert row.timed
    assert row.ma.resize is not None and row.mp.resize is not None
    # Resizing must have moved the critical delay toward the target.
    assert row.ma.resize.final_delay <= row.ma.resize.initial_delay
    # MP still wins (or at worst ties within noise) after timing repair.
    assert row.power_savings_percent >= -5.0


@pytest.mark.benchmark(group="table2")
def bench_table2_savings_survive_resizing(benchmark, quick_vectors):
    """Average savings with timing repair stay positive (paper: 35.3%)."""
    circuits = ["frg1", "apex7", "x1"]

    def body():
        started = time.perf_counter()
        result = run_table(timed=True, circuits=circuits, n_vectors=quick_vectors)
        return result, time.perf_counter() - started

    result, wall_s = benchmark.pedantic(body, rounds=1, iterations=1)
    print_block("Table 2 (public circuits)", format_table_result(result))
    avg = result.measured_averages
    record_bench(
        "table2_timed",
        {
            "circuit": "+".join(circuits),
            "n_vectors": quick_vectors,
            "wall_s": round(wall_s, 3),
            "power_savings_pct": round(avg["power_savings_pct"], 3),
            "area_penalty_pct": round(avg["area_penalty_pct"], 3),
        },
    )
    assert avg["power_savings_pct"] > 5.0
