"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and
asserts its qualitative *shape* (who wins, roughly by how much), then
prints the regenerated rows so ``pytest benchmarks/ --benchmark-only``
output doubles as the experiment log.
"""

from __future__ import annotations

import pytest


def print_block(title: str, body: str) -> None:
    """Print a clearly delimited experiment block (shown with -s, and
    captured into the bench log otherwise)."""
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(scope="session")
def quick_vectors() -> int:
    """Monte-Carlo vector count used by the table benches."""
    return 2048
