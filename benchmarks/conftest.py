"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and
asserts its qualitative *shape* (who wins, roughly by how much), then
prints the regenerated rows so ``pytest benchmarks/ --benchmark-only``
output doubles as the experiment log.

Benches that measure something worth tracking over time additionally
call :func:`record_bench`, which appends a timestamped record to
``benchmarks/BENCH_<name>.json`` — a *trajectory* file accumulating one
entry per run, so performance drift across commits is a ``git log`` of
numbers rather than an anecdote.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict

import pytest

#: Where the BENCH_<name>.json trajectory files live.
BENCH_DIR = Path(__file__).resolve().parent


def record_bench(name: str, record: Dict[str, Any]) -> Path:
    """Append one timestamped record to ``BENCH_<name>.json``.

    The file holds ``{"benchmark": name, "entries": [...]}`` with one
    entry per recorded run; an unreadable or hand-mangled file is
    restarted rather than crashing the bench.  Writes are atomic
    (temp file + ``os.replace``) so a parallel reader never sees a
    half-written trajectory.
    """
    path = BENCH_DIR / f"BENCH_{name}.json"
    try:
        trajectory = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(trajectory.get("entries"), list):
            raise ValueError("not a trajectory file")
    except (OSError, ValueError):
        trajectory = {"benchmark": name, "entries": []}
    trajectory["benchmark"] = name
    trajectory["entries"].append(
        {
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            **record,
        }
    )
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def print_block(title: str, body: str) -> None:
    """Print a clearly delimited experiment block (shown with -s, and
    captured into the bench log otherwise)."""
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(scope="session")
def quick_vectors() -> int:
    """Monte-Carlo vector count used by the table benches."""
    return 2048
