"""Wall-clock trajectory of the invariant linter itself.

Not a paper experiment — the PR 9 effect engine made `lint src/` a
whole-program analysis (call graph + effect fixpoint + payload-origin
tracing), so its runtime is now worth gating like any other kernel:
a rule that accidentally goes quadratic in the call graph should show
up in ``check_trajectory.py``, not in CI minutes.  Two series land in
``BENCH_lint.json``: a cold full-rule-set run, and a warm
summary-cached run (which must stay near-instant — it re-parses zero
unchanged files).
"""

from pathlib import Path

import pytest

from conftest import record_bench

from repro.analysis import rule_names, run_lint

SRC_TREE = str(Path(__file__).resolve().parents[1] / "src" / "repro")


def _record_mode(benchmark, mode: str, report) -> None:
    record = {
        "mode": mode,
        "files": report.n_files,
        "rules": len(rule_names()),
        "findings": len(report.findings),
    }
    try:
        record["mean_s"] = round(float(benchmark.stats.stats.mean), 6)
    except AttributeError:  # pragma: no cover - plugin internals moved
        pass
    record_bench("lint", record)


@pytest.mark.benchmark(group="lint")
def bench_lint_src_cold(benchmark):
    """Full rule set over src/repro with no cache: the CI gate path."""
    report = benchmark(run_lint, [SRC_TREE])
    _record_mode(benchmark, "cold", report)
    assert report.cache_status == "off"
    assert report.findings == []


@pytest.mark.benchmark(group="lint")
def bench_lint_src_warm_cache(benchmark, tmp_path_factory):
    """Summary-cached repeat run: zero re-parses of unchanged files."""
    cache_dir = str(tmp_path_factory.mktemp("lint-cache"))
    run_lint([SRC_TREE], cache=True, cache_dir=cache_dir)  # prime

    report = benchmark(run_lint, [SRC_TREE], cache=True, cache_dir=cache_dir)
    _record_mode(benchmark, "warm", report)
    assert report.cache_status == "warm"
    assert report.parsed_files == 0
    assert report.findings == []
