"""Table 1 — MA vs MP synthesis at PI probability 0.5 (untimed flow).

Paper claims reproduced in shape:

* average power savings ~18% (paper row range: -2.8% .. 34.1%);
* average area penalty ~12% (range 1.3% .. 48%);
* min-power phases differ from min-area phases on most circuits;
* frg1 (only 3 outputs, 8 possible assignments) still yields large
  savings with a large area overhead.
"""

import time

import pytest

from repro.experiments.tables import format_table_result, run_table

from conftest import print_block, record_bench

SMALL = ("frg1", "apex7", "x1")
LARGE = ("industry1", "industry2", "industry3", "x3")


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("circuit", SMALL + LARGE)
def bench_table1_circuit(benchmark, circuit, quick_vectors):
    def body():
        started = time.perf_counter()
        result = run_table(
            timed=False, circuits=[circuit], n_vectors=quick_vectors
        )
        return result, time.perf_counter() - started

    result, wall_s = benchmark.pedantic(body, rounds=1, iterations=1)
    print_block(f"Table 1 row: {circuit}", format_table_result(result))
    row = result.rows[0].flow
    record_bench(
        "table1_untimed",
        {
            "circuit": circuit,
            "n_vectors": quick_vectors,
            "wall_s": round(wall_s, 3),
            "power_savings_pct": round(row.power_savings_percent, 3),
            "area_penalty_pct": round(row.area_penalty_percent, 3),
        },
    )

    # MP must never be worse than MA under the optimisation objective;
    # measured (simulated) power should not regress beyond noise.
    assert row.mp.estimated_power <= row.ma.estimated_power + 1e-9
    assert row.power_savings_percent >= -5.0
    # Area penalty is bounded: duplication can at most double the block.
    assert row.area_penalty_percent <= 110.0
    # Sizes in the calibrated ballpark of the paper (loose factor 2).
    paper = result.rows[0].paper
    assert paper is not None
    assert 0.5 * paper.ma_size <= row.ma.size <= 2.0 * paper.ma_size


@pytest.mark.benchmark(group="table1")
def bench_table1_small_suite_averages(benchmark, quick_vectors):
    """Aggregate over the fast public circuits: positive average savings."""

    def body():
        started = time.perf_counter()
        result = run_table(
            timed=False, circuits=list(SMALL), n_vectors=quick_vectors
        )
        return result, time.perf_counter() - started

    result, wall_s = benchmark.pedantic(body, rounds=1, iterations=1)
    print_block("Table 1 (public circuits)", format_table_result(result))
    avg = result.measured_averages
    record_bench(
        "table1_untimed",
        {
            "circuit": "+".join(SMALL),
            "n_vectors": quick_vectors,
            "wall_s": round(wall_s, 3),
            "power_savings_pct": round(avg["power_savings_pct"], 3),
            "area_penalty_pct": round(avg["area_penalty_pct"], 3),
        },
    )
    assert avg["power_savings_pct"] > 5.0
    assert avg["area_penalty_pct"] >= 0.0
